//! Fleet-scale simulation: the million-device sweep driver behind
//! `ocelotc fleet` and the `fleet` bench driver.
//!
//! A **fleet** is one program crossed with a scenario distribution and a
//! seed range: device `i` runs under `scenarios[i % n]` reseeded with
//! `seed0 + i`. The program is compiled **once** — each scenario group
//! shares one read-only [`MachineCore`] (and, through it, one compiled
//! program) across every pool worker, while per-device mutable state
//! lives in a recycled [`DeviceState`] so a worker allocates once and
//! re-runs devices out of the same arena.
//!
//! Results stream into per-scenario [`FleetAggregate`]s — summed
//! [`Stats`] counters plus log₂-bucket [`Histogram`]s of per-device
//! reboots and freshness failures — merged in device-index order, so
//! the persisted artifact is byte-identical at every `--jobs` width and
//! whether cores are shared or rebuilt per worker.
//!
//! The per-cell interpreter path stays intact as the oracle: device `i`
//! is observationally identical to the [`CellSpec`] returned by
//! [`FleetSpec::device_spec`] run through
//! [`crate::harness::run_cell`], and the fold of those per-cell stats
//! equals the fleet aggregates exactly (held by the oracle-equivalence
//! suite in `tests/fleet_oracle.rs`).

use crate::artifact::{stats_from_json, stats_to_json, Artifact, ArtifactError};
use crate::harness::{build_for, calibrated_costs, CellSpec, Workload, MAX_STEPS};
use crate::json::Json;
use crate::pool::{self, Job};
use crate::report::Table;
use ocelot_runtime::machine::{DeviceState, Machine, MachineCore};
use ocelot_runtime::model::ExecModel;
use ocelot_runtime::stats::Stats;
use ocelot_runtime::{ExecBackend, OptLevel};
use ocelot_scenario::Scenario;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// One fleet sweep: program × scenario distribution × seed range.
///
/// Device `i` (for `i` in `0..devices`) runs `runs` complete program
/// attempts under `scenarios[i % scenarios.len()]` reseeded with
/// `seed0 + i` — exactly the cell [`FleetSpec::device_spec`] describes.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Benchmark name (resolved via [`ocelot_apps::by_name`]).
    pub bench: String,
    /// Execution model to build (fleet sweeps default to Ocelot).
    pub model: ExecModel,
    /// Scenario distribution: device `i` gets entry `i % len`. Entries
    /// are [`ocelot_scenario::parse`] specs.
    pub scenarios: Vec<String>,
    /// Total devices in the sweep.
    pub devices: u64,
    /// Seed range start: device `i` is seeded `seed0 + i`.
    pub seed0: u64,
    /// Program runs per device (a device-run = one of these).
    pub runs: u64,
    /// Execution engine every device runs on.
    pub backend: ExecBackend,
    /// Compiled-engine optimization level — observationally inert
    /// (every level produces identical aggregates; the oracle suite
    /// holds that line) and never recorded in the artifact.
    pub opt: OptLevel,
}

impl FleetSpec {
    /// The oracle cell for device `i`: running this spec through
    /// [`crate::harness::run_cell`] must produce exactly the stats the
    /// fleet path folds into its aggregate for device `i`.
    pub fn device_spec(&self, i: u64) -> CellSpec {
        let scenario = &self.scenarios[(i % self.scenarios.len() as u64) as usize];
        CellSpec::new(
            &self.bench,
            self.model,
            self.seed0 + i,
            Workload::Harvested { runs: self.runs },
        )
        .with_scenario(scenario)
        .with_backend(self.backend)
        .with_opt(self.opt)
    }

    /// Total device-runs (`devices × runs`) the sweep performs.
    pub fn device_runs(&self) -> u64 {
        self.devices * self.runs
    }
}

/// How [`run_fleet`] schedules the sweep.
#[derive(Debug, Clone, Copy)]
pub struct FleetOpts {
    /// Worker threads (1 = serial).
    pub jobs: usize,
    /// Share one read-only [`MachineCore`] per scenario across all
    /// workers (the fast path). `false` rebuilds the cores inside every
    /// worker — semantically free, held byte-identical by the
    /// determinism suite.
    pub share_core: bool,
}

impl Default for FleetOpts {
    fn default() -> Self {
        FleetOpts {
            jobs: 1,
            share_core: true,
        }
    }
}

pub use ocelot_telemetry::{Histogram, HIST_BUCKETS};

/// Artifact (de)serialization for the shared telemetry [`Histogram`].
/// The histogram itself was generalized into `ocelot-telemetry` (a
/// dependency leaf with no JSON layer), so its schema-v1 encoding —
/// the raw 65-bucket array, unchanged since the fleet driver introduced
/// it — lives here with the rest of the artifact schema.
pub trait HistogramJson: Sized {
    /// The histogram as a JSON array of bucket counts.
    fn to_json(&self) -> Json;

    /// Strict inverse of [`HistogramJson::to_json`].
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Schema`] on wrong length or non-`u64` entries.
    fn from_json(v: &Json) -> Result<Self, ArtifactError>;
}

impl HistogramJson for Histogram {
    fn to_json(&self) -> Json {
        Json::Arr(self.buckets().iter().map(|&v| Json::u64(v)).collect())
    }

    fn from_json(v: &Json) -> Result<Histogram, ArtifactError> {
        let arr = v
            .as_arr()
            .ok_or_else(|| ArtifactError::Schema("histogram is not an array".into()))?;
        if arr.len() != HIST_BUCKETS {
            return Err(ArtifactError::Schema(format!(
                "histogram has {} buckets, expected {HIST_BUCKETS}",
                arr.len()
            )));
        }
        let mut buckets = Vec::with_capacity(HIST_BUCKETS);
        for e in arr {
            buckets
                .push(e.as_u64().ok_or_else(|| {
                    ArtifactError::Schema("histogram bucket is not a u64".into())
                })?);
        }
        Ok(Histogram::from_buckets(buckets))
    }
}

/// Everything one scenario's devices produced: device count, summed
/// [`Stats`] counters, and the per-device reboot / freshness-failure
/// histograms the percentile columns derive from.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAggregate {
    /// The scenario spec these devices ran under.
    pub scenario: String,
    /// Devices folded in.
    pub devices: u64,
    /// Element-wise sum of every device's [`Stats`] (including the
    /// breakdown).
    pub stats: Stats,
    /// Per-device `reboots` distribution.
    pub reboots_hist: Histogram,
    /// Per-device `fresh_violations` distribution.
    pub fresh_hist: Histogram,
}

/// Adds every counter of `add` (including the breakdown) into `total`.
pub fn add_stats(total: &mut Stats, add: &Stats) {
    for ((name, cur), (_, v)) in total.clone().counters().into_iter().zip(add.counters()) {
        total.set_counter(name, cur + v);
    }
    let summed = total.breakdown.clone();
    for ((name, cur), (_, v)) in summed.counters().into_iter().zip(add.breakdown.counters()) {
        total.breakdown.set_counter(name, cur + v);
    }
}

impl FleetAggregate {
    /// An empty aggregate for `scenario`.
    pub fn new(scenario: &str) -> Self {
        FleetAggregate {
            scenario: scenario.to_string(),
            devices: 0,
            stats: Stats::default(),
            reboots_hist: Histogram::default(),
            fresh_hist: Histogram::default(),
        }
    }

    /// Folds one device's accumulated stats in.
    pub fn record(&mut self, s: &Stats) {
        self.devices += 1;
        add_stats(&mut self.stats, s);
        self.reboots_hist.record(s.reboots);
        self.fresh_hist.record(s.fresh_violations);
    }

    /// Merges a partial aggregate for the same scenario (chunk
    /// reduction). Exact: `u64` sums do not depend on grouping.
    pub fn merge(&mut self, other: &FleetAggregate) {
        debug_assert_eq!(self.scenario, other.scenario);
        self.devices += other.devices;
        add_stats(&mut self.stats, &other.stats);
        self.reboots_hist.merge(&other.reboots_hist);
        self.fresh_hist.merge(&other.fresh_hist);
    }

    /// The artifact cell for this aggregate.
    pub fn to_cell(&self) -> Json {
        Json::obj(vec![
            ("scenario", Json::str(&self.scenario)),
            ("devices", Json::u64(self.devices)),
            ("stats", stats_to_json(&self.stats)),
            ("reboots_hist", self.reboots_hist.to_json()),
            ("fresh_hist", self.fresh_hist.to_json()),
        ])
    }

    /// Strict inverse of [`FleetAggregate::to_cell`].
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Schema`] on any missing or mistyped member.
    pub fn from_cell(cell: &Json) -> Result<FleetAggregate, ArtifactError> {
        let scenario = cell
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or_else(|| ArtifactError::Schema("fleet cell has no scenario".into()))?
            .to_string();
        let devices = cell
            .get("devices")
            .and_then(Json::as_u64)
            .ok_or_else(|| ArtifactError::Schema("fleet cell has no devices count".into()))?;
        let stats = stats_from_json(
            cell.get("stats")
                .ok_or_else(|| ArtifactError::Schema("fleet cell has no stats".into()))?,
        )?;
        let reboots_hist = Histogram::from_json(
            cell.get("reboots_hist")
                .ok_or_else(|| ArtifactError::Schema("fleet cell has no reboots_hist".into()))?,
        )?;
        let fresh_hist = Histogram::from_json(
            cell.get("fresh_hist")
                .ok_or_else(|| ArtifactError::Schema("fleet cell has no fresh_hist".into()))?,
        )?;
        Ok(FleetAggregate {
            scenario,
            devices,
            stats,
            reboots_hist,
            fresh_hist,
        })
    }
}

/// Runs the whole fleet and returns one aggregate per entry of
/// `spec.scenarios`, in that order.
///
/// The program is built once; each scenario shares one read-only
/// [`MachineCore`] (so the compiled program, chain table, and layouts
/// are constructed once per scenario, not per device), and each worker
/// recycles a single [`DeviceState`] across all its devices. Device
/// indices are split into contiguous chunks; chunk aggregates merge in
/// index order, and because every merged quantity is an exact `u64`
/// sum, the result is identical at any worker count.
///
/// # Panics
///
/// Panics on an unknown benchmark or scenario name, a failing build, or
/// an empty scenario list — the same failures the per-cell harness
/// raises.
pub fn run_fleet(spec: &FleetSpec, opts: FleetOpts) -> Vec<FleetAggregate> {
    assert!(
        !spec.scenarios.is_empty(),
        "a fleet needs at least one scenario"
    );
    let b = ocelot_apps::by_name(&spec.bench)
        .unwrap_or_else(|| panic!("unknown benchmark `{}`", spec.bench));
    let built = build_for(&b, spec.model);
    let scenarios: Vec<Scenario> = spec
        .scenarios
        .iter()
        .map(|s| ocelot_scenario::parse(s).unwrap_or_else(|e| panic!("fleet scenario: {e}")))
        .collect();
    let build_cores = || {
        scenarios
            .iter()
            .map(|sc| {
                // The channel layout recorded in the core is a pure
                // function of the scenario shape (seeds only perturb
                // signal values), so any device seed works here.
                Arc::new(MachineCore::build(
                    &built.program,
                    &built.regions,
                    built.policies.clone(),
                    &sc.reseeded(spec.seed0).environment(),
                    calibrated_costs(&b),
                ))
            })
            .collect::<Vec<_>>()
    };
    let shared_cores = build_cores();
    let n_scenarios = spec.scenarios.len() as u64;

    // Contiguous device-index chunks, enough to keep the pool busy.
    let n_chunks = spec.devices.min((opts.jobs as u64) * 8).max(1);
    let chunk = spec.devices.div_ceil(n_chunks);
    let mut work: Vec<Job<'_, Vec<FleetAggregate>>> = Vec::new();
    let mut lo = 0u64;
    while lo < spec.devices {
        let hi = (lo + chunk).min(spec.devices);
        let scenarios = &scenarios;
        let shared = &shared_cores;
        let build_cores = &build_cores;
        work.push(Box::new(move || {
            let _span = ocelot_telemetry::span!("fleet.chunk", "fleet");
            let local;
            let cores: &[Arc<MachineCore<'_>>] = if opts.share_core {
                shared
            } else {
                local = build_cores();
                &local
            };
            let mut aggs: Vec<FleetAggregate> = spec
                .scenarios
                .iter()
                .map(|s| FleetAggregate::new(s))
                .collect();
            let mut dev = DeviceState::default();
            for i in lo..hi {
                let s_idx = (i % n_scenarios) as usize;
                let sc = scenarios[s_idx].reseeded(spec.seed0 + i);
                let mut m = Machine::from_core(
                    Arc::clone(&cores[s_idx]),
                    std::mem::take(&mut dev),
                    sc.environment(),
                    sc.supply(),
                )
                .with_backend(spec.backend);
                for _ in 0..spec.runs {
                    // Harvested semantics: a harsh regime may
                    // legitimately starve a run, so no completion
                    // assertion — exactly the per-cell oracle's rule.
                    m.run_once(MAX_STEPS);
                }
                aggs[s_idx].record(m.stats());
                dev = m.into_device();
            }
            aggs
        }));
        lo = hi;
    }

    // Deterministic index-ordered reduction over chunk aggregates.
    let partials = pool::run_jobs(work, opts.jobs);
    let _reduce = ocelot_telemetry::span!("fleet.reduce", "fleet");
    let mut totals: Vec<FleetAggregate> = spec
        .scenarios
        .iter()
        .map(|s| FleetAggregate::new(s))
        .collect();
    for part in &partials {
        for (t, p) in totals.iter_mut().zip(part) {
            t.merge(p);
        }
    }
    totals
}

// ---------------------------------------------------------------------
// The `ocelotc fleet` entry point
// ---------------------------------------------------------------------

/// Default device count for `ocelotc fleet`. With
/// [`DEFAULT_FLEET_RUNS`] runs per device this is the acceptance-scale
/// sweep: 1M device-runs across the scenario registry.
pub const DEFAULT_FLEET_DEVICES: u64 = 200_000;

/// Default program runs per device for `ocelotc fleet` — enough that
/// devices outlive their initial bank charge, so the reboot histograms
/// and charge-time columns show each scenario's character.
pub const DEFAULT_FLEET_RUNS: u64 = 5;

/// Default fingerprint path, relative to the working directory.
pub const FINGERPRINT_PATH: &str = "BENCH_fleet.json";

struct FleetArgs {
    app: String,
    devices: u64,
    runs: u64,
    seed: u64,
    jobs: usize,
    backend: ExecBackend,
    opt: OptLevel,
    scenarios: Vec<String>,
    out: PathBuf,
    fingerprint: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics: bool,
    overhead_check: bool,
    overhead_limit: Option<f64>,
    force: bool,
    help: bool,
}

impl Default for FleetArgs {
    fn default() -> Self {
        FleetArgs {
            app: "tire".into(),
            devices: DEFAULT_FLEET_DEVICES,
            runs: DEFAULT_FLEET_RUNS,
            seed: 1,
            jobs: pool::default_jobs(),
            // The compiled engine is the default here: fleet sweeps are
            // throughput-bound, and the backends are observationally
            // identical (held by the oracle-equivalence suite).
            backend: ExecBackend::Compiled,
            opt: OptLevel::from_env(),
            scenarios: Vec::new(),
            out: PathBuf::from(crate::cli::DEFAULT_OUT_DIR),
            fingerprint: Some(PathBuf::from(FINGERPRINT_PATH)),
            trace_out: None,
            metrics: false,
            overhead_check: false,
            overhead_limit: None,
            force: false,
            help: false,
        }
    }
}

/// Static pre-flight for a fleet deployment: lint `app`'s annotated
/// source against the tightest harvested bank in the scenario
/// distribution before any device-run is burned on it. A program the
/// linter proves statically infeasible (a region that can never fit the
/// smallest bank, a window no path can meet) would fail or livelock on
/// *every* device — a million times over — so the sweep refuses it
/// unless the caller forces through.
///
/// # Errors
///
/// The rendered lint report (spanned, human-readable) followed by a
/// one-line verdict naming `--force`. Unknown app names are `Ok` here —
/// the callers validate them with their own messages.
pub fn lint_preflight(app: &str, scenarios: &[String]) -> Result<(), String> {
    let Some(b) = ocelot_apps::by_name(app) else {
        return Ok(());
    };
    let capacity = scenarios
        .iter()
        .filter_map(|s| ocelot_scenario::parse(s).ok())
        .filter_map(|sc| match sc.supply {
            ocelot_scenario::SupplySpec::Harvested { capacity_nj, .. } => Some(capacity_nj),
            ocelot_scenario::SupplySpec::Continuous => None,
        })
        .fold(None::<f64>, |acc, c| Some(acc.map_or(c, |a| a.min(c))));
    let opts = ocelot_lint::LintOptions {
        capacity_nj: capacity,
        ..ocelot_lint::LintOptions::default()
    };
    let report = ocelot_lint::lint_source(b.annotated_src, &opts)
        .map_err(|e| format!("error: `{app}` failed to lint: {e}"))?;
    if report.is_error_free() {
        return Ok(());
    }
    Err(format!(
        "{}error: `{app}` is statically infeasible under this scenario distribution \
         ({} lint error(s) above); rerun with --force to sweep anyway",
        report.render_text(app, Some(b.annotated_src)),
        report.error_count()
    ))
}

const FLEET_USAGE: &str = "\
fleet — million-device scenario sweep on one shared compiled program

usage: ocelotc fleet [--app NAME] [--devices N] [--runs N] [--seed N]
                     [--jobs N] [--backend interp|compiled] [--opt 0|1|2]
                     [--scenario NAME[@seed]]... [--out DIR]
                     [--fingerprint PATH | --no-fingerprint]
                     [--trace-out PATH] [--metrics] [--overhead-check]
                     [--overhead-limit PCT] [--force]

  --app NAME        benchmark to deploy (default: tire)
  --devices N       fleet size (default: 200000)
  --runs N          program runs per device (default: 5; together the
                    defaults are a 1M device-run sweep)
  --seed N          seed-range start; device i is seeded N+i (default: 1)
  --jobs N          worker threads (default: all cores)
  --backend B       execution engine (default: compiled; interp is the
                    per-cell oracle and produces identical aggregates)
  --opt L           compiled-engine optimization level (default: 2, or
                    $OCELOT_OPT; every level produces identical
                    aggregates and the artifact never records it)
  --scenario S      add one scenario to the distribution (repeatable;
                    default: the whole scenario registry)
  --out DIR         artifact directory for fleet.json (default:
                    target/bench-results); `ocelotc bench fleet --replay`
                    re-renders it
  --fingerprint P   write the wall-clock throughput fingerprint to P
                    (default: BENCH_fleet.json; kept out of the artifact
                    so artifact bytes stay machine-independent)
  --no-fingerprint  skip the fingerprint file
  --trace-out P     record pipeline/pool/fleet spans and write them to P
                    as Chrome trace_event JSON (load in Perfetto or
                    chrome://tracing); never touches the artifact
  --metrics         count runtime/pool telemetry metrics and print the
                    sorted snapshot after the table; never touches the
                    artifact
  --overhead-check  run the sweep a second time with full telemetry on
                    and record the throughput overhead in the
                    fingerprint (telemetry_overhead_pct)
  --overhead-limit P fail (exit 1) when the telemetry-on overhead stays
                    above P percent after retries (implies
                    --overhead-check; CI pins 5)
  --force           sweep even when the static lint pre-flight proves
                    the app infeasible under the scenario distribution
                    (see docs/lint.md; by default the sweep refuses)
";

fn parse_fleet_args(args: &[String]) -> Result<FleetArgs, String> {
    let mut out = FleetArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--app" => out.app = it.next().ok_or("--app needs a name")?.clone(),
            "--devices" => {
                let v = it.next().ok_or("--devices needs a value")?;
                out.devices = v
                    .parse()
                    .map_err(|_| format!("bad --devices value `{v}`"))?;
                if out.devices == 0 {
                    return Err("--devices must be at least 1".into());
                }
            }
            "--runs" => {
                let v = it.next().ok_or("--runs needs a value")?;
                out.runs = v.parse().map_err(|_| format!("bad --runs value `{v}`"))?;
                if out.runs == 0 {
                    return Err("--runs must be at least 1".into());
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                out.seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                out.jobs = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
                if out.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--opt" => {
                let v = it.next().ok_or("--opt needs `0`, `1` or `2`")?;
                out.opt =
                    OptLevel::parse(v).ok_or_else(|| format!("bad --opt value `{v}` (0|1|2)"))?;
            }
            "--backend" => {
                let v = it.next().ok_or("--backend needs `interp` or `compiled`")?;
                out.backend = ExecBackend::parse(v)
                    .ok_or_else(|| format!("bad --backend value `{v}` (interp|compiled)"))?;
            }
            "--scenario" => out
                .scenarios
                .push(it.next().ok_or("--scenario needs a name")?.clone()),
            "--out" => out.out = PathBuf::from(it.next().ok_or("--out needs a directory")?),
            "--fingerprint" => {
                out.fingerprint = Some(PathBuf::from(
                    it.next().ok_or("--fingerprint needs a path")?,
                ));
            }
            "--no-fingerprint" => out.fingerprint = None,
            "--trace-out" => {
                out.trace_out = Some(PathBuf::from(it.next().ok_or("--trace-out needs a path")?));
            }
            "--metrics" => out.metrics = true,
            "--overhead-check" => out.overhead_check = true,
            "--overhead-limit" => {
                let v = it.next().ok_or("--overhead-limit needs a percentage")?;
                let pct: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --overhead-limit value `{v}`"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err("--overhead-limit must be a non-negative percentage".into());
                }
                out.overhead_limit = Some(pct);
                out.overhead_check = true;
            }
            "--force" => out.force = true,
            "--help" | "-h" => out.help = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(out)
}

/// The artifact a fleet sweep persists: the `fleet` driver's schema, so
/// `ocelotc bench fleet --replay` re-renders it from disk.
pub fn fleet_artifact(spec: &FleetSpec, aggs: &[FleetAggregate]) -> Artifact {
    let mut a = Artifact::new(
        "fleet",
        vec![
            ("bench".into(), Json::str(&spec.bench)),
            ("model".into(), Json::str(spec.model.name())),
            ("devices".into(), Json::u64(spec.devices)),
            ("seed".into(), Json::u64(spec.seed0)),
            ("runs_per_device".into(), Json::u64(spec.runs)),
            (
                "scenarios".into(),
                Json::Arr(spec.scenarios.iter().map(|s| Json::str(s)).collect()),
            ),
            ("backend".into(), Json::str(spec.backend.name())),
        ],
    );
    for agg in aggs {
        a.cells.push(agg.to_cell());
    }
    a
}

/// The wall-clock throughput fingerprint `ocelotc fleet` writes next to
/// the repo (`BENCH_fleet.json` by default). Deliberately **not** part
/// of the result artifact: elapsed time varies by machine, and the
/// artifact must stay byte-identical across `--jobs` widths.
pub fn fingerprint_json(spec: &FleetSpec, jobs: usize, elapsed_ms: u64) -> Json {
    fingerprint_json_with(spec, jobs, elapsed_ms, None)
}

/// The elapsed time of a second, telemetry-enabled pass over the same
/// sweep (`--overhead-check`), for the fingerprint's overhead fields.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryOverhead {
    /// Wall-clock of the telemetry-on pass, milliseconds.
    pub on_elapsed_ms: u64,
}

impl TelemetryOverhead {
    /// Throughput overhead of telemetry-on vs telemetry-off, percent
    /// (negative when the on-pass happened to run faster).
    pub fn overhead_pct(&self, off_elapsed_ms: u64) -> f64 {
        if off_elapsed_ms == 0 {
            return 0.0;
        }
        (self.on_elapsed_ms as f64 / off_elapsed_ms as f64 - 1.0) * 100.0
    }
}

/// [`fingerprint_json`] plus the `--overhead-check` fields when a
/// telemetry-on pass was timed.
pub fn fingerprint_json_with(
    spec: &FleetSpec,
    jobs: usize,
    elapsed_ms: u64,
    overhead: Option<TelemetryOverhead>,
) -> Json {
    let device_runs = spec.device_runs();
    let per_sec = if elapsed_ms == 0 {
        0.0
    } else {
        device_runs as f64 * 1000.0 / elapsed_ms as f64
    };
    let mut pairs = vec![
        ("schema_version", Json::Int(crate::artifact::SCHEMA_VERSION)),
        ("driver", Json::str("fleet_fingerprint")),
        ("bench", Json::str(&spec.bench)),
        ("backend", Json::str(spec.backend.name())),
        ("devices", Json::u64(spec.devices)),
        ("runs_per_device", Json::u64(spec.runs)),
        ("jobs", Json::u64(jobs as u64)),
        ("device_runs", Json::u64(device_runs)),
        ("elapsed_ms", Json::u64(elapsed_ms)),
        ("device_runs_per_sec", Json::Float(per_sec)),
    ];
    if let Some(o) = overhead {
        pairs.push(("telemetry_on_elapsed_ms", Json::u64(o.on_elapsed_ms)));
        pairs.push((
            "telemetry_overhead_pct",
            Json::Float(o.overhead_pct(elapsed_ms)),
        ));
    }
    Json::obj(pairs)
}

/// `ocelotc fleet` entry point: run the sweep, persist and render the
/// `fleet` artifact, and write the throughput fingerprint.
pub fn fleet_main(args: &[String]) -> ExitCode {
    let parsed = match parse_fleet_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{FLEET_USAGE}");
            return ExitCode::from(2);
        }
    };
    if parsed.help {
        print!("{FLEET_USAGE}");
        return ExitCode::SUCCESS;
    }
    if ocelot_apps::by_name(&parsed.app).is_none() {
        let names: Vec<&str> = ocelot_apps::all_with_extensions()
            .iter()
            .map(|b| b.name)
            .collect();
        eprintln!(
            "error: unknown app `{}` (known: {})",
            parsed.app,
            names.join(", ")
        );
        return ExitCode::from(2);
    }
    let scenarios = if parsed.scenarios.is_empty() {
        ocelot_scenario::all()
            .iter()
            .map(|s| s.name.to_string())
            .collect()
    } else {
        parsed.scenarios.clone()
    };
    for s in &scenarios {
        if let Err(e) = ocelot_scenario::parse(s) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    if let Err(msg) = lint_preflight(&parsed.app, &scenarios) {
        eprintln!("{msg}");
        if parsed.force {
            eprintln!("fleet: --force: sweeping despite lint errors");
        } else {
            return ExitCode::FAILURE;
        }
    }
    let spec = FleetSpec {
        bench: parsed.app.clone(),
        model: ExecModel::Ocelot,
        scenarios,
        devices: parsed.devices,
        seed0: parsed.seed,
        runs: parsed.runs,
        backend: parsed.backend,
        opt: parsed.opt,
    };
    eprintln!(
        "fleet: {} device-runs of `{}` across {} scenario(s) on {} worker(s), {} backend",
        spec.device_runs(),
        spec.bench,
        spec.scenarios.len(),
        parsed.jobs,
        spec.backend.name()
    );
    ocelot_telemetry::set_tracing(parsed.trace_out.is_some());
    ocelot_telemetry::set_metrics(parsed.metrics);
    let start = Instant::now();
    let aggs = run_fleet(
        &spec,
        FleetOpts {
            jobs: parsed.jobs,
            share_core: true,
        },
    );
    let elapsed_ms = start.elapsed().as_millis() as u64;
    let overhead = if parsed.overhead_check {
        // Same sweep again with both telemetry pillars on: the timing
        // gives the fingerprint's overhead fields, and the aggregates
        // double as an end-to-end telemetry-inertness check. With an
        // --overhead-limit, the on-pass is retried (min-of-3) before
        // concluding the budget is blown, so one scheduler hiccup on a
        // loaded machine does not fail the run.
        ocelot_telemetry::set_tracing(true);
        ocelot_telemetry::set_metrics(true);
        let attempts = if parsed.overhead_limit.is_some() {
            3
        } else {
            1
        };
        let mut on_elapsed_ms = u64::MAX;
        for attempt in 0..attempts {
            let on_start = Instant::now();
            let on_aggs = run_fleet(
                &spec,
                FleetOpts {
                    jobs: parsed.jobs,
                    share_core: true,
                },
            );
            let this_ms = on_start.elapsed().as_millis() as u64;
            on_elapsed_ms = on_elapsed_ms.min(this_ms);
            if on_aggs != aggs {
                ocelot_telemetry::set_tracing(parsed.trace_out.is_some());
                ocelot_telemetry::set_metrics(parsed.metrics);
                eprintln!("error: telemetry-on sweep changed the fleet aggregates");
                return ExitCode::FAILURE;
            }
            let o = TelemetryOverhead { on_elapsed_ms };
            let over = matches!(parsed.overhead_limit,
                Some(limit) if o.overhead_pct(elapsed_ms) > limit);
            if !over {
                break;
            }
            if attempt + 1 < attempts {
                eprintln!(
                    "fleet: telemetry-on pass {attempt} over the overhead limit \
                     ({:+.2}%), retrying",
                    o.overhead_pct(elapsed_ms)
                );
            }
        }
        ocelot_telemetry::set_tracing(parsed.trace_out.is_some());
        ocelot_telemetry::set_metrics(parsed.metrics);
        let o = TelemetryOverhead { on_elapsed_ms };
        if let Some(limit) = parsed.overhead_limit {
            if o.overhead_pct(elapsed_ms) > limit {
                eprintln!(
                    "error: telemetry overhead {:+.2}% exceeds the {limit}% limit \
                     (off {elapsed_ms} ms, best on {on_elapsed_ms} ms)",
                    o.overhead_pct(elapsed_ms)
                );
                return ExitCode::FAILURE;
            }
        }
        Some(o)
    } else {
        None
    };
    let artifact = fleet_artifact(&spec, &aggs);
    match artifact.save(&parsed.out) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot persist artifact: {e}");
            return ExitCode::FAILURE;
        }
    }
    match render_aggregates(&artifact) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: cannot render artifact: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "fleet: {} device-runs in {:.1} s ({:.0} device-runs/s)",
        spec.device_runs(),
        elapsed_ms as f64 / 1000.0,
        if elapsed_ms == 0 {
            0.0
        } else {
            spec.device_runs() as f64 * 1000.0 / elapsed_ms as f64
        }
    );
    if let Some(o) = overhead {
        eprintln!(
            "fleet: telemetry-on pass {:.1} s ({:+.2}% overhead)",
            o.on_elapsed_ms as f64 / 1000.0,
            o.overhead_pct(elapsed_ms)
        );
    }
    if parsed.metrics {
        print!(
            "\nmetrics:\n{}",
            ocelot_telemetry::metrics::render_snapshot()
        );
    }
    if let Some(tp) = &parsed.trace_out {
        match crate::telem::write_trace(tp) {
            Ok(n) => eprintln!("wrote {} ({n} spans)", tp.display()),
            Err(e) => {
                eprintln!("error: cannot write trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(fp) = &parsed.fingerprint {
        match write_fingerprint(fp, &spec, parsed.jobs, elapsed_ms, overhead) {
            Ok(()) => eprintln!("wrote {}", fp.display()),
            Err(e) => {
                eprintln!("error: cannot write fingerprint: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Writes the throughput fingerprint to `path`.
///
/// # Errors
///
/// Propagates serializer and I/O failures as strings.
pub fn write_fingerprint(
    path: &Path,
    spec: &FleetSpec,
    jobs: usize,
    elapsed_ms: u64,
    overhead: Option<TelemetryOverhead>,
) -> Result<(), String> {
    let text = fingerprint_json_with(spec, jobs, elapsed_ms, overhead)
        .render()
        .map_err(|e| e.to_string())?;
    std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Renders the per-scenario fleet table from an artifact's aggregates —
/// shared by the `fleet` driver's `render` and `ocelotc fleet`.
pub(crate) fn render_aggregates(a: &Artifact) -> Result<String, ArtifactError> {
    let bench = a
        .config_get("bench")
        .and_then(Json::as_str)
        .ok_or_else(|| ArtifactError::Schema("config `bench` missing".into()))?;
    let devices = a.config_u64("devices")?;
    let runs = a.config_u64("runs_per_device")?;
    let mut t = Table::new(&[
        "Scenario",
        "devices",
        "runs done",
        "viol",
        "reboots p50",
        "p90",
        "p99",
        "fresh p99",
        "charge ms/dev",
    ]);
    let mut total_devices = 0u64;
    let mut total_viol = 0u64;
    for cell in &a.cells {
        let agg = FleetAggregate::from_cell(cell)?;
        total_devices += agg.devices;
        total_viol += agg.stats.violations;
        let charge_ms = if agg.devices == 0 {
            0.0
        } else {
            agg.stats.off_time_us as f64 / 1000.0 / agg.devices as f64
        };
        t.row(vec![
            agg.scenario.clone(),
            agg.devices.to_string(),
            agg.stats.runs_completed.to_string(),
            agg.stats.violations.to_string(),
            format!("≤{}", agg.reboots_hist.percentile(50.0)),
            format!("≤{}", agg.reboots_hist.percentile(90.0)),
            format!("≤{}", agg.reboots_hist.percentile(99.0)),
            format!("≤{}", agg.fresh_hist.percentile(99.0)),
            format!("{charge_ms:.1}"),
        ]);
    }
    Ok(format!(
        "Fleet sweep: {devices} device(s) × {runs} run(s) of `{bench}` across the scenario \
         distribution\n{}\
         Reading guide: each row folds its devices' stats exactly (the per-cell\n\
         interpreter path is the oracle); percentile columns are log2-bucket upper\n\
         bounds of the per-device reboot and freshness-failure distributions\n\
         (total: {total_devices} devices, {total_viol} violations).\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_core_is_shareable_across_workers() {
        // The whole fleet design rests on one read-only core (and the
        // compiled program inside it) being safely shared by reference
        // across pool threads — assert it at the type level so a
        // non-Sync field can never sneak in.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachineCore<'static>>();
        assert_send_sync::<Arc<MachineCore<'static>>>();
    }

    #[test]
    fn histogram_buckets_follow_log2_ranges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_max(0), 0);
        assert_eq!(Histogram::bucket_max(1), 1);
        assert_eq!(Histogram::bucket_max(2), 3);
        assert_eq!(Histogram::bucket_max(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 40, u64::MAX] {
            let b = Histogram::bucket_of(v);
            assert!(v <= Histogram::bucket_max(b), "{v} fits its bucket");
            if b > 0 {
                assert!(v > Histogram::bucket_max(b - 1), "{v} above the previous");
            }
        }
    }

    #[test]
    fn histogram_bucket_edges_are_exact_at_every_power_of_two() {
        // Every bucket boundary: 2^(b-1) opens bucket b, 2^b - 1 closes
        // it, and bucket_max names exactly that closing value.
        for b in 1..=63usize {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            assert_eq!(Histogram::bucket_of(lo), b, "2^{} opens bucket {b}", b - 1);
            assert_eq!(Histogram::bucket_of(hi), b, "2^{b} - 1 closes bucket {b}");
            assert_eq!(Histogram::bucket_max(b), hi);
            if hi < u64::MAX {
                assert_eq!(Histogram::bucket_of(hi + 1), b + 1);
            }
        }
        // The top bucket holds [2^63, u64::MAX] and reports MAX as its
        // ceiling — as does any out-of-range index asked of bucket_max.
        assert_eq!(Histogram::bucket_of(1u64 << 63), 64);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_max(64), u64::MAX);
        assert_eq!(Histogram::bucket_max(65), u64::MAX);
        assert_eq!(Histogram::bucket_max(HIST_BUCKETS), u64::MAX);
    }

    #[test]
    fn histogram_merge_and_record_saturate_instead_of_wrapping() {
        // Build a histogram whose zero-bucket already sits at the
        // ceiling (via the JSON inverse — recording MAX devices one by
        // one is not an option).
        let mut full = vec![Json::u64(0); HIST_BUCKETS];
        full[0] = Json::u64(u64::MAX);
        let mut h = Histogram::from_json(&Json::Arr(full)).unwrap();
        // One more device in the same bucket pins, not wraps.
        h.record(0);
        assert_eq!(h.buckets()[0], u64::MAX);
        // Merging another saturated histogram pins too.
        let other = h.clone();
        h.merge(&other);
        assert_eq!(h.buckets()[0], u64::MAX);
        // Untouched buckets merge exactly.
        let mut a = Histogram::default();
        a.record(5);
        h.merge(&a);
        assert_eq!(h.buckets()[Histogram::bucket_of(5)], 1);
    }

    #[test]
    fn histogram_merge_equals_pooled_recording() {
        let values = [0u64, 0, 1, 3, 3, 9, 130, 7, 64];
        let mut pooled = Histogram::default();
        for v in values {
            pooled.record(v);
        }
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for (i, v) in values.into_iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, pooled);
        assert_eq!(pooled.total(), values.len() as u64);
    }

    #[test]
    fn histogram_percentiles_bound_the_tail() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.record(0);
        }
        for _ in 0..9 {
            h.record(5); // bucket 3, max 7
        }
        h.record(1000); // bucket 10, max 1023
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(95.0), 7);
        assert_eq!(h.percentile(100.0), 1023);
        assert_eq!(Histogram::default().percentile(99.0), 0);
    }

    #[test]
    fn histogram_json_round_trips_and_rejects_drift() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(77);
        assert_eq!(Histogram::from_json(&h.to_json()).unwrap(), h);
        assert!(Histogram::from_json(&Json::Null).is_err());
        assert!(Histogram::from_json(&Json::Arr(vec![Json::u64(1)])).is_err());
        let mut bad = h.to_json();
        if let Json::Arr(arr) = &mut bad {
            arr[3] = Json::str("x");
        }
        assert!(Histogram::from_json(&bad).is_err());
    }

    #[test]
    fn aggregate_record_and_merge_agree() {
        let mk = |reboots, fresh| Stats {
            reboots,
            fresh_violations: fresh,
            on_cycles: 100 + reboots,
            runs_completed: 1,
            breakdown: ocelot_runtime::stats::Breakdown {
                compute: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let devices = [mk(0, 0), mk(3, 1), mk(9, 0), mk(1, 4)];
        let mut whole = FleetAggregate::new("rf-lab");
        for d in &devices {
            whole.record(d);
        }
        let mut left = FleetAggregate::new("rf-lab");
        let mut right = FleetAggregate::new("rf-lab");
        for (i, d) in devices.iter().enumerate() {
            if i < 2 {
                left.record(d);
            } else {
                right.record(d);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(whole.devices, 4);
        assert_eq!(whole.stats.reboots, 13);
        assert_eq!(whole.stats.breakdown.compute, 40);
        // Cell round-trip is exact and strict.
        assert_eq!(FleetAggregate::from_cell(&whole.to_cell()).unwrap(), whole);
        assert!(FleetAggregate::from_cell(&Json::obj(vec![])).is_err());
    }

    #[test]
    fn device_spec_maps_indices_round_robin() {
        let spec = FleetSpec {
            bench: "tire".into(),
            model: ExecModel::Ocelot,
            scenarios: vec!["rf-lab".into(), "brownout".into()],
            devices: 5,
            seed0: 100,
            runs: 2,
            backend: ExecBackend::Compiled,
            opt: OptLevel::default(),
        };
        let c0 = spec.device_spec(0);
        let c3 = spec.device_spec(3);
        assert_eq!(c0.scenario.as_deref(), Some("rf-lab"));
        assert_eq!(c0.seed, 100);
        assert_eq!(c3.scenario.as_deref(), Some("brownout"));
        assert_eq!(c3.seed, 103);
        assert_eq!(c3.workload, Workload::Harvested { runs: 2 });
        assert_eq!(c3.backend, ExecBackend::Compiled);
        assert_eq!(spec.device_runs(), 10);
    }

    #[test]
    fn fleet_args_parse_and_reject() {
        let strings = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let d = parse_fleet_args(&[]).unwrap();
        assert_eq!(d.app, "tire");
        assert_eq!(d.devices, DEFAULT_FLEET_DEVICES);
        assert_eq!(d.runs, DEFAULT_FLEET_RUNS);
        assert_eq!(d.devices * d.runs, 1_000_000, "acceptance-scale default");
        assert_eq!(d.backend, ExecBackend::Compiled);
        assert!(d.fingerprint.is_some());
        let a = parse_fleet_args(&strings(&[
            "--app",
            "fusion",
            "--devices",
            "500",
            "--runs",
            "2",
            "--seed",
            "9",
            "--jobs",
            "3",
            "--backend",
            "interp",
            "--scenario",
            "rf-lab",
            "--scenario",
            "brownout@7",
            "--no-fingerprint",
        ]))
        .unwrap();
        assert_eq!(a.app, "fusion");
        assert_eq!(a.devices, 500);
        assert_eq!(a.runs, 2);
        assert_eq!(a.seed, 9);
        assert_eq!(a.jobs, 3);
        assert_eq!(a.backend, ExecBackend::Interp);
        assert_eq!(a.scenarios, vec!["rf-lab", "brownout@7"]);
        assert!(a.fingerprint.is_none());
        for bad in [
            vec!["--devices", "0"],
            vec!["--devices"],
            vec!["--runs", "0"],
            vec!["--jobs", "0"],
            vec!["--backend", "jit"],
            vec!["--frobnicate"],
        ] {
            assert!(parse_fleet_args(&strings(&bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn fingerprint_records_throughput() {
        let spec = FleetSpec {
            bench: "tire".into(),
            model: ExecModel::Ocelot,
            scenarios: vec!["rf-lab".into()],
            devices: 2_000,
            seed0: 1,
            runs: 1,
            backend: ExecBackend::Compiled,
            opt: OptLevel::default(),
        };
        let j = fingerprint_json(&spec, 4, 500);
        assert_eq!(j.get("device_runs").and_then(Json::as_u64), Some(2_000));
        assert_eq!(
            j.get("device_runs_per_sec").and_then(Json::as_f64),
            Some(4_000.0)
        );
        // Zero elapsed must not divide by zero.
        let z = fingerprint_json(&spec, 4, 0);
        assert_eq!(
            z.get("device_runs_per_sec").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn lint_preflight_clears_shipped_apps_across_the_registry() {
        // The shipped benchmarks must never be refused by their own
        // pre-flight: the whole registry's harvested capacities are
        // ample for every Table-1 app.
        let scenarios: Vec<String> = ocelot_scenario::all()
            .iter()
            .map(|s| s.name.to_string())
            .collect();
        for b in ocelot_apps::all_with_extensions() {
            assert_eq!(
                lint_preflight(b.name, &scenarios),
                Ok(()),
                "`{}` refused by its own pre-flight",
                b.name
            );
        }
        // An unknown app is fleet_main's problem, not the linter's.
        assert_eq!(lint_preflight("no-such-app", &scenarios), Ok(()));
    }

    #[test]
    fn force_flag_parses_and_defaults_off() {
        let none = parse_fleet_args(&[]).unwrap();
        assert!(!none.force);
        let forced = parse_fleet_args(&["--force".to_string()]).unwrap();
        assert!(forced.force);
    }
}
