//! A small hand-written JSON value, serializer, and parser.
//!
//! `serde` is unavailable offline, and the persisted bench artifacts
//! (see [`crate::artifact`]) need a *byte-stable* format: the same sweep
//! must serialize to identical bytes whether it ran on one worker or
//! eight, today or next year. The rules that buy that stability:
//!
//! * **Objects preserve insertion order** (they are association lists,
//!   not hash maps), so writers control field order deterministically.
//! * **Integers and floats are distinct.** Integers are kept as `i128`
//!   (covering the full `u64` counter range exactly); floats always
//!   serialize with a `.` or exponent (`{:?}`), so the parser can tell
//!   them apart and round-trip both losslessly — Rust guarantees
//!   shortest-round-trip float formatting.
//! * **Non-finite floats are rejected** at serialization time (JSON has
//!   no NaN/Infinity), rather than silently emitted as `null`.
//!
//! The grammar parsed is standard JSON (RFC 8259) minus one liberty the
//! serializer never takes: duplicate object keys are accepted by the
//! parser (last wins on lookup, all preserved in order).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional or exponent part.
    Int(i128),
    /// A number with a fractional or exponent part (always finite).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Errors from [`Json::render`] or [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// A NaN or infinite float reached the serializer.
    NonFiniteFloat,
    /// Parse error with a byte offset and message.
    Parse {
        /// Byte offset of the error in the input.
        at: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::NonFiniteFloat => write!(f, "non-finite float cannot be serialized"),
            JsonError::Parse { at, msg } => write!(f, "JSON parse error at byte {at}: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from pairs (convenience constructor).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// An integer from a `u64` counter.
    pub fn u64(v: u64) -> Json {
        Json::Int(v as i128)
    }

    /// Member lookup on objects (last duplicate wins); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Any number as `f64` (integers convert; floats pass through).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements for arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value's pairs for objects.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the exact bytes written to result files.
    ///
    /// # Errors
    ///
    /// [`JsonError::NonFiniteFloat`] if any float is NaN or infinite.
    pub fn render(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out, 0)?;
        out.push('\n');
        Ok(out)
    }

    /// Serializes to one line with no indentation and no trailing
    /// newline — the wire format for line-delimited protocols (newlines
    /// inside strings are escaped, so the line framing always holds).
    ///
    /// # Errors
    ///
    /// [`JsonError::NonFiniteFloat`] if any float is NaN or infinite.
    pub fn render_compact(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write_compact(&mut out)?;
        Ok(out)
    }

    fn write_compact(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out)?;
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_compact(out)?;
                }
                out.push('}');
            }
            leaf => leaf.write(out, 0)?,
        }
        Ok(())
    }

    fn write(&self, out: &mut String, indent: usize) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(v) => {
                if !v.is_finite() {
                    return Err(JsonError::NonFiniteFloat);
                }
                // `{:?}` always includes `.` or an exponent, keeping
                // floats distinguishable from ints on re-parse.
                out.push_str(&format!("{v:?}"));
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return Ok(());
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1)?;
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return Ok(());
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1)?;
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
        Ok(())
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// [`JsonError::Parse`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting ceiling for the recursive-descent parser: artifacts nest a
/// handful of levels; a corrupted or hostile file with thousands of
/// `[`s must fail with a parse error, not a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::Parse {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped on ASCII
                // boundaries, so this slice is valid UTF-8.
                s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf-8"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            s.push(c);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and, for surrogate pairs, the
    /// following `\uXXXX`); leaves `pos` after the last consumed digit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a low surrogate escape next.
            if self.peek() != Some(b'\\') {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 1;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[start + (self.bytes[start] == b'-') as usize] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err("malformed float literal"))?;
            if !v.is_finite() {
                return Err(self.err("float literal overflows f64"));
            }
            Ok(Json::Float(v))
        } else {
            let v: i128 = text
                .parse()
                .map_err(|_| self.err("integer literal overflows i128"))?;
            Ok(Json::Int(v))
        }
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        parse(&v.render().unwrap()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-7),
            Json::Int(u64::MAX as i128),
            Json::Float(0.5),
            Json::Float(-1.25e-9),
            Json::Float(1e300),
            Json::Str("hi \"there\"\n\t\\ \u{1F600} \u{0007}".into()),
        ] {
            assert_eq!(round_trip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn floats_keep_their_type_through_the_round_trip() {
        // 1.0 must not come back as Int(1).
        assert_eq!(round_trip(&Json::Float(1.0)), Json::Float(1.0));
        assert_eq!(round_trip(&Json::Int(1)), Json::Int(1));
    }

    #[test]
    fn nested_structures_round_trip_and_preserve_order() {
        let v = Json::obj(vec![
            ("zeta", Json::Arr(vec![Json::Int(1), Json::Null])),
            ("alpha", Json::obj(vec![("k", Json::Float(2.5))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = v.render().unwrap();
        assert_eq!(parse(&text).unwrap(), v);
        // Insertion order survives: zeta serializes before alpha.
        assert!(text.find("zeta").unwrap() < text.find("alpha").unwrap());
    }

    #[test]
    fn rendering_is_byte_stable() {
        let v = Json::obj(vec![
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::Str("x".into())])),
        ]);
        assert_eq!(v.render().unwrap(), v.render().unwrap());
        assert_eq!(
            v.render().unwrap(),
            "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}\n"
        );
    }

    #[test]
    fn compact_rendering_is_one_reparsable_line() {
        let v = Json::obj(vec![
            ("a", Json::Int(1)),
            (
                "b",
                Json::Arr(vec![Json::Str("x\ny".into()), Json::Obj(vec![])]),
            ),
            ("c", Json::obj(vec![("n", Json::Null)])),
        ]);
        let line = v.render_compact().unwrap();
        assert_eq!(
            line,
            "{\"a\": 1, \"b\": [\"x\\ny\", {}], \"c\": {\"n\": null}}"
        );
        assert!(!line.contains('\n'), "framing: one physical line");
        assert_eq!(parse(&line).unwrap(), v);
        assert_eq!(
            Json::Float(f64::NAN).render_compact(),
            Err(JsonError::NonFiniteFloat)
        );
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Float(bad).render(), Err(JsonError::NonFiniteFloat));
            // ... even deep inside a structure.
            let nested = Json::obj(vec![("x", Json::Arr(vec![Json::Float(bad)]))]);
            assert_eq!(nested.render(), Err(JsonError::NonFiniteFloat));
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"",
            "nul",
            "[1] x",
            "+1",
            "--1",
            "\u{0007}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parser_accepts_interchange_details() {
        assert_eq!(parse(" null ").unwrap(), Json::Null);
        assert_eq!(parse("-0").unwrap(), Json::Int(0));
        assert_eq!(parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(
            parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("Aé😀".into())
        );
        // Duplicate keys: preserved, last wins on lookup.
        let v = parse("{\"k\": 1, \"k\": 2}").unwrap();
        assert_eq!(v.get("k"), Some(&Json::Int(2)));
    }

    #[test]
    fn pathological_nesting_is_a_parse_error_not_a_stack_overflow() {
        // 100k unclosed brackets: must return an error gracefully.
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(matches!(err, JsonError::Parse { .. }), "{err}");
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(parse(&obj_bomb).is_err());
        // ...while reasonable nesting (within 128 levels) still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn accessors_pick_the_right_variants() {
        let v = Json::obj(vec![
            ("i", Json::u64(u64::MAX)),
            ("f", Json::Float(1.5)),
            ("s", Json::str("x")),
            ("b", Json::Bool(true)),
        ]);
        assert_eq!(v.get("i").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("i").unwrap().as_i64(), None, "out of i64 range");
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.as_obj().is_some());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("k").is_none());
    }
}
