//! Persistent, versioned result artifacts for the evaluation harness.
//!
//! Every driver (see [`crate::drivers`]) writes one JSON file per run
//! under the `--out` directory (default `target/bench-results/`), named
//! `<driver>.json`. The file is the *single source of truth* for the
//! driver's table or figure: rendering is a pure function of the
//! artifact, so `--replay` re-emits any paper artifact without
//! re-simulating — the workflow the ROADMAP's persistence item asks for.
//!
//! ## Envelope (schema version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "driver": "fig7",
//!   "config": { "runs": 25, "seed": 42 },
//!   "cells": [ { "bench": "activity", "model": "JIT", ... } ]
//! }
//! ```
//!
//! `config` records the sweep parameters for provenance; `cells` holds
//! one object per evaluated cell **in deterministic order** (the job
//! list's order, independent of `--jobs`). Simulation cells carry a
//! `"stats"` member serialized field-for-field from
//! [`ocelot_runtime::stats::Stats`] via its [`Stats::counters`]
//! surface; the full schema, including per-driver cell layouts, is
//! documented in `docs/bench.md`.
//!
//! Readers are strict: an unknown `schema_version`, a missing counter,
//! or an unknown counter name is an error, never a silent default —
//! that strictness is what lets the determinism test compare artifacts
//! byte-for-byte.

use crate::json::{self, Json, JsonError};
use ocelot_runtime::stats::Stats;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Version written to and required from every artifact.
pub const SCHEMA_VERSION: i128 = 1;

/// One driver's persisted results.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// The driver that produced (and can render) this artifact.
    pub driver: String,
    /// Sweep parameters, for provenance and captions.
    pub config: Vec<(String, Json)>,
    /// One object per cell, in deterministic (job-list) order.
    pub cells: Vec<Json>,
}

/// Errors loading, validating, or interpreting artifacts.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure (path included in the message).
    Io(String, io::Error),
    /// Malformed JSON.
    Json(JsonError),
    /// Structurally valid JSON that does not match the schema.
    Schema(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(path, e) => write!(f, "{path}: {e}"),
            ArtifactError::Json(e) => write!(f, "{e}"),
            ArtifactError::Schema(msg) => write!(f, "artifact schema error: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl ArtifactError {
    /// Prefixes the on-disk path onto a parse/validation error, so a
    /// replay diagnostic for a truncated file or an unknown schema
    /// version names the file it came from. I/O errors already carry
    /// their path.
    pub fn in_file(self, path: &Path) -> ArtifactError {
        match self {
            ArtifactError::Io(..) => self,
            ArtifactError::Json(e) => {
                ArtifactError::Schema(format!("{}: malformed JSON: {e}", path.display()))
            }
            ArtifactError::Schema(msg) => {
                ArtifactError::Schema(format!("{}: {msg}", path.display()))
            }
        }
    }
}

impl From<JsonError> for ArtifactError {
    fn from(e: JsonError) -> Self {
        ArtifactError::Json(e)
    }
}

impl Artifact {
    /// Starts an empty artifact for `driver` with the given config.
    pub fn new(driver: &str, config: Vec<(String, Json)>) -> Self {
        Artifact {
            driver: driver.to_string(),
            config,
            cells: Vec::new(),
        }
    }

    /// A config entry, if present.
    pub fn config_get(&self, key: &str) -> Option<&Json> {
        self.config.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A `u64` config entry.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Schema`] when missing or not an integer.
    pub fn config_u64(&self, key: &str) -> Result<u64, ArtifactError> {
        self.config_get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| ArtifactError::Schema(format!("config `{key}` missing or not a u64")))
    }

    /// The whole artifact as a JSON value (the envelope above).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("driver", Json::str(&self.driver)),
            ("config", Json::Obj(self.config.clone())),
            ("cells", Json::Arr(self.cells.clone())),
        ])
    }

    /// The exact file bytes: rendered JSON with a trailing newline.
    ///
    /// # Errors
    ///
    /// Propagates [`JsonError::NonFiniteFloat`] from the serializer.
    pub fn render(&self) -> Result<String, ArtifactError> {
        Ok(self.to_json().render()?)
    }

    /// Parses and validates an envelope.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Schema`] on version or shape mismatches.
    pub fn from_json(v: &Json) -> Result<Artifact, ArtifactError> {
        let version = v
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or_else(|| ArtifactError::Schema("missing schema_version".into()))?;
        if i128::from(version) != SCHEMA_VERSION {
            return Err(ArtifactError::Schema(format!(
                "unsupported schema_version {version} (this build reads {SCHEMA_VERSION})"
            )));
        }
        let driver = v
            .get("driver")
            .and_then(Json::as_str)
            .ok_or_else(|| ArtifactError::Schema("missing driver".into()))?
            .to_string();
        let config = v
            .get("config")
            .and_then(Json::as_obj)
            .ok_or_else(|| ArtifactError::Schema("missing config object".into()))?
            .to_vec();
        let cells = v
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or_else(|| ArtifactError::Schema("missing cells array".into()))?
            .to_vec();
        Ok(Artifact {
            driver,
            config,
            cells,
        })
    }

    /// Parses an artifact from file bytes.
    ///
    /// # Errors
    ///
    /// JSON or schema errors as for [`Artifact::from_json`].
    pub fn from_text(text: &str) -> Result<Artifact, ArtifactError> {
        Self::from_json(&json::parse(text)?)
    }

    /// The on-disk path for this driver under `dir`.
    pub fn path_in(dir: &Path, driver: &str) -> PathBuf {
        dir.join(format!("{driver}.json"))
    }

    /// Writes `<dir>/<driver>.json` (creating `dir`) and returns the
    /// path.
    ///
    /// # Errors
    ///
    /// I/O failures, or serializer errors on non-finite floats.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, ArtifactError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ArtifactError::Io(dir.display().to_string(), e))?;
        let path = Self::path_in(dir, &self.driver);
        let text = self.render()?;
        std::fs::write(&path, text)
            .map_err(|e| ArtifactError::Io(path.display().to_string(), e))?;
        Ok(path)
    }

    /// Reads and validates `<dir>/<driver>.json`, checking the `driver`
    /// field matches the file name.
    ///
    /// # Errors
    ///
    /// I/O, JSON, or schema errors (including a driver-name mismatch).
    pub fn load(dir: &Path, driver: &str) -> Result<Artifact, ArtifactError> {
        let path = Self::path_in(dir, driver);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ArtifactError::Io(path.display().to_string(), e))?;
        let a = Self::from_text(&text).map_err(|e| e.in_file(&path))?;
        if a.driver != driver {
            return Err(ArtifactError::Schema(format!(
                "artifact at {} claims driver `{}`, expected `{driver}`",
                path.display(),
                a.driver
            )));
        }
        Ok(a)
    }
}

/// Serializes every counter of `s` (scalars in declaration order, then
/// the breakdown) — the `"stats"` member of simulation cells.
pub fn stats_to_json(s: &Stats) -> Json {
    let mut pairs: Vec<(String, Json)> = s
        .counters()
        .into_iter()
        .map(|(k, v)| (k.to_string(), Json::u64(v)))
        .collect();
    pairs.push((
        "breakdown".to_string(),
        Json::Obj(
            s.breakdown
                .counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), Json::u64(v)))
                .collect(),
        ),
    ));
    Json::Obj(pairs)
}

/// Inverse of [`stats_to_json`]; strict in both directions (every
/// counter present, no unknown members).
///
/// # Errors
///
/// [`ArtifactError::Schema`] on any missing, extra, or mistyped field.
pub fn stats_from_json(v: &Json) -> Result<Stats, ArtifactError> {
    let pairs = v
        .as_obj()
        .ok_or_else(|| ArtifactError::Schema("stats is not an object".into()))?;
    let mut s = Stats::default();
    // Distinct names seen, so duplicated keys cannot mask a missing
    // counter (the JSON parser preserves duplicates).
    let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (k, val) in pairs {
        if !seen.insert(k.as_str()) {
            return Err(ArtifactError::Schema(format!(
                "duplicate stats member `{k}`"
            )));
        }
        if k == "breakdown" {
            let bd = val
                .as_obj()
                .ok_or_else(|| ArtifactError::Schema("breakdown is not an object".into()))?;
            let mut bseen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
            for (bk, bv) in bd {
                if !bseen.insert(bk.as_str()) {
                    return Err(ArtifactError::Schema(format!(
                        "duplicate breakdown counter `{bk}`"
                    )));
                }
                let n = bv.as_u64().ok_or_else(|| {
                    ArtifactError::Schema(format!("breakdown counter `{bk}` is not a u64"))
                })?;
                if !s.breakdown.set_counter(bk, n) {
                    return Err(ArtifactError::Schema(format!(
                        "unknown breakdown counter `{bk}`"
                    )));
                }
            }
            if bseen.len() != s.breakdown.counters().len() {
                return Err(ArtifactError::Schema(
                    "breakdown is missing counters".into(),
                ));
            }
            continue;
        }
        let n = val
            .as_u64()
            .ok_or_else(|| ArtifactError::Schema(format!("stats counter `{k}` is not a u64")))?;
        if !s.set_counter(k, n) {
            return Err(ArtifactError::Schema(format!(
                "unknown stats counter `{k}`"
            )));
        }
    }
    // `seen` holds distinct names only: exactly the counters + breakdown.
    if seen.len() != s.counters().len() + 1 || !seen.contains("breakdown") {
        return Err(ArtifactError::Schema(format!(
            "stats has {} of {} members",
            seen.len(),
            s.counters().len() + 1
        )));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> Stats {
        let mut s = Stats::default();
        for (i, (name, _)) in Stats::default().counters().into_iter().enumerate() {
            s.set_counter(name, (i as u64 + 1) * 1_000_003);
        }
        for (i, (name, _)) in s.breakdown.clone().counters().into_iter().enumerate() {
            s.breakdown.set_counter(name, u64::MAX - i as u64);
        }
        s
    }

    #[test]
    fn stats_round_trip_is_exact() {
        let s = sample_stats();
        assert_eq!(stats_from_json(&stats_to_json(&s)).unwrap(), s);
    }

    #[test]
    fn stats_reader_is_strict() {
        let s = sample_stats();
        // Remove a counter → error.
        let Json::Obj(mut pairs) = stats_to_json(&s) else {
            unreachable!()
        };
        pairs.retain(|(k, _)| k != "on_cycles");
        assert!(stats_from_json(&Json::Obj(pairs.clone())).is_err());
        // Unknown counter → error.
        let mut extra = pairs.clone();
        extra.push(("brand_new_counter".into(), Json::u64(1)));
        extra.push(("on_cycles".into(), Json::u64(1)));
        assert!(stats_from_json(&Json::Obj(extra)).is_err());
        // A duplicated counter must not mask a missing one: here
        // `on_cycles` was removed and `reboots` appears twice, keeping
        // the member count right — still an error.
        let mut duped = pairs.clone();
        duped.push(("reboots".into(), Json::u64(1)));
        assert!(
            stats_from_json(&Json::Obj(duped)).is_err(),
            "duplicate keys must not satisfy the completeness check"
        );
        // Mistyped counter → error.
        assert!(stats_from_json(&Json::obj(vec![("on_cycles", Json::str("9"))])).is_err());
        assert!(stats_from_json(&Json::Null).is_err());
    }

    #[test]
    fn envelope_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("ocelot-artifact-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut a = Artifact::new(
            "unit_test_driver",
            vec![
                ("runs".into(), Json::u64(25)),
                ("seed".into(), Json::u64(42)),
            ],
        );
        a.cells.push(Json::obj(vec![
            ("bench", Json::str("activity")),
            ("stats", stats_to_json(&sample_stats())),
        ]));
        let path = a.save(&dir).unwrap();
        assert_eq!(path, dir.join("unit_test_driver.json"));
        let b = Artifact::load(&dir, "unit_test_driver").unwrap();
        assert_eq!(a, b);
        assert_eq!(b.config_u64("runs").unwrap(), 25);
        assert!(b.config_u64("missing").is_err());
        // Same bytes both times — the determinism test's foundation.
        assert_eq!(a.render().unwrap(), b.render().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn envelope_reader_rejects_drift() {
        // Wrong version.
        let v = json::parse(r#"{"schema_version": 999, "driver": "x", "config": {}, "cells": []}"#)
            .unwrap();
        assert!(matches!(
            Artifact::from_json(&v),
            Err(ArtifactError::Schema(_))
        ));
        // Missing members.
        for bad in [
            r#"{"driver": "x", "config": {}, "cells": []}"#,
            r#"{"schema_version": 1, "config": {}, "cells": []}"#,
            r#"{"schema_version": 1, "driver": "x", "cells": []}"#,
            r#"{"schema_version": 1, "driver": "x", "config": {}}"#,
        ] {
            let v = json::parse(bad).unwrap();
            assert!(Artifact::from_json(&v).is_err(), "{bad}");
        }
        // Driver-name mismatch on load.
        let dir = std::env::temp_dir().join("ocelot-artifact-mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        let a = Artifact::new("actual", vec![]);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("claimed.json"), a.render().unwrap()).unwrap();
        assert!(matches!(
            Artifact::load(&dir, "claimed"),
            Err(ArtifactError::Schema(_))
        ));
        assert!(matches!(
            Artifact::load(&dir, "nonexistent"),
            Err(ArtifactError::Io(..))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
