//! Telemetry export: Chrome `trace_event` JSON out of the span buffers
//! `ocelot-telemetry` records.
//!
//! The telemetry crate is a dependency leaf (every pipeline crate
//! probes into it), so it cannot use this crate's [`Json`] layer — the
//! exporter lives here instead. The emitted document is the Trace
//! Event Format's JSON-object form: `{"traceEvents": [...]}` with one
//! complete (`"ph": "X"`) event per span, timestamps in microseconds
//! since the process's trace epoch. Both Perfetto and
//! `chrome://tracing` load it directly; the strict [`crate::json`]
//! reader round-trips it (a CI smoke test holds that).
//!
//! Wall-clock readings appear **only** in these output files — never in
//! schema-v1 artifacts, which must stay byte-identical with telemetry
//! on or off.

use crate::json::Json;
use ocelot_telemetry::SpanRec;
use std::path::Path;

/// One span as a Chrome `trace_event` complete event.
fn event(s: &SpanRec) -> Json {
    Json::obj(vec![
        ("name", Json::str(s.name)),
        ("cat", Json::str(s.cat)),
        ("ph", Json::str("X")),
        ("ts", Json::Float(s.start_ns as f64 / 1000.0)),
        ("dur", Json::Float(s.dur_ns as f64 / 1000.0)),
        ("pid", Json::u64(1)),
        ("tid", Json::u64(s.tid)),
    ])
}

/// Renders spans as a Chrome `trace_event` JSON document
/// (Perfetto-loadable).
pub fn chrome_trace(spans: &[SpanRec]) -> Json {
    Json::obj(vec![(
        "traceEvents",
        Json::Arr(spans.iter().map(event).collect()),
    )])
}

/// Drains every recorded span and writes the Chrome trace to `path`,
/// returning how many spans it exported.
///
/// # Errors
///
/// One-line messages for serializer and I/O failures.
pub fn write_trace(path: &Path) -> Result<usize, String> {
    let spans = ocelot_telemetry::drain_spans();
    let dropped = ocelot_telemetry::dropped_spans();
    if dropped > 0 {
        eprintln!("trace: {dropped} spans dropped on full buffers (trace is truncated)");
    }
    let text = chrome_trace(&spans)
        .render()
        .map_err(|e| format!("render trace: {e}"))?;
    std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(spans.len())
}

/// The distinct span names present in a Chrome trace document, sorted —
/// what the CI trace-smoke step greps for.
///
/// # Errors
///
/// A one-line schema message when `doc` is not a trace document.
pub fn span_names(doc: &Json) -> Result<Vec<String>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace document has no traceEvents array")?;
    let mut names: Vec<String> = events
        .iter()
        .map(|e| {
            e.get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or("trace event has no name")
        })
        .collect::<Result<_, _>>()?;
    names.sort_unstable();
    names.dedup();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn rec(name: &'static str, start_ns: u64, dur_ns: u64) -> SpanRec {
        SpanRec {
            name,
            cat: "pipeline",
            tid: 1,
            start_ns,
            dur_ns,
        }
    }

    #[test]
    fn chrome_trace_round_trips_through_the_strict_reader() {
        let spans = vec![rec("parse", 10_500, 2_000), rec("execute", 50_000, 750)];
        let doc = chrome_trace(&spans);
        let text = doc.render().unwrap();
        let back = json::parse(&text).expect("strict reader accepts the trace");
        assert_eq!(back, doc);
        let events = back.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        let e = &events[0];
        assert_eq!(e.get("name").and_then(Json::as_str), Some("parse"));
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(e.get("ts").and_then(Json::as_f64), Some(10.5));
        assert_eq!(e.get("dur").and_then(Json::as_f64), Some(2.0));
        assert_eq!(e.get("tid").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn span_names_dedups_and_sorts() {
        let spans = vec![
            rec("execute", 0, 1),
            rec("parse", 2, 1),
            rec("execute", 4, 1),
        ];
        let names = span_names(&chrome_trace(&spans)).unwrap();
        assert_eq!(names, vec!["execute".to_string(), "parse".to_string()]);
        assert!(span_names(&Json::obj(vec![])).is_err());
    }
}
