//! Raw observation traces as versioned artifacts — the `--traces` flag.
//!
//! A trace artifact is the same schema-version-1 envelope every driver
//! writes ([`crate::artifact`]), persisted next to the driver's result
//! file as `<driver>_traces.json`. Its cells mirror the result
//! artifact's cells one-for-one (same identity members, same order) but
//! carry a `"trace"` member: the committed [`Obs`] log of the cell's
//! machine, event by event. Like every artifact it is replayable —
//! `--replay --traces` re-renders the summary from the file without
//! re-simulating — and the reader is strict, so the determinism suite
//! can compare trace artifacts byte-for-byte.
//!
//! The machine's observation log keeps at most 200 000 committed events
//! per cell (violations always retained), so a pathological `--runs`
//! override truncates the oldest events rather than exhausting memory.

use crate::artifact::{Artifact, ArtifactError};
use crate::json::Json;
use ocelot_ir::InstrRef;
use ocelot_runtime::detect::{ViolationEvent, ViolationKind};
use ocelot_runtime::obs::Obs;

/// The artifact name (and file stem) of the trace companion of
/// `driver`.
pub fn traces_driver_name(driver: &str) -> String {
    format!("{driver}_traces")
}

fn instr_ref_to_json(r: &InstrRef) -> Json {
    Json::obj(vec![
        ("func", Json::u64(r.func.0 as u64)),
        ("label", Json::u64(r.label.0 as u64)),
    ])
}

fn instr_ref_from_json(v: &Json) -> Result<InstrRef, ArtifactError> {
    let func = v
        .get("func")
        .and_then(Json::as_u64)
        .ok_or_else(|| ArtifactError::Schema("instr ref missing func".into()))?;
    let label = v
        .get("label")
        .and_then(Json::as_u64)
        .ok_or_else(|| ArtifactError::Schema("instr ref missing label".into()))?;
    Ok(InstrRef {
        func: ocelot_ir::FuncId(func as u32),
        label: ocelot_ir::Label(label as u32),
    })
}

fn refs_to_json(refs: &[InstrRef]) -> Json {
    Json::Arr(refs.iter().map(instr_ref_to_json).collect())
}

fn refs_from_json(v: &Json, what: &str) -> Result<Vec<InstrRef>, ArtifactError> {
    v.as_arr()
        .ok_or_else(|| ArtifactError::Schema(format!("{what} is not an array")))?
        .iter()
        .map(instr_ref_from_json)
        .collect()
}

fn i64_to_json(v: i64) -> Json {
    Json::Int(v as i128)
}

fn deps_to_json(deps: &ocelot_runtime::memory::Deps) -> Json {
    Json::Arr(deps.iter().map(|&d| Json::u64(d)).collect())
}

fn deps_from_json(v: &Json) -> Result<ocelot_runtime::memory::Deps, ArtifactError> {
    v.as_arr()
        .ok_or_else(|| ArtifactError::Schema("deps is not an array".into()))?
        .iter()
        .map(|d| {
            d.as_u64()
                .ok_or_else(|| ArtifactError::Schema("dep is not a u64".into()))
        })
        .collect()
}

/// Serializes one committed observation. Every event is a tagged object
/// (`"event"` names the variant); fields mirror [`Obs`] one-for-one.
pub fn obs_to_json(o: &Obs) -> Json {
    match o {
        Obs::Input {
            at,
            tau,
            time_us,
            era,
            sensor,
            value,
            chain,
        } => Json::obj(vec![
            ("event", Json::str("input")),
            ("at", instr_ref_to_json(at)),
            ("tau", Json::u64(*tau)),
            ("time_us", Json::u64(*time_us)),
            ("era", Json::u64(*era)),
            ("sensor", Json::str(sensor)),
            ("value", i64_to_json(*value)),
            ("chain", refs_to_json(chain)),
        ]),
        Obs::Output {
            at,
            tau,
            era,
            channel,
            values,
            deps,
        } => Json::obj(vec![
            ("event", Json::str("output")),
            ("at", instr_ref_to_json(at)),
            ("tau", Json::u64(*tau)),
            ("era", Json::u64(*era)),
            ("channel", Json::str(channel)),
            (
                "values",
                Json::Arr(values.iter().map(|&v| i64_to_json(v)).collect()),
            ),
            ("deps", deps_to_json(deps)),
        ]),
        Obs::Use {
            at,
            tau,
            time_us,
            era,
            deps,
        } => Json::obj(vec![
            ("event", Json::str("use")),
            ("at", instr_ref_to_json(at)),
            ("tau", Json::u64(*tau)),
            ("time_us", Json::u64(*time_us)),
            ("era", Json::u64(*era)),
            ("deps", deps_to_json(deps)),
        ]),
        Obs::Reboot { off_us, ended_era } => Json::obj(vec![
            ("event", Json::str("reboot")),
            ("off_us", Json::u64(*off_us)),
            ("ended_era", Json::u64(*ended_era)),
        ]),
        Obs::Commit { region, tau } => Json::obj(vec![
            ("event", Json::str("commit")),
            ("region", Json::u64(region.0 as u64)),
            ("tau", Json::u64(*tau)),
        ]),
        Obs::Violation(v) => Json::obj(vec![
            ("event", Json::str("violation")),
            ("policy", Json::u64(v.policy.0 as u64)),
            (
                "kind",
                Json::str(match v.kind {
                    ViolationKind::Freshness => "freshness",
                    ViolationKind::Consistency => "consistency",
                }),
            ),
            ("at", instr_ref_to_json(&v.at)),
            ("tau", Json::u64(v.tau)),
            ("era", Json::u64(v.era)),
            ("stale_ops", refs_to_json(&v.stale_ops)),
        ]),
    }
}

fn req<'a>(v: &'a Json, key: &str, ev: &str) -> Result<&'a Json, ArtifactError> {
    v.get(key)
        .ok_or_else(|| ArtifactError::Schema(format!("{ev} event missing `{key}`")))
}

fn req_u64(v: &Json, key: &str, ev: &str) -> Result<u64, ArtifactError> {
    req(v, key, ev)?
        .as_u64()
        .ok_or_else(|| ArtifactError::Schema(format!("{ev} `{key}` is not a u64")))
}

fn req_i64(v: &Json, key: &str, ev: &str) -> Result<i64, ArtifactError> {
    req(v, key, ev)?
        .as_i64()
        .ok_or_else(|| ArtifactError::Schema(format!("{ev} `{key}` is not an i64")))
}

fn req_str<'a>(v: &'a Json, key: &str, ev: &str) -> Result<&'a str, ArtifactError> {
    req(v, key, ev)?
        .as_str()
        .ok_or_else(|| ArtifactError::Schema(format!("{ev} `{key}` is not a string")))
}

/// Inverse of [`obs_to_json`]; strict — an unknown event tag or a
/// missing/mistyped field is an error.
pub fn obs_from_json(v: &Json) -> Result<Obs, ArtifactError> {
    let ev = v
        .get("event")
        .and_then(Json::as_str)
        .ok_or_else(|| ArtifactError::Schema("trace event missing `event` tag".into()))?;
    match ev {
        "input" => Ok(Obs::Input {
            at: instr_ref_from_json(req(v, "at", ev)?)?,
            tau: req_u64(v, "tau", ev)?,
            time_us: req_u64(v, "time_us", ev)?,
            era: req_u64(v, "era", ev)?,
            sensor: req_str(v, "sensor", ev)?.into(),
            value: req_i64(v, "value", ev)?,
            chain: std::sync::Arc::new(refs_from_json(req(v, "chain", ev)?, "chain")?),
        }),
        "output" => Ok(Obs::Output {
            at: instr_ref_from_json(req(v, "at", ev)?)?,
            tau: req_u64(v, "tau", ev)?,
            era: req_u64(v, "era", ev)?,
            channel: req_str(v, "channel", ev)?.into(),
            values: req(v, "values", ev)?
                .as_arr()
                .ok_or_else(|| ArtifactError::Schema("output values is not an array".into()))?
                .iter()
                .map(|x| {
                    x.as_i64()
                        .ok_or_else(|| ArtifactError::Schema("output value not an i64".into()))
                })
                .collect::<Result<_, _>>()?,
            deps: deps_from_json(req(v, "deps", ev)?)?,
        }),
        "use" => Ok(Obs::Use {
            at: instr_ref_from_json(req(v, "at", ev)?)?,
            tau: req_u64(v, "tau", ev)?,
            time_us: req_u64(v, "time_us", ev)?,
            era: req_u64(v, "era", ev)?,
            deps: deps_from_json(req(v, "deps", ev)?)?,
        }),
        "reboot" => Ok(Obs::Reboot {
            off_us: req_u64(v, "off_us", ev)?,
            ended_era: req_u64(v, "ended_era", ev)?,
        }),
        "commit" => Ok(Obs::Commit {
            region: ocelot_ir::RegionId(req_u64(v, "region", ev)? as u32),
            tau: req_u64(v, "tau", ev)?,
        }),
        "violation" => Ok(Obs::Violation(ViolationEvent {
            policy: ocelot_core::PolicyId(req_u64(v, "policy", ev)? as u32),
            kind: match req_str(v, "kind", ev)? {
                "freshness" => ViolationKind::Freshness,
                "consistency" => ViolationKind::Consistency,
                other => {
                    return Err(ArtifactError::Schema(format!(
                        "unknown violation kind `{other}`"
                    )))
                }
            },
            at: instr_ref_from_json(req(v, "at", ev)?)?,
            tau: req_u64(v, "tau", ev)?,
            era: req_u64(v, "era", ev)?,
            stale_ops: refs_from_json(req(v, "stale_ops", ev)?, "stale_ops")?,
        })),
        other => Err(ArtifactError::Schema(format!(
            "unknown trace event `{other}`"
        ))),
    }
}

/// Serializes a whole committed trace.
pub fn trace_to_json(trace: &[Obs]) -> Json {
    Json::Arr(trace.iter().map(obs_to_json).collect())
}

/// Parses a whole committed trace (strict).
///
/// # Errors
///
/// [`ArtifactError::Schema`] on any malformed event.
pub fn trace_from_json(v: &Json) -> Result<Vec<Obs>, ArtifactError> {
    v.as_arr()
        .ok_or_else(|| ArtifactError::Schema("trace is not an array".into()))?
        .iter()
        .map(obs_from_json)
        .collect()
}

/// Renders the human-readable summary of a traces artifact: one line
/// per cell with per-event-kind counts. Pure over the artifact, so
/// `--replay --traces` re-emits it from disk.
///
/// # Errors
///
/// Schema errors for cells without a parseable trace.
pub fn render_traces(a: &Artifact) -> Result<String, ArtifactError> {
    let mut out = format!(
        "Observation traces for `{}` ({} cell(s))\n",
        a.driver.trim_end_matches("_traces"),
        a.cells.len()
    );
    for cell in &a.cells {
        let trace = trace_from_json(
            cell.get("trace")
                .ok_or_else(|| ArtifactError::Schema("cell has no trace member".into()))?,
        )?;
        let mut id = Vec::new();
        for key in ["bench", "model", "scenario"] {
            if let Some(s) = cell.get(key).and_then(Json::as_str) {
                id.push(s.to_string());
            }
        }
        if let Some(seed) = cell.get("seed").and_then(Json::as_u64) {
            id.push(format!("seed {seed}"));
        }
        let mut counts = [0usize; 6];
        for o in &trace {
            let slot = match o {
                Obs::Input { .. } => 0,
                Obs::Output { .. } => 1,
                Obs::Use { .. } => 2,
                Obs::Commit { .. } => 3,
                Obs::Reboot { .. } => 4,
                Obs::Violation(_) => 5,
            };
            counts[slot] += 1;
        }
        out.push_str(&format!(
            "  {:44} {} event(s): {} in, {} out, {} use, {} commit, {} reboot, {} violation\n",
            id.join(" / "),
            trace.len(),
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            counts[5],
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_ir::{FuncId, Label};

    fn at(f: u32, l: u32) -> InstrRef {
        InstrRef {
            func: FuncId(f),
            label: Label(l),
        }
    }

    fn sample_trace() -> Vec<Obs> {
        vec![
            Obs::Input {
                at: at(0, 1),
                tau: 3,
                time_us: 40,
                era: 1,
                sensor: "mic".into(),
                value: -17,
                chain: std::sync::Arc::new(vec![at(0, 1), at(2, 5)]),
            },
            Obs::Use {
                at: at(2, 9),
                tau: 4,
                time_us: 55,
                era: 1,
                deps: [3u64, 9u64].into_iter().collect(),
            },
            Obs::Output {
                at: at(2, 10),
                tau: 5,
                era: 1,
                channel: "uart".into(),
                values: vec![7, -2, i64::MAX],
                deps: [4u64].into_iter().collect(),
            },
            Obs::Commit {
                region: ocelot_ir::RegionId(2),
                tau: 6,
            },
            Obs::Reboot {
                off_us: 120,
                ended_era: 1,
            },
            Obs::Violation(ViolationEvent {
                policy: ocelot_core::PolicyId(1),
                kind: ViolationKind::Consistency,
                at: at(1, 3),
                tau: 8,
                era: 2,
                stale_ops: vec![at(0, 1)],
            }),
        ]
    }

    #[test]
    fn every_event_kind_round_trips_exactly() {
        let trace = sample_trace();
        let json = trace_to_json(&trace);
        assert_eq!(trace_from_json(&json).unwrap(), trace);
        // And through the serialized text (the on-disk path).
        let text = json.render().unwrap();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(trace_from_json(&back).unwrap(), trace);
    }

    #[test]
    fn reader_rejects_unknown_and_malformed_events() {
        assert!(obs_from_json(&Json::obj(vec![("event", Json::str("warp"))])).is_err());
        assert!(obs_from_json(&Json::obj(vec![("no_tag", Json::u64(1))])).is_err());
        // A reboot missing a field.
        assert!(obs_from_json(&Json::obj(vec![
            ("event", Json::str("reboot")),
            ("off_us", Json::u64(9)),
        ]))
        .is_err());
        // A mistyped field.
        assert!(obs_from_json(&Json::obj(vec![
            ("event", Json::str("reboot")),
            ("off_us", Json::str("9")),
            ("ended_era", Json::u64(0)),
        ]))
        .is_err());
    }

    #[test]
    fn summary_counts_events_per_cell() {
        let mut a = Artifact::new("unit_traces", vec![]);
        a.cells.push(Json::obj(vec![
            ("bench", Json::str("mlinfer")),
            ("model", Json::str("Ocelot")),
            ("scenario", Json::str("rf-lab")),
            ("seed", Json::u64(7)),
            ("trace", trace_to_json(&sample_trace())),
        ]));
        let text = render_traces(&a).unwrap();
        assert!(
            text.contains("mlinfer / Ocelot / rf-lab / seed 7"),
            "{text}"
        );
        assert!(
            text.contains("6 event(s): 1 in, 1 out, 1 use, 1 commit, 1 reboot, 1 violation"),
            "{text}"
        );
        let no_trace = Artifact {
            cells: vec![Json::obj(vec![("bench", Json::str("x"))])],
            ..Artifact::new("t", vec![])
        };
        assert!(render_traces(&no_trace).is_err());
    }
}
