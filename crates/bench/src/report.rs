//! Plain-text table rendering and summary statistics for the
//! figure/table harness binaries.

/// Geometric mean of positive values; 0 for empty input.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..cols {
                if i > 0 {
                    s.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                if i == 0 {
                    s.push_str(&cells[i]);
                    s.push_str(&" ".repeat(pad));
                } else {
                    s.push_str(&" ".repeat(pad));
                    s.push_str(&cells[i]);
                }
            }
            s
        };
        let mut out = line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio like `1.07x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage like `77%`.
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_identity_is_identity() {
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    fn gmean_is_between_min_and_max() {
        let g = gmean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["bench", "value"]);
        t.row(vec!["activity".into(), "1.07x".into()]);
        t.row(vec!["cem".into(), "2.50x".into()]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.contains("activity"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len(), "aligned columns");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.066), "1.07x");
        assert_eq!(pct(0.77), "77%");
    }
}
