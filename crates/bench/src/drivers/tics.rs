//! The TICS comparisons (§2.3, Table 3): the static expiry-window
//! replay scored against the freshness definition, and the live
//! expiry-window model run head-to-head against JIT and Ocelot.

use super::{cell_str, cell_u64, find_cell, sim_cell, Driver, DriverOpts};
use crate::artifact::{Artifact, ArtifactError};
use crate::harness::{bench_supply, build_for, calibrated_costs, run_cells, CellSpec, Workload};
use crate::json::Json;
use crate::report::Table;
use ocelot_runtime::expiry::evaluate_expiry;
use ocelot_runtime::machine::Machine;
use ocelot_runtime::model::ExecModel;

// ---------------------------------------------------------------------
// tics_expiry — static window replay
// ---------------------------------------------------------------------

/// §2.3 extension: expiry windows scored against the freshness
/// definition on recorded traces.
pub static TICS_EXPIRY: Driver = Driver {
    name: "tics_expiry",
    about: "extension: TICS-style expiry windows vs the freshness definition (§2.3)",
    collect: collect_expiry,
    render: render_expiry,
    collect_traced: None,
};

/// The window sweep (µs, label).
const WINDOWS_US: [(u64, &str); 4] = [
    (500, "0.5ms"),
    (5_000, "5ms"),
    (50_000, "50ms"),
    (500_000, "500ms"),
];

fn collect_expiry(opts: &DriverOpts) -> Artifact {
    // Scale override is in *seconds* of simulated JIT execution per app.
    let sim_s = opts.runs_or(20);
    let sim_us = sim_s * 1_000_000;
    let seed = opts.seed_or(29);
    let cells = super::per_bench_cells(opts.jobs, |b| {
        let built = build_for(b, ExecModel::Jit);
        let mut m = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            b.environment(seed),
            calibrated_costs(b),
            Box::new(bench_supply(seed)),
        );
        m.run_for(sim_us, crate::harness::MAX_STEPS);
        let trace = m.take_trace();
        let base = evaluate_expiry(m.policies(), &trace, u64::MAX / 2);
        let windows: Vec<Json> = WINDOWS_US
            .iter()
            .map(|(w, label)| {
                let r = evaluate_expiry(m.policies(), &trace, *w);
                Json::obj(vec![
                    ("window_us", Json::u64(*w)),
                    ("label", Json::str(label)),
                    ("missed", Json::u64(r.missed as u64)),
                    ("spurious", Json::u64(r.spurious as u64)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("bench", Json::str(b.name)),
            (
                "true_fresh_violations",
                Json::u64(base.true_freshness_violations as u64),
            ),
            (
                "consistency_unexpressible",
                Json::u64(base.consistency_violations_unexpressible as u64),
            ),
            ("windows", Json::Arr(windows)),
        ])
    });
    let mut a = Artifact::new(
        "tics_expiry",
        vec![
            ("sim_us".into(), Json::u64(sim_us)),
            ("seed".into(), Json::u64(seed)),
        ],
    );
    a.cells = cells;
    a
}

fn render_expiry(a: &Artifact) -> Result<String, ArtifactError> {
    let sim_us = a.config_u64("sim_us")?;
    let mut header = vec![
        "App".to_string(),
        "true fresh viol.".to_string(),
        "cons. (unexpressible)".to_string(),
    ];
    for (_, label) in WINDOWS_US {
        header.push(format!("{label} miss/spur"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for cell in &a.cells {
        let mut row = vec![
            cell_str(cell, "bench")?.to_string(),
            cell_u64(cell, "true_fresh_violations")?.to_string(),
            cell_u64(cell, "consistency_unexpressible")?.to_string(),
        ];
        let windows = cell
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or_else(|| ArtifactError::Schema("windows missing".into()))?;
        for w in windows {
            row.push(format!(
                "{}/{}",
                cell_u64(w, "missed")?,
                cell_u64(w, "spurious")?
            ));
        }
        t.row(row);
    }
    Ok(format!(
        "Extension: TICS-style expiry windows vs the freshness definition\n\
         (JIT on harvested power, {} s per app; miss = real violation under the\n\
         window, spur = handler trip on fresh data)\n{}\
         No window column is clean across apps: short windows burn handler runs on\n\
         fresh data, long windows let stale data through, and consistency is\n\
         unexpressible at any width — the paper's §2.3 argument, quantified.\n",
        sim_us / 1_000_000,
        t.render()
    ))
}

// ---------------------------------------------------------------------
// tics_dynamic — live expiry model
// ---------------------------------------------------------------------

/// §2.3 dynamic comparison: live expiry windows with restart mitigation
/// vs JIT and Ocelot on harvested power.
pub static TICS_DYNAMIC: Driver = Driver {
    name: "tics_dynamic",
    about: "dynamic TICS expiry windows vs JIT and Ocelot on harvested power (§2.3)",
    collect: collect_dynamic,
    render: render_dynamic,
    collect_traced: None,
};

/// Comparison rows: (label, model, expiry window).
const DYNAMIC_ROWS: [(&str, ExecModel, Option<u64>); 4] = [
    ("JIT", ExecModel::Jit, None),
    ("TICS 10ms", ExecModel::Jit, Some(10_000)),
    ("TICS 100ms", ExecModel::Jit, Some(100_000)),
    ("Ocelot", ExecModel::Ocelot, None),
];

fn collect_dynamic(opts: &DriverOpts) -> Artifact {
    let runs = opts.runs_or(60);
    let seed = opts.seed_or(11);
    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for bench in super::bench_names() {
        for (label, model, window) in DYNAMIC_ROWS {
            let mut spec = CellSpec::new(bench, model, seed, Workload::Harvested { runs })
                .with_backend(opts.backend);
            spec.expiry_window_us = window;
            specs.push(spec);
            labels.push(label);
        }
    }
    let stats = run_cells(&specs, opts.jobs);
    let mut a = Artifact::new(
        "tics_dynamic",
        vec![
            ("runs".into(), Json::u64(runs)),
            ("seed".into(), Json::u64(seed)),
            ("backend".into(), Json::str(opts.backend.name())),
        ],
    );
    for ((spec, label), s) in specs.iter().zip(&labels).zip(&stats) {
        let Json::Obj(mut pairs) = sim_cell(&spec.bench, spec.model, spec.seed, spec.workload, s)
        else {
            unreachable!("sim_cell builds objects")
        };
        // Row label + window distinguish the two TICS rows that share a
        // model.
        pairs.insert(2, ("row".to_string(), Json::str(label)));
        pairs.insert(
            3,
            (
                "window_us".to_string(),
                spec.expiry_window_us.map_or(Json::Null, Json::u64),
            ),
        );
        a.cells.push(Json::Obj(pairs));
    }
    a
}

fn render_dynamic(a: &Artifact) -> Result<String, ArtifactError> {
    let runs = a.config_u64("runs")?;
    let mut t = Table::new(&[
        "App",
        "model",
        "fresh viol",
        "cons viol",
        "trips",
        "restarts",
        "on-time vs JIT",
    ]);
    for bench in super::cell_benches(a) {
        let base = super::cell_stats(find_cell(a, &[("bench", &bench), ("row", "JIT")])?)?;
        for (label, _, _) in DYNAMIC_ROWS {
            let s = super::cell_stats(find_cell(a, &[("bench", &bench), ("row", label)])?)?;
            t.row(vec![
                bench.clone(),
                label.to_string(),
                s.fresh_violations.to_string(),
                s.consistency_violations.to_string(),
                s.expiry_trips.to_string(),
                s.expiry_restarts.to_string(),
                format!("{:.2}x", s.on_time_us as f64 / base.on_time_us as f64),
            ]);
        }
    }
    Ok(format!(
        "Dynamic TICS-style expiry vs Ocelot ({runs} harvested runs per cell, §2.3)\n{}\
         Windows trade freshness misses against handler thrash, pay their\n\
         mitigation in re-executed work, and leave every temporal-consistency\n\
         violation in place; Ocelot's regions eliminate both classes at a\n\
         single-digit runtime premium.\n",
        t.render()
    ))
}
