//! The static tables — no simulation, but the same artifact discipline:
//! Table 1 (benchmark characteristics), Table 3 (strategy/constructs
//! comparison), and Table 4 (LoC effort model). Their `collect` runs in
//! microseconds, yet persisting the rows keeps `--replay` uniform and
//! pins the published numbers under the golden/determinism tests.

use super::{cell_str, cell_u64, Driver, DriverOpts};
use crate::artifact::{Artifact, ArtifactError};
use crate::effort::table4;
use crate::json::Json;
use crate::report::Table;

/// Table 1 — benchmark characteristics.
pub static TABLE1: Driver = Driver {
    name: "table1",
    about: "Table 1: benchmark characteristics (origin, LoC, sensors, constraints)",
    collect: collect_table1,
    render: render_table1,
    collect_traced: None,
};

fn collect_table1(_opts: &DriverOpts) -> Artifact {
    let mut a = Artifact::new("table1", vec![]);
    for b in ocelot_apps::all() {
        a.cells.push(Json::obj(vec![
            ("bench", Json::str(b.name)),
            ("origin", Json::str(b.origin)),
            ("loc", Json::u64(b.loc() as u64)),
            (
                "sensors",
                Json::Arr(b.sensors.iter().map(|s| Json::str(s)).collect()),
            ),
            ("constraints", Json::str(b.constraints)),
        ]));
    }
    a
}

fn render_table1(a: &Artifact) -> Result<String, ArtifactError> {
    let mut t = Table::new(&["Origin", "App", "LoC", "Sensors", "Constraints"]);
    for cell in &a.cells {
        let sensors: Vec<&str> = cell
            .get("sensors")
            .and_then(Json::as_arr)
            .ok_or_else(|| ArtifactError::Schema("sensors missing".into()))?
            .iter()
            .filter_map(Json::as_str)
            .collect();
        t.row(vec![
            cell_str(cell, "origin")?.to_string(),
            cell_str(cell, "bench")?.to_string(),
            cell_u64(cell, "loc")?.to_string(),
            sensors.join(", "),
            cell_str(cell, "constraints")?.to_string(),
        ]);
    }
    Ok(format!(
        "Table 1: Benchmark Characteristics (`*` = simulated sensor)\n{}",
        t.render()
    ))
}

/// Table 3 — strategy/constructs comparison.
pub static TABLE3: Driver = Driver {
    name: "table3",
    about: "Table 3: what each system asks of the programmer (LoC formulas)",
    collect: collect_table3,
    render: render_table3,
    collect_traced: None,
};

/// The comparison rows: (system, constructs, strategy, upholds).
const TABLE3_ROWS: [(&str, &str, &str, &str); 5] = [
    (
        "Ocelot",
        "Time-constraint types",
        "annotate inputs + constrained data: 1*(inputs) + 1*(constrained)",
        "Correct by construction",
    ),
    ("JIT", "None", "do nothing: 0", "Incorrect"),
    (
        "Atomics",
        "Atomic regions",
        "annotate inputs + place regions: 1*(inputs) + 2*(regions)",
        "Programmer-dependent",
    ),
    (
        "TICS",
        "Expiry, alignment, timely branches",
        "3*(fresh) + 5-line handler each; 2*(consistent) + check+handler per set",
        "Real-time freshness only; no temporal consistency",
    ),
    (
        "Samoyed",
        "Atomic functions",
        "(3 + params) per atomic fn; +3 scaling +5 fallback per loop",
        "Programmer-dependent",
    ),
];

fn collect_table3(_opts: &DriverOpts) -> Artifact {
    let mut a = Artifact::new("table3", vec![]);
    for (system, constructs, strategy, upholds) in TABLE3_ROWS {
        a.cells.push(Json::obj(vec![
            ("system", Json::str(system)),
            ("constructs", Json::str(constructs)),
            ("strategy", Json::str(strategy)),
            ("upholds", Json::str(upholds)),
        ]));
    }
    a
}

fn render_table3(a: &Artifact) -> Result<String, ArtifactError> {
    let mut t = Table::new(&[
        "System",
        "Constructs",
        "Strategy (LoC model)",
        "Upholds Fresh+Con?",
    ]);
    for cell in &a.cells {
        t.row(vec![
            cell_str(cell, "system")?.to_string(),
            cell_str(cell, "constructs")?.to_string(),
            cell_str(cell, "strategy")?.to_string(),
            cell_str(cell, "upholds")?.to_string(),
        ]);
    }
    Ok(format!(
        "Table 3: Strategy comparison (LoC formulas instantiated in Table 4)\n{}",
        t.render()
    ))
}

/// Table 4 — LoC changes per benchmark per system.
pub static TABLE4: Driver = Driver {
    name: "table4",
    about: "Table 4: LoC changes to enable correct execution per system",
    collect: collect_table4,
    render: render_table4,
    collect_traced: None,
};

fn collect_table4(_opts: &DriverOpts) -> Artifact {
    let mut a = Artifact::new("table4", vec![]);
    for r in table4() {
        a.cells.push(Json::obj(vec![
            ("bench", Json::str(r.bench)),
            ("ocelot", Json::u64(r.ocelot as u64)),
            ("tics", Json::u64(r.tics as u64)),
            ("samoyed", Json::u64(r.samoyed as u64)),
        ]));
    }
    a
}

fn render_table4(a: &Artifact) -> Result<String, ArtifactError> {
    let mut t = Table::new(&["Sys", "Act", "CEM", "G-house", "Photo", "S-Photo", "Tire"]);
    for (label, key) in [
        ("Ocelot", "ocelot"),
        ("TICS", "tics"),
        ("Samoyed", "samoyed"),
    ] {
        let mut row = vec![label.to_string()];
        for bench in [
            "activity",
            "cem",
            "greenhouse",
            "photo",
            "send_photo",
            "tire",
        ] {
            let cell = super::find_cell(a, &[("bench", bench)])?;
            row.push(cell_u64(cell, key)?.to_string());
        }
        t.row(row);
    }
    Ok(format!(
        "Table 4: LoC changes to enable correct execution\n{}\
         Reasoning burden: Ocelot none; TICS real-time reasoning; Samoyed data-flow reasoning.\n",
        t.render()
    ))
}
