//! The scenario sweep: every extension app crossed with every scenario
//! in the `ocelot-scenario` registry, under JIT and Ocelot, at several
//! seeds — the "how does the guarantee hold up across regimes" grid
//! the paper's fixed testbed cannot show.
//!
//! Cells use [`Workload::Harvested`] (no completion assertions: a
//! harsh regime may legitimately starve runs) with the scenario's own
//! supply and sensed world. The rendered table aggregates seeds per
//! (app, scenario) row and contrasts JIT violations against Ocelot's.

use super::{cell_stats, collect_sim, collect_sim_traced, Driver, DriverOpts};
use crate::artifact::{Artifact, ArtifactError};
use crate::harness::{CellSpec, Workload};
use crate::json::Json;
use crate::report::Table;
use ocelot_runtime::model::ExecModel;
use ocelot_runtime::stats::Stats;

/// The sweep contrasts the unprotected and protected models.
const MODELS: [ExecModel; 2] = [ExecModel::Jit, ExecModel::Ocelot];

/// Seeds per (app, scenario, model) cell.
const SEEDS_PER_CELL: u64 = 2;

/// Extension: the app × scenario × seed grid.
pub static SCENARIO_SWEEP: Driver = Driver {
    name: "scenario_sweep",
    about: "extension: app × scenario × seed sweep across the scenario library",
    collect: collect_sweep,
    render: render_sweep,
    collect_traced: Some(collect_sweep_traced),
};

fn plan_sweep(opts: &DriverOpts) -> (Vec<(String, Json)>, Vec<CellSpec>) {
    let runs = opts.runs_or(3);
    let seed0 = opts.seed_or(23);
    let apps: Vec<&'static str> = ocelot_apps::extended().iter().map(|b| b.name).collect();
    let scenarios = ocelot_scenario::all();
    let mut specs = Vec::new();
    for app in &apps {
        for sc in &scenarios {
            for s in 0..SEEDS_PER_CELL {
                for model in MODELS {
                    specs.push(
                        CellSpec::new(app, model, seed0 + s, Workload::Harvested { runs })
                            .with_scenario(sc.name),
                    );
                }
            }
        }
    }
    let config = vec![
        ("runs".into(), Json::u64(runs)),
        ("seed".into(), Json::u64(seed0)),
        ("seeds_per_cell".into(), Json::u64(SEEDS_PER_CELL)),
        (
            "apps".into(),
            Json::Arr(apps.iter().map(|a| Json::str(a)).collect()),
        ),
        (
            "scenarios".into(),
            Json::Arr(scenarios.iter().map(|s| Json::str(s.name)).collect()),
        ),
    ];
    (config, specs)
}

fn collect_sweep(opts: &DriverOpts) -> Artifact {
    let (config, specs) = plan_sweep(opts);
    collect_sim("scenario_sweep", config, &specs, opts)
}

fn collect_sweep_traced(opts: &DriverOpts) -> (Artifact, Artifact) {
    let (config, specs) = plan_sweep(opts);
    collect_sim_traced("scenario_sweep", config, &specs, opts)
}

/// Sums the stats of every cell matching (bench, scenario, model),
/// across seeds. Counters are zipped in their fixed declaration order.
fn aggregate(a: &Artifact, bench: &str, scenario: &str, model: ExecModel) -> (Stats, u64) {
    let mut total = Stats::default();
    let mut cells = 0;
    for c in &a.cells {
        let matches = c.get("bench").and_then(Json::as_str) == Some(bench)
            && c.get("scenario").and_then(Json::as_str) == Some(scenario)
            && c.get("model").and_then(Json::as_str) == Some(model.name());
        if !matches {
            continue;
        }
        if let Ok(s) = cell_stats(c) {
            for ((name, cur), (_, add)) in total.clone().counters().into_iter().zip(s.counters()) {
                total.set_counter(name, cur + add);
            }
            cells += 1;
        }
    }
    (total, cells)
}

/// Distinct (bench, scenario) pairs in first-seen cell order.
fn rows(a: &Artifact) -> Vec<(String, String)> {
    let mut seen = Vec::new();
    for c in &a.cells {
        let (Some(b), Some(s)) = (
            c.get("bench").and_then(Json::as_str),
            c.get("scenario").and_then(Json::as_str),
        ) else {
            continue;
        };
        let pair = (b.to_string(), s.to_string());
        if !seen.contains(&pair) {
            seen.push(pair);
        }
    }
    seen
}

fn render_sweep(a: &Artifact) -> Result<String, ArtifactError> {
    let runs = a.config_u64("runs")?;
    let seeds = a.config_u64("seeds_per_cell")?;
    let mut t = Table::new(&[
        "App / Scenario",
        "JIT viol",
        "Ocelot viol",
        "Ocelot reboots",
        "Ocelot re-exec",
        "charge ms",
        "runs",
    ]);
    let mut jit_total = 0u64;
    let mut ocelot_total = 0u64;
    for (bench, scenario) in rows(a) {
        // A row's cells must exist for both models (a malformed
        // artifact would silently render zeros otherwise).
        let (jit, jit_cells) = aggregate(a, &bench, &scenario, ExecModel::Jit);
        let (oce, oce_cells) = aggregate(a, &bench, &scenario, ExecModel::Ocelot);
        for (model, n) in [(ExecModel::Jit, jit_cells), (ExecModel::Ocelot, oce_cells)] {
            if n == 0 {
                return Err(ArtifactError::Schema(format!(
                    "no {} cells for {bench}/{scenario}",
                    model.name()
                )));
            }
        }
        jit_total += jit.violations;
        ocelot_total += oce.violations;
        t.row(vec![
            format!("{bench} / {scenario}"),
            jit.violations.to_string(),
            oce.violations.to_string(),
            oce.reboots.to_string(),
            oce.region_reexecs.to_string(),
            format!("{:.1}", oce.off_time_us as f64 / 1000.0),
            oce.runs_completed.to_string(),
        ]);
    }
    Ok(format!(
        "Scenario sweep: extension apps × scenario library ({runs} runs × {seeds} seeds per cell)\n{}\
         Reading guide: Ocelot's inferred regions re-execute across failures, so its\n\
         violation column stays 0 in every regime (total: JIT {jit_total}, Ocelot {ocelot_total});\n\
         the charging-time column shows how hostile each scenario's supply is\n\
         (brownout/cold-start starve the bank; highway-blowout barely stalls it).\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::cell_str;
    use ocelot_runtime::ExecBackend;

    fn tiny_opts() -> DriverOpts {
        DriverOpts {
            jobs: 2,
            runs: Some(1),
            seed: None,
            backend: ExecBackend::Interp,
            opt: ocelot_runtime::OptLevel::default(),
        }
    }

    #[test]
    fn sweep_covers_the_full_grid() {
        let (config, specs) = plan_sweep(&tiny_opts());
        let apps = ocelot_apps::extended().len() as u64;
        let scenarios = ocelot_scenario::all().len() as u64;
        assert_eq!(
            specs.len() as u64,
            apps * scenarios * SEEDS_PER_CELL * MODELS.len() as u64
        );
        assert!(config.iter().any(|(k, _)| k == "scenarios"));
        for spec in &specs {
            assert!(spec.scenario.is_some());
        }
    }

    #[test]
    fn ocelot_stays_clean_across_every_scenario() {
        // The acceptance headline: the sweep runs all three extension
        // apps under the whole registry, and Ocelot's regions hold the
        // guarantee in every regime.
        let a = collect_sweep(&tiny_opts());
        let mut ocelot_cells = 0u64;
        for c in &a.cells {
            if c.get("model").and_then(Json::as_str) == Some("Ocelot") {
                let s = cell_stats(c).unwrap();
                assert_eq!(
                    s.violations,
                    0,
                    "Ocelot must not violate in {}/{}",
                    cell_str(c, "bench").unwrap(),
                    cell_str(c, "scenario").unwrap()
                );
                ocelot_cells += 1;
            }
        }
        assert_eq!(
            ocelot_cells,
            (ocelot_apps::extended().len() * ocelot_scenario::all().len()) as u64 * SEEDS_PER_CELL,
            "one Ocelot cell per (app, scenario, seed)"
        );
        let rendered = (SCENARIO_SWEEP.render)(&a).unwrap();
        assert!(rendered.contains("fusion / rf-lab"), "{rendered}");
        assert!(rendered.contains("mlinfer / cold-start"), "{rendered}");
    }
}
