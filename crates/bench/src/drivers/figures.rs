//! The runtime figures: Figure 7 (continuous-power runtimes), Figure 8
//! (intermittent runtimes with charging time), and the extension
//! cycle-breakdown behind both.

use super::{
    bench_names, cell_benches, collect_sim, collect_sim_traced, find_stats, Driver, DriverOpts,
};
use crate::artifact::{Artifact, ArtifactError};
use crate::harness::{CellSpec, Workload};
use crate::json::Json;
use crate::report::{gmean, ratio, Table};
use ocelot_runtime::model::ExecModel;

/// Figure 7 — continuous-power runtimes normalized to JIT.
pub static FIG7: Driver = Driver {
    name: "fig7",
    about: "Figure 7: continuous-power runtimes (JIT / Atomics-only / Ocelot)",
    collect: collect_fig7,
    render: render_fig7,
    collect_traced: Some(collect_fig7_traced),
};

fn plan_fig7(opts: &DriverOpts) -> (Vec<(String, Json)>, Vec<CellSpec>) {
    let runs = opts.runs_or(25);
    let seed = opts.seed_or(42);
    let mut specs = Vec::new();
    for bench in bench_names() {
        for model in ExecModel::all() {
            specs.push(CellSpec::new(
                bench,
                model,
                seed,
                Workload::Continuous { runs },
            ));
        }
    }
    (
        vec![
            ("runs".into(), Json::u64(runs)),
            ("seed".into(), Json::u64(seed)),
        ],
        specs,
    )
}

fn collect_fig7(opts: &DriverOpts) -> Artifact {
    let (config, specs) = plan_fig7(opts);
    collect_sim("fig7", config, &specs, opts)
}

fn collect_fig7_traced(opts: &DriverOpts) -> (Artifact, Artifact) {
    let (config, specs) = plan_fig7(opts);
    collect_sim_traced("fig7", config, &specs, opts)
}

fn render_fig7(a: &Artifact) -> Result<String, ArtifactError> {
    let runs = a.config_u64("runs")?;
    let mut t = Table::new(&["App", "JIT", "Atomics-only", "Ocelot"]);
    let mut atomics_ratios = Vec::new();
    let mut ocelot_ratios = Vec::new();
    for bench in cell_benches(a) {
        let cycles = |model: ExecModel| -> Result<f64, ArtifactError> {
            Ok(find_stats(a, &[("bench", &bench), ("model", model.name())])?.on_cycles as f64)
        };
        let base = cycles(ExecModel::Jit)?;
        let ra = cycles(ExecModel::AtomicsOnly)? / base;
        let ro = cycles(ExecModel::Ocelot)? / base;
        atomics_ratios.push(ra);
        ocelot_ratios.push(ro);
        t.row(vec![bench, ratio(1.0), ratio(ra), ratio(ro)]);
    }
    t.row(vec![
        "gmean".to_string(),
        ratio(1.0),
        ratio(gmean(&atomics_ratios)),
        ratio(gmean(&ocelot_ratios)),
    ]);
    Ok(format!(
        "Figure 7: Continuous runtimes normalized to JIT ({runs} runs each)\n{}\
         Paper shape: Ocelot gmean ~1.07x; Atomics-only ~= Ocelot except cem (~2.5x);\n\
         tire slightly faster under Atomics-only than Ocelot.\n",
        t.render()
    ))
}

/// Figure 8 — intermittent runtimes normalized to continuous JIT.
pub static FIG8: Driver = Driver {
    name: "fig8",
    about: "Figure 8: intermittent runtimes with charging time, vs continuous JIT",
    collect: collect_fig8,
    render: render_fig8,
    collect_traced: Some(collect_fig8_traced),
};

fn plan_fig8(opts: &DriverOpts) -> (Vec<(String, Json)>, Vec<CellSpec>) {
    let runs = opts.runs_or(25);
    let seed = opts.seed_or(42);
    let mut specs = Vec::new();
    for bench in bench_names() {
        // Baseline: continuous JIT on-time for the same number of runs.
        specs.push(CellSpec::new(
            bench,
            ExecModel::Jit,
            seed,
            Workload::Continuous { runs },
        ));
        for model in ExecModel::all() {
            specs.push(CellSpec::new(
                bench,
                model,
                seed,
                Workload::Intermittent { runs },
            ));
        }
    }
    (
        vec![
            ("runs".into(), Json::u64(runs)),
            ("seed".into(), Json::u64(seed)),
        ],
        specs,
    )
}

fn collect_fig8(opts: &DriverOpts) -> Artifact {
    let (config, specs) = plan_fig8(opts);
    collect_sim("fig8", config, &specs, opts)
}

fn collect_fig8_traced(opts: &DriverOpts) -> (Artifact, Artifact) {
    let (config, specs) = plan_fig8(opts);
    collect_sim_traced("fig8", config, &specs, opts)
}

fn render_fig8(a: &Artifact) -> Result<String, ArtifactError> {
    let runs = a.config_u64("runs")?;
    let mut t = Table::new(&[
        "App",
        "JIT run",
        "JIT total",
        "Atomics run",
        "Atomics total",
        "Ocelot run",
        "Ocelot total",
    ]);
    let mut run_ratios: [Vec<f64>; 3] = Default::default();
    let mut tot_ratios: [Vec<f64>; 3] = Default::default();
    for bench in cell_benches(a) {
        let base = find_stats(
            a,
            &[
                ("bench", &bench),
                ("model", ExecModel::Jit.name()),
                ("workload", "continuous"),
            ],
        )?
        .on_time_us as f64;
        let mut cells = vec![bench.clone()];
        for (i, model) in ExecModel::all().into_iter().enumerate() {
            let s = find_stats(
                a,
                &[
                    ("bench", &bench),
                    ("model", model.name()),
                    ("workload", "intermittent"),
                ],
            )?;
            let run_ratio = s.on_time_us as f64 / base;
            let tot_ratio = s.total_time_us() as f64 / base;
            run_ratios[i].push(run_ratio);
            tot_ratios[i].push(tot_ratio);
            cells.push(ratio(run_ratio));
            cells.push(ratio(tot_ratio));
        }
        t.row(cells);
    }
    let mut g = vec!["gmean".to_string()];
    for i in 0..3 {
        g.push(ratio(gmean(&run_ratios[i])));
        g.push(ratio(gmean(&tot_ratios[i])));
    }
    t.row(g);
    Ok(format!(
        "Figure 8: Intermittent runtimes normalized to continuous JIT on-time\n\
         ({runs} runs each; 'run' = on-time, 'total' = on + off/charging)\n{}\
         Paper shape: same proportions as Figure 7 between models; charging time\n\
         dominates total runtime.\n",
        t.render()
    ))
}

/// Extension: per-category active-cycle breakdown on harvested power.
pub static ENERGY_BREAKDOWN: Driver = Driver {
    name: "energy_breakdown",
    about: "extension: per-category active-cycle breakdown behind Figures 7/8",
    collect: collect_energy,
    render: render_energy,
    collect_traced: Some(collect_energy_traced),
};

/// Row order of the original binary: JIT, Ocelot, Atomics-only.
const ENERGY_MODELS: [ExecModel; 3] = [ExecModel::Jit, ExecModel::Ocelot, ExecModel::AtomicsOnly];

fn plan_energy(opts: &DriverOpts) -> (Vec<(String, Json)>, Vec<CellSpec>) {
    let runs = opts.runs_or(25);
    let seed = opts.seed_or(31);
    let mut specs = Vec::new();
    for bench in bench_names() {
        for model in ENERGY_MODELS {
            specs.push(CellSpec::new(
                bench,
                model,
                seed,
                Workload::Harvested { runs },
            ));
        }
    }
    (
        vec![
            ("runs".into(), Json::u64(runs)),
            ("seed".into(), Json::u64(seed)),
        ],
        specs,
    )
}

fn collect_energy(opts: &DriverOpts) -> Artifact {
    let (config, specs) = plan_energy(opts);
    collect_sim("energy_breakdown", config, &specs, opts)
}

fn collect_energy_traced(opts: &DriverOpts) -> (Artifact, Artifact) {
    let (config, specs) = plan_energy(opts);
    collect_sim_traced("energy_breakdown", config, &specs, opts)
}

fn render_energy(a: &Artifact) -> Result<String, ArtifactError> {
    let runs = a.config_u64("runs")?;
    let mut t = Table::new(&[
        "App / Model",
        "compute%",
        "input%",
        "output%",
        "checkpoint%",
        "undo-log%",
        "restore%",
    ]);
    for bench in cell_benches(a) {
        for model in ENERGY_MODELS {
            let s = find_stats(a, &[("bench", &bench), ("model", model.name())])?;
            let bd = &s.breakdown;
            let total = bd.total().max(1) as f64;
            let pct = |v: u64| format!("{:.1}", v as f64 * 100.0 / total);
            t.row(vec![
                format!("{} / {}", bench, model.name()),
                pct(bd.compute),
                pct(bd.input),
                pct(bd.output),
                pct(bd.checkpoint),
                pct(bd.undo_log),
                pct(bd.restore),
            ]);
        }
    }
    Ok(format!(
        "Extension: active-cycle breakdown on harvested power ({runs} runs each)\n{}\
         Reading guide: sampling dominates sensing-bound apps; Atomics-only\n\
         inflates the checkpoint column (every region entry snapshots volatile\n\
         state), most dramatically on cem.\n",
        t.render()
    ))
}
