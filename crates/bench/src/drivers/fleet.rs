//! Extension — the fleet-scale device sweep: one Table-1 app deployed
//! across the whole scenario registry as a fleet of devices on one
//! shared compiled program, aggregated per scenario.
//!
//! The simulation engine lives in [`crate::fleet`]; this driver wraps
//! it in the standard collect/render registry shape so `ocelotc bench
//! fleet` and `--replay` work like every other artifact. The driver
//! default is a smoke-scale fleet; the acceptance-scale million-device
//! sweep is `ocelotc fleet` (same engine, same artifact schema).

use super::{Driver, DriverOpts};
use crate::artifact::{Artifact, ArtifactError};
use crate::fleet::{run_fleet, FleetOpts, FleetSpec};
use ocelot_runtime::model::ExecModel;

/// Devices per scenario-distribution pass when `--runs` is not given.
const DEFAULT_DEVICES: u64 = 1_800;

/// The fleet sweep driver.
pub static FLEET: Driver = Driver {
    name: "fleet",
    about: "extension: fleet-scale device sweep on one shared compiled program",
    collect,
    render,
    collect_traced: None,
};

/// The fleet this driver runs: the `tire` Table-1 app spread across the
/// whole scenario registry. `--runs` scales the device count, `--seed`
/// moves the seed range.
fn plan(opts: &DriverOpts) -> FleetSpec {
    FleetSpec {
        bench: "tire".into(),
        model: ExecModel::Ocelot,
        scenarios: ocelot_scenario::all()
            .iter()
            .map(|s| s.name.to_string())
            .collect(),
        devices: opts.runs_or(DEFAULT_DEVICES),
        seed0: opts.seed_or(1),
        runs: crate::fleet::DEFAULT_FLEET_RUNS,
        backend: opts.backend,
        opt: opts.opt,
    }
}

fn collect(opts: &DriverOpts) -> Artifact {
    let spec = plan(opts);
    let aggs = run_fleet(
        &spec,
        FleetOpts {
            jobs: opts.jobs,
            share_core: true,
        },
    );
    crate::fleet::fleet_artifact(&spec, &aggs)
}

fn render(a: &Artifact) -> Result<String, ArtifactError> {
    crate::fleet::render_aggregates(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::stats_from_json;
    use crate::fleet::FleetAggregate;
    use crate::json::Json;
    use ocelot_runtime::ExecBackend;

    fn small_opts() -> DriverOpts {
        DriverOpts {
            jobs: 2,
            runs: Some(18),
            seed: Some(5),
            backend: ExecBackend::Compiled,
            opt: ocelot_runtime::OptLevel::default(),
        }
    }

    #[test]
    fn collect_covers_every_scenario_and_replays() {
        let a = collect(&small_opts());
        assert_eq!(a.driver, "fleet");
        let n_scenarios = ocelot_scenario::all().len();
        assert_eq!(a.cells.len(), n_scenarios);
        // 18 devices round-robin across 9 scenarios: 2 each.
        let mut total_devices = 0;
        for cell in &a.cells {
            let agg = FleetAggregate::from_cell(cell).unwrap();
            assert_eq!(agg.devices, 2);
            assert_eq!(agg.reboots_hist.total(), 2);
            total_devices += agg.devices;
        }
        assert_eq!(total_devices, 18);
        // Render works from a round-tripped artifact (the --replay path)
        // and mentions every scenario.
        let reloaded = Artifact::from_text(&a.render().unwrap()).unwrap();
        let text = render(&reloaded).unwrap();
        for s in ocelot_scenario::all() {
            assert!(text.contains(s.name), "{} missing from render", s.name);
        }
    }

    #[test]
    fn config_records_the_fleet_shape() {
        let a = collect(&small_opts());
        assert_eq!(a.config_get("bench").and_then(Json::as_str), Some("tire"));
        assert_eq!(a.config_u64("devices").unwrap(), 18);
        assert_eq!(a.config_u64("seed").unwrap(), 5);
        assert_eq!(
            a.config_u64("runs_per_device").unwrap(),
            crate::fleet::DEFAULT_FLEET_RUNS
        );
        assert_eq!(
            a.config_get("backend").and_then(Json::as_str),
            Some("compiled")
        );
        let listed = a.config_get("scenarios").and_then(Json::as_arr).unwrap();
        assert_eq!(listed.len(), ocelot_scenario::all().len());
    }

    #[test]
    fn cells_hold_strict_stats() {
        let a = collect(&DriverOpts {
            jobs: 1,
            runs: Some(9),
            seed: Some(1),
            backend: ExecBackend::Interp,
            opt: ocelot_runtime::OptLevel::default(),
        });
        for cell in &a.cells {
            // Each scenario got exactly one device, whose stats must
            // round-trip through the strict reader.
            let s = stats_from_json(cell.get("stats").unwrap()).unwrap();
            assert!(s.on_cycles > 0, "device simulated nothing");
        }
    }
}
