//! The violation tables: Table 2(a) — pathological failure points —
//! and Table 2(b) — harvested intermittent power for a fixed simulated
//! wall-clock budget.

use super::{bench_names, collect_sim, collect_sim_traced, find_stats, Driver, DriverOpts};
use crate::artifact::{Artifact, ArtifactError};
use crate::harness::{CellSpec, Workload};
use crate::json::Json;
use crate::report::{pct, Table};
use ocelot_runtime::model::ExecModel;

/// Row order of both tables: Ocelot first, then JIT.
const MODELS: [ExecModel; 2] = [ExecModel::Ocelot, ExecModel::Jit];

/// Column order of both tables.
const COLUMNS: [(&str, &str); 6] = [
    ("activity", "Activity"),
    ("cem", "CEM"),
    ("greenhouse", "Greenhouse"),
    ("photo", "Photo"),
    ("send_photo", "Send Photo"),
    ("tire", "Tire"),
];

fn header() -> Vec<&'static str> {
    let mut h = vec!["Exec. Model"];
    h.extend(COLUMNS.iter().map(|(_, label)| *label));
    h
}

/// Table 2(a) — violations under pathological power-failure points.
pub static TABLE2A: Driver = Driver {
    name: "table2a",
    about: "Table 2(a): violating % with pathological power-failure points",
    collect: collect_table2a,
    render: render_table2a,
    collect_traced: Some(collect_table2a_traced),
};

fn plan_table2a(opts: &DriverOpts) -> (Vec<(String, Json)>, Vec<CellSpec>) {
    let runs = opts.runs_or(20);
    let seed = opts.seed_or(11);
    let mut specs = Vec::new();
    for model in MODELS {
        for bench in bench_names() {
            specs.push(CellSpec::new(
                bench,
                model,
                seed,
                Workload::Pathological { runs },
            ));
        }
    }
    (
        vec![
            ("runs".into(), Json::u64(runs)),
            ("seed".into(), Json::u64(seed)),
        ],
        specs,
    )
}

fn collect_table2a(opts: &DriverOpts) -> Artifact {
    let (config, specs) = plan_table2a(opts);
    collect_sim("table2a", config, &specs, opts)
}

fn collect_table2a_traced(opts: &DriverOpts) -> (Artifact, Artifact) {
    let (config, specs) = plan_table2a(opts);
    collect_sim_traced("table2a", config, &specs, opts)
}

fn render_table2a(a: &Artifact) -> Result<String, ArtifactError> {
    let runs = a.config_u64("runs")?;
    let mut t = Table::new(&header());
    for model in MODELS {
        let mut cells = vec![model.name().to_string()];
        for (bench, _) in COLUMNS {
            let s = find_stats(a, &[("bench", bench), ("model", model.name())])?;
            cells.push(pct(s.violating_fraction()));
        }
        t.row(cells);
    }
    Ok(format!(
        "Table 2(a): Violating % with pathological power-failure points ({runs} runs each)\n{}\
         Paper: Ocelot 0% everywhere; JIT 100% everywhere.\n",
        t.render()
    ))
}

/// Table 2(b) — violations on simulated harvested power.
pub static TABLE2B: Driver = Driver {
    name: "table2b",
    about: "Table 2(b): violating % on intermittent power (fixed simulated budget)",
    collect: collect_table2b,
    render: render_table2b,
    collect_traced: Some(collect_table2b_traced),
};

fn plan_table2b(opts: &DriverOpts) -> (Vec<(String, Json)>, Vec<CellSpec>) {
    // Scale override is in *seconds* here (the paper used 100 s/cell).
    let sim_s = opts.runs_or(100);
    let sim_us = sim_s * 1_000_000;
    let seed = opts.seed_or(17);
    let mut specs = Vec::new();
    for model in MODELS {
        for bench in bench_names() {
            specs.push(CellSpec::new(
                bench,
                model,
                seed,
                Workload::Duration { sim_us },
            ));
        }
    }
    (
        vec![
            ("sim_us".into(), Json::u64(sim_us)),
            ("seed".into(), Json::u64(seed)),
        ],
        specs,
    )
}

fn collect_table2b(opts: &DriverOpts) -> Artifact {
    let (config, specs) = plan_table2b(opts);
    collect_sim("table2b", config, &specs, opts)
}

fn collect_table2b_traced(opts: &DriverOpts) -> (Artifact, Artifact) {
    let (config, specs) = plan_table2b(opts);
    collect_sim_traced("table2b", config, &specs, opts)
}

fn render_table2b(a: &Artifact) -> Result<String, ArtifactError> {
    let sim_us = a.config_u64("sim_us")?;
    let mut t = Table::new(&header());
    let mut completions = Vec::new();
    for model in MODELS {
        let mut cells = vec![model.name().to_string()];
        for (bench, _) in COLUMNS {
            let s = find_stats(a, &[("bench", bench), ("model", model.name())])?;
            cells.push(pct(s.violating_fraction()));
            if model == ExecModel::Jit {
                completions.push((bench, s.runs_completed));
            }
        }
        t.row(cells);
    }
    let mut out = format!(
        "Table 2(b): Violating % on intermittent power ({}s simulated per cell)\n{}",
        sim_us / 1_000_000,
        t.render()
    );
    out.push_str("Completed runs (JIT): ");
    for (name, runs) in completions {
        out.push_str(&format!("{name}={runs} "));
    }
    out.push('\n');
    out.push_str(
        "Paper: Ocelot 0% everywhere; JIT Activity 50, CEM 0, Greenhouse 24, Photo 77,\n\
         SendPhoto 50, Tire 3 (percent).\n",
    );
    Ok(out)
}
