//! The driver registry: every paper table/figure as a `collect` +
//! `render` pair over persisted artifacts.
//!
//! A **driver** is one evaluation artifact (Table 2(a), Figure 7, …)
//! split into two pure-ish halves:
//!
//! * `collect(&DriverOpts) -> Artifact` — enumerate the sweep's cells,
//!   run them through the work-stealing pool ([`crate::harness`] /
//!   [`crate::pool`]), and pack the results into a versioned
//!   [`Artifact`]. This is the only half that simulates.
//! * `render(&Artifact) -> String` — produce the human-readable
//!   table/figure **purely from the artifact**, so `--replay` can
//!   re-emit any artifact from disk without re-running a single cell.
//!
//! The registry ([`all`] / [`by_name`]) backs both the per-driver
//! binaries in `src/bin/` and the `ocelotc bench` subcommand; the
//! shared flag surface lives in [`crate::cli`].

mod ablation;
mod figures;
mod fleet;
mod runtime_tables;
mod scenarios;
mod serve;
mod tables;
mod tics;

use crate::artifact::{Artifact, ArtifactError};
use crate::harness::Workload;
use crate::json::Json;
use ocelot_runtime::model::ExecModel;
use ocelot_runtime::stats::Stats;
use ocelot_runtime::{ExecBackend, OptLevel};

/// Options shared by every driver's `collect`.
#[derive(Debug, Clone)]
pub struct DriverOpts {
    /// Worker threads for the sweep (1 = serial).
    pub jobs: usize,
    /// Scale override: replaces the driver's default run count (or, for
    /// duration-based drivers, its simulated seconds). `None` keeps the
    /// paper-scale default. Golden tests use small values here.
    pub runs: Option<u64>,
    /// Seed override; `None` keeps each driver's fixed default.
    pub seed: Option<u64>,
    /// Execution backend for the simulated cells (`--backend`).
    /// Backends are observationally identical, so artifacts differ only
    /// in their recorded provenance; drivers whose rows are bespoke
    /// per-bench jobs rather than [`crate::harness::CellSpec`] sweeps
    /// ignore this (documented in `docs/bench.md`).
    pub backend: ExecBackend,
    /// Optimization level for the compiled backend (`--opt`; the
    /// interpreter ignores it). Levels are observationally identical by
    /// construction, so — unlike the backend — the level is *not*
    /// recorded in artifacts: the same sweep at `--opt 0` and `--opt 2`
    /// must produce byte-identical files.
    pub opt: OptLevel,
}

impl Default for DriverOpts {
    fn default() -> Self {
        DriverOpts {
            jobs: 1,
            runs: None,
            seed: None,
            backend: ExecBackend::Interp,
            opt: OptLevel::from_env(),
        }
    }
}

impl DriverOpts {
    /// The effective run count given the driver's default.
    pub(crate) fn runs_or(&self, default: u64) -> u64 {
        self.runs.unwrap_or(default)
    }

    /// The effective seed given the driver's default.
    pub(crate) fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }
}

/// A traced collection: one simulated pass producing the result
/// artifact and its `<name>_traces` companion.
pub type CollectTraced = fn(&DriverOpts) -> (Artifact, Artifact);

/// One registered driver.
pub struct Driver {
    /// Registry name — also the binary name and the artifact file stem.
    pub name: &'static str,
    /// One-line description for `--list` output.
    pub about: &'static str,
    /// Runs the sweep and packs a persistable artifact.
    pub collect: fn(&DriverOpts) -> Artifact,
    /// Renders the table/figure purely from a (possibly reloaded)
    /// artifact.
    pub render: fn(&Artifact) -> Result<String, ArtifactError>,
    /// When present, the driver can run its sweep once and return both
    /// the result artifact *and* a raw-observation companion artifact
    /// (`<name>_traces`) — the `--traces` flag. Uniform cell sweeps
    /// support this; drivers with bespoke per-bench jobs (static
    /// tables, TICS comparisons) do not.
    pub collect_traced: Option<CollectTraced>,
}

/// Every driver, in the order the paper presents its artifacts (the
/// extension sweeps follow).
pub fn all() -> [&'static Driver; 16] {
    [
        &tables::TABLE1,
        &figures::FIG7,
        &figures::FIG8,
        &runtime_tables::TABLE2A,
        &runtime_tables::TABLE2B,
        &tables::TABLE3,
        &tables::TABLE4,
        &ablation::ABLATION_REGION_SIZE,
        &ablation::PROGRESS_REPORT,
        &ablation::SAMOYED_SCALING,
        &tics::TICS_EXPIRY,
        &tics::TICS_DYNAMIC,
        &figures::ENERGY_BREAKDOWN,
        &scenarios::SCENARIO_SWEEP,
        &fleet::FLEET,
        &serve::SERVE,
    ]
}

/// Looks a driver up by registry name.
pub fn by_name(name: &str) -> Option<&'static Driver> {
    all().into_iter().find(|d| d.name == name)
}

// ---------------------------------------------------------------------
// Shared cell plumbing
// ---------------------------------------------------------------------

/// The benchmark names in `ocelot_apps::all()` order — the row order of
/// every per-benchmark table.
pub(crate) fn bench_names() -> Vec<&'static str> {
    ocelot_apps::all().iter().map(|b| b.name).collect()
}

/// Shards one whole-row job per benchmark across the pool and returns
/// the resulting cells in `ocelot_apps::all()` order — the shape used
/// by drivers whose rows need several builds/machines rather than one
/// standard [`crate::harness::CellSpec`].
pub(crate) fn per_bench_cells(
    jobs: usize,
    job: impl Fn(&ocelot_apps::Benchmark) -> Json + Sync,
) -> Vec<Json> {
    let benches = ocelot_apps::all();
    let job = &job;
    let work: Vec<crate::pool::Job<'_, Json>> = benches
        .iter()
        .map(|b| Box::new(move || job(b)) as crate::pool::Job<'_, Json>)
        .collect();
    crate::pool::run_jobs(work, jobs)
}

/// The standard collect tail for uniform sweeps: runs `specs` through
/// the pool and packs one [`sim_cell`] per spec, in spec order, into a
/// fresh artifact.
pub(crate) fn collect_sim(
    driver: &str,
    mut config: Vec<(String, Json)>,
    specs: &[crate::harness::CellSpec],
    opts: &DriverOpts,
) -> Artifact {
    let specs = bind_backend(specs, &mut config, opts);
    let stats = crate::harness::run_cells(&specs, opts.jobs);
    let mut a = Artifact::new(driver, config);
    for (spec, s) in specs.iter().zip(&stats) {
        a.cells.push(spec_cell(spec, s));
    }
    a
}

/// As [`collect_sim`], but simulating each cell exactly once and
/// returning both the result artifact and the raw-observation
/// companion artifact (`<driver>_traces`, cells in the same order with
/// the same identity members plus a `"trace"` member).
pub(crate) fn collect_sim_traced(
    driver: &str,
    mut config: Vec<(String, Json)>,
    specs: &[crate::harness::CellSpec],
    opts: &DriverOpts,
) -> (Artifact, Artifact) {
    let specs = bind_backend(specs, &mut config, opts);
    let runs = crate::harness::run_cells_full(&specs, opts.jobs);
    let mut a = Artifact::new(driver, config.clone());
    let mut t = Artifact::new(&crate::traces::traces_driver_name(driver), config);
    for (spec, run) in specs.iter().zip(&runs) {
        a.cells.push(spec_cell(spec, &run.stats));
        let mut pairs = cell_identity(spec);
        pairs.push(("trace", crate::traces::trace_to_json(&run.trace)));
        t.cells.push(Json::obj(pairs));
    }
    (a, t)
}

/// Binds the sweep's uniform backend onto every spec and records it
/// once in the config for provenance: a replayed artifact says which
/// engine simulated it. The optimization level binds too but is
/// deliberately NOT recorded — artifacts must be byte-identical across
/// `--opt` levels.
fn bind_backend(
    specs: &[crate::harness::CellSpec],
    config: &mut Vec<(String, Json)>,
    opts: &DriverOpts,
) -> Vec<crate::harness::CellSpec> {
    config.push(("backend".into(), Json::str(opts.backend.name())));
    specs
        .iter()
        .map(|s| s.clone().with_backend(opts.backend).with_opt(opts.opt))
        .collect()
}

/// The identity members of a cell built from its spec: `bench`,
/// `model`, `seed`, the scenario binding when present, and the
/// workload tags.
pub(crate) fn cell_identity(spec: &crate::harness::CellSpec) -> Vec<(&'static str, Json)> {
    let mut pairs = vec![
        ("bench", Json::str(&spec.bench)),
        ("model", Json::str(spec.model.name())),
        ("seed", Json::u64(spec.seed)),
    ];
    if let Some(sc) = &spec.scenario {
        pairs.push(("scenario", Json::str(sc)));
    }
    pairs.extend(workload_pairs(spec.workload));
    pairs
}

/// The standard simulation-cell object for `spec`:
/// `{identity..., stats}`.
pub(crate) fn spec_cell(spec: &crate::harness::CellSpec, stats: &Stats) -> Json {
    let mut pairs = cell_identity(spec);
    pairs.push(("stats", crate::artifact::stats_to_json(stats)));
    Json::obj(pairs)
}

/// Tags identifying a workload inside a cell object.
pub(crate) fn workload_pairs(w: Workload) -> Vec<(&'static str, Json)> {
    match w {
        Workload::Continuous { runs } => vec![
            ("workload", Json::str("continuous")),
            ("runs", Json::u64(runs)),
        ],
        Workload::Intermittent { runs } => vec![
            ("workload", Json::str("intermittent")),
            ("runs", Json::u64(runs)),
        ],
        Workload::Harvested { runs } => vec![
            ("workload", Json::str("harvested")),
            ("runs", Json::u64(runs)),
        ],
        Workload::Duration { sim_us } => vec![
            ("workload", Json::str("duration")),
            ("sim_us", Json::u64(sim_us)),
        ],
        Workload::Pathological { runs } => vec![
            ("workload", Json::str("pathological")),
            ("runs", Json::u64(runs)),
        ],
    }
}

/// Builds the standard simulation-cell object:
/// `{bench, model, seed, workload tags..., stats}`.
pub(crate) fn sim_cell(
    bench: &str,
    model: ExecModel,
    seed: u64,
    workload: Workload,
    stats: &Stats,
) -> Json {
    let mut pairs = vec![
        ("bench", Json::str(bench)),
        ("model", Json::str(model.name())),
        ("seed", Json::u64(seed)),
    ];
    pairs.extend(workload_pairs(workload));
    pairs.push(("stats", crate::artifact::stats_to_json(stats)));
    Json::obj(pairs)
}

/// A required string member of a cell.
pub(crate) fn cell_str<'a>(cell: &'a Json, key: &str) -> Result<&'a str, ArtifactError> {
    cell.get(key).and_then(Json::as_str).ok_or_else(|| {
        ArtifactError::Schema(format!("cell member `{key}` missing or not a string"))
    })
}

/// A required integer member of a cell.
pub(crate) fn cell_u64(cell: &Json, key: &str) -> Result<u64, ArtifactError> {
    cell.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ArtifactError::Schema(format!("cell member `{key}` missing or not a u64")))
}

/// A required number member of a cell, as `f64`.
pub(crate) fn cell_f64(cell: &Json, key: &str) -> Result<f64, ArtifactError> {
    cell.get(key).and_then(Json::as_f64).ok_or_else(|| {
        ArtifactError::Schema(format!("cell member `{key}` missing or not a number"))
    })
}

/// A required boolean member of a cell.
pub(crate) fn cell_bool(cell: &Json, key: &str) -> Result<bool, ArtifactError> {
    cell.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ArtifactError::Schema(format!("cell member `{key}` missing or not a bool")))
}

/// The deserialized `stats` member of a cell.
pub(crate) fn cell_stats(cell: &Json) -> Result<Stats, ArtifactError> {
    let v = cell
        .get("stats")
        .ok_or_else(|| ArtifactError::Schema("cell has no stats member".into()))?;
    crate::artifact::stats_from_json(v)
}

/// Finds the unique cell whose members match every `(key, value)` pair
/// (string values compared against string members).
pub(crate) fn find_cell<'a>(
    a: &'a Artifact,
    wanted: &[(&str, &str)],
) -> Result<&'a Json, ArtifactError> {
    a.cells
        .iter()
        .find(|c| {
            wanted
                .iter()
                .all(|(k, v)| c.get(k).and_then(Json::as_str) == Some(*v))
        })
        .ok_or_else(|| {
            ArtifactError::Schema(format!("no cell matching {wanted:?} in `{}`", a.driver))
        })
}

/// The stats of the unique cell matching `wanted`.
pub(crate) fn find_stats(a: &Artifact, wanted: &[(&str, &str)]) -> Result<Stats, ArtifactError> {
    cell_stats(find_cell(a, wanted)?)
}

/// Distinct `bench` members of an artifact's cells, in first-seen order
/// — the row order rendered, without consulting anything but the file.
pub(crate) fn cell_benches(a: &Artifact) -> Vec<String> {
    let mut seen = Vec::new();
    for c in &a.cells {
        if let Some(b) = c.get("bench").and_then(Json::as_str) {
            if !seen.iter().any(|s: &String| s == b) {
                seen.push(b.to_string());
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = all().iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 16, "all sixteen drivers registered");
        for n in &names {
            assert!(by_name(n).is_some());
            assert_eq!(
                names.iter().filter(|m| m == &n).count(),
                1,
                "{n} duplicated"
            );
        }
        assert!(by_name("table9000").is_none());
    }

    #[test]
    fn sim_cell_round_trips_identity_and_stats() {
        let s = Stats {
            on_cycles: 77,
            ..Default::default()
        };
        let cell = sim_cell(
            "tire",
            ExecModel::Ocelot,
            9,
            Workload::Duration { sim_us: 123 },
            &s,
        );
        assert_eq!(cell_str(&cell, "bench").unwrap(), "tire");
        assert_eq!(cell_str(&cell, "model").unwrap(), "Ocelot");
        assert_eq!(cell_u64(&cell, "seed").unwrap(), 9);
        assert_eq!(cell_str(&cell, "workload").unwrap(), "duration");
        assert_eq!(cell_u64(&cell, "sim_us").unwrap(), 123);
        assert_eq!(cell_stats(&cell).unwrap(), s);
        assert!(cell_str(&cell, "nope").is_err());
        assert!(cell_u64(&cell, "bench").is_err());
    }

    #[test]
    fn find_cell_matches_on_all_keys() {
        let mut a = Artifact::new("t", vec![]);
        for (b, m) in [("a", "JIT"), ("a", "Ocelot"), ("b", "JIT")] {
            a.cells.push(Json::obj(vec![
                ("bench", Json::str(b)),
                ("model", Json::str(m)),
            ]));
        }
        let c = find_cell(&a, &[("bench", "a"), ("model", "Ocelot")]).unwrap();
        assert_eq!(cell_str(c, "model").unwrap(), "Ocelot");
        assert!(find_cell(&a, &[("bench", "c")]).is_err());
        assert_eq!(cell_benches(&a), vec!["a".to_string(), "b".to_string()]);
    }
}
