//! The region-placement studies: smallest-region inference vs
//! whole-`main` wrapping (§5.3/§8), the forward-progress report
//! (§5.3/§10), and the Samoyed scaling/fallback sweep (§7.4/§9).
//!
//! These drivers do not fit the uniform (benchmark, model, seed) cell
//! shape — each benchmark (or capacitor size) needs several builds and
//! custom machines — so their `collect` functions shard whole-row jobs
//! (one per benchmark / capacity) across the pool directly.

use super::{cell_bool, cell_f64, cell_str, cell_u64, per_bench_cells, Driver, DriverOpts};
use crate::artifact::{Artifact, ArtifactError};
use crate::harness::{bench_supply, build_for, calibrated_costs, whole_main_variant, MAX_STEPS};
use crate::json::Json;
use crate::pool::{self, Job};
use crate::report::{ratio, Table};
use ocelot_core::collect_regions;
use ocelot_hw::energy::CostModel;
use ocelot_hw::power::{ContinuousPower, HarvestedPower, PowerSupply};
use ocelot_hw::sensors::{Environment, Signal};
use ocelot_hw::{Capacitor, Harvester};
use ocelot_progress::ProgressReport;
use ocelot_runtime::machine::{Machine, RunOutcome};
use ocelot_runtime::model::{build, Built, ExecModel};
use ocelot_runtime::samoyed::{run_scaled, ScaledApp};

// ---------------------------------------------------------------------
// ablation_region_size
// ---------------------------------------------------------------------

/// §5.3/§8 ablation: inferred vs whole-`main` regions.
pub static ABLATION_REGION_SIZE: Driver = Driver {
    name: "ablation_region_size",
    about: "ablation: smallest-region inference vs whole-main regions (§5.3, §8)",
    collect: collect_ablation,
    render: render_ablation,
    collect_traced: None,
};

fn collect_ablation(opts: &DriverOpts) -> Artifact {
    let runs = opts.runs_or(25);
    let seed = opts.seed_or(3);
    let cells = per_bench_cells(opts.jobs, |b| {
        let inferred = build_for(b, ExecModel::Ocelot);
        let inferred_omega = inferred
            .regions
            .iter()
            .map(|r| r.omega_words)
            .max()
            .unwrap_or(0);

        let whole = build(whole_main_variant(b.annotated_src), ExecModel::AtomicsOnly)
            .expect("whole-main builds");
        let whole_omega = collect_regions(&whole.program)
            .unwrap()
            .iter()
            .map(|r| r.omega_words)
            .max()
            .unwrap_or(0);

        // Intermittent runtime comparison: a whole-main region
        // re-executes the entire program after every in-region failure,
        // so its cost shows under harvested power.
        let run = |built: &Built| {
            let mut m = Machine::new(
                &built.program,
                &built.regions,
                built.policies.clone(),
                b.environment(seed),
                calibrated_costs(b),
                Box::new(bench_supply(seed)),
            );
            for _ in 0..runs {
                m.run_once(MAX_STEPS);
            }
            m.stats().on_cycles
        };
        let whole_cycles = run(&whole);
        let inferred_cycles = run(&inferred);

        // Forward progress on a buffer sized just under one run's worth
        // of energy: the whole-main region cannot fit, the inferred
        // regions can (§5.3).
        let run_nj = {
            let mut m = Machine::new(
                &inferred.program,
                &inferred.regions,
                inferred.policies.clone(),
                b.environment(seed),
                calibrated_costs(b),
                Box::new(ContinuousPower),
            );
            m.run_once(MAX_STEPS);
            m.stats().on_cycles as f64
        };
        let tiny = || {
            HarvestedPower::new(
                Capacitor::new(run_nj * 0.97, run_nj * 0.03),
                Harvester::powercast_noisy(5),
            )
        };
        let completes = |built: &Built| {
            let mut m = Machine::new(
                &built.program,
                &built.regions,
                built.policies.clone(),
                b.environment(seed),
                calibrated_costs(b),
                Box::new(tiny()),
            );
            matches!(m.run_once(400_000), RunOutcome::Completed { .. })
        };
        Json::obj(vec![
            ("bench", Json::str(b.name)),
            ("inferred_omega", Json::u64(inferred_omega as u64)),
            ("whole_omega", Json::u64(whole_omega as u64)),
            ("inferred_cycles", Json::u64(inferred_cycles)),
            ("whole_cycles", Json::u64(whole_cycles)),
            ("inferred_completes", Json::Bool(completes(&inferred))),
            ("whole_completes", Json::Bool(completes(&whole))),
        ])
    });
    let mut a = Artifact::new(
        "ablation_region_size",
        vec![
            ("runs".into(), Json::u64(runs)),
            ("seed".into(), Json::u64(seed)),
        ],
    );
    a.cells = cells;
    a
}

fn render_ablation(a: &Artifact) -> Result<String, ArtifactError> {
    let mut t = Table::new(&[
        "App",
        "inferred ω(words)",
        "whole-main ω(words)",
        "runtime vs inferred",
        "completes on small buffer?",
    ]);
    for cell in &a.cells {
        let r = cell_u64(cell, "whole_cycles")? as f64 / cell_u64(cell, "inferred_cycles")? as f64;
        t.row(vec![
            cell_str(cell, "bench")?.to_string(),
            cell_u64(cell, "inferred_omega")?.to_string(),
            cell_u64(cell, "whole_omega")?.to_string(),
            ratio(r),
            format!(
                "inferred: {} / whole-main: {}",
                if cell_bool(cell, "inferred_completes")? {
                    "yes"
                } else {
                    "NO"
                },
                if cell_bool(cell, "whole_completes")? {
                    "yes"
                } else {
                    "NO"
                }
            ),
        ]);
    }
    Ok(format!(
        "Ablation: smallest-region inference vs whole-main regions (§5.3, §8)\n{}\
         A whole-main region snapshots more state and re-executes more work per\n\
         failure; on a small buffer it may never complete — the inferred region\n\
         is the difference between progress and livelock.\n",
        t.render()
    ))
}

// ---------------------------------------------------------------------
// progress_report
// ---------------------------------------------------------------------

/// §5.3/§10 forward-progress report for all six benchmarks.
pub static PROGRESS_REPORT: Driver = Driver {
    name: "progress_report",
    about: "forward-progress report: worst-case region energy vs buffer (§5.3, §10)",
    collect: collect_progress,
    render: render_progress,
    collect_traced: None,
};

fn collect_progress(opts: &DriverOpts) -> Artifact {
    let seed = opts.seed_or(3);
    let bench_cap = Capacitor::new(26_000.0, 2_600.0);
    let cells = per_bench_cells(opts.jobs, |b| {
        let costs = calibrated_costs(b);
        let inferred = build_for(b, ExecModel::Ocelot);
        let ri = ProgressReport::analyze(&inferred.program, &inferred.regions, &costs)
            .expect("benchmarks are bounded");
        let whole = build(whole_main_variant(b.annotated_src), ExecModel::AtomicsOnly)
            .expect("whole-main builds");
        let rw = ProgressReport::analyze(&whole.program, &whole.regions, &costs)
            .expect("benchmarks are bounded");

        let min = ri.min_capacitor(0.10);
        // Cross-validate: the app must actually complete on its own
        // minimum buffer.
        let supply = HarvestedPower::new(
            Capacitor::new(min.capacity_nj(), min.trigger_nj()),
            Harvester::Constant { power_nw: 1.0 },
        );
        let mut m = Machine::new(
            &inferred.program,
            &inferred.regions,
            inferred.policies.clone(),
            b.environment(seed),
            costs.clone(),
            Box::new(supply),
        )
        .with_reexec_limit(50);
        let dynamic = match m.run_once(MAX_STEPS) {
            RunOutcome::Completed { .. } => "yes",
            RunOutcome::Livelock { .. } => "NO (livelock)",
            RunOutcome::StepLimit => "NO (step limit)",
        };

        Json::obj(vec![
            ("bench", Json::str(b.name)),
            ("regions", Json::u64(ri.regions.len() as u64)),
            ("peak_inferred_nj", Json::Float(ri.peak_demand_nj())),
            ("peak_whole_nj", Json::Float(rw.peak_demand_nj())),
            ("min_capacity_nj", Json::Float(min.capacity_nj())),
            ("feasible_on_bank", Json::Bool(ri.feasible_on(&bench_cap))),
            ("runs_on_min_buffer", Json::str(dynamic)),
        ])
    });
    let mut a = Artifact::new(
        "progress_report",
        vec![
            ("seed".into(), Json::u64(seed)),
            ("bank_capacity_nj".into(), Json::Float(26_000.0)),
        ],
    );
    a.cells = cells;
    a
}

fn render_progress(a: &Artifact) -> Result<String, ArtifactError> {
    let mut t = Table::new(&[
        "App",
        "regions",
        "peak µJ (inferred)",
        "peak µJ (whole-main)",
        "min buffer µJ",
        "on 26 µJ bank",
        "runs on min buffer?",
    ]);
    for cell in &a.cells {
        t.row(vec![
            cell_str(cell, "bench")?.to_string(),
            cell_u64(cell, "regions")?.to_string(),
            format!("{:.2}", cell_f64(cell, "peak_inferred_nj")? / 1000.0),
            format!("{:.2}", cell_f64(cell, "peak_whole_nj")? / 1000.0),
            format!("{:.2}", cell_f64(cell, "min_capacity_nj")? / 1000.0),
            if cell_bool(cell, "feasible_on_bank")? {
                "feasible"
            } else {
                "INFEASIBLE"
            }
            .to_string(),
            cell_str(cell, "runs_on_min_buffer")?.to_string(),
        ]);
    }
    Ok(format!(
        "Forward-progress report (§5.3, §10): worst-case region energy vs buffer\n{}\
         Every app is feasible on the evaluation bank, and each completes on the\n\
         buffer the analysis sizes for it. Whole-main wrapping always demands at\n\
         least as much buffer as the inferred regions — most dramatically on cem,\n\
         whose ω would back the whole compression table.\n",
        t.render()
    ))
}

// ---------------------------------------------------------------------
// samoyed_scaling
// ---------------------------------------------------------------------

/// §7.4/§9 Samoyed scaling/fallback sweep on the photo kernel.
pub static SAMOYED_SCALING: Driver = Driver {
    name: "samoyed_scaling",
    about: "Samoyed scaling rules and fallbacks vs Ocelot fixed regions (§7.4, §9)",
    collect: collect_samoyed,
    render: render_samoyed,
    collect_traced: None,
};

/// Capacitor sweep of the original binary, in nanojoules.
const CAPACITIES_NJ: [f64; 5] = [60_000.0, 30_000.0, 18_000.0, 11_000.0, 7_800.0];

fn photo_src(n: u64) -> String {
    format!(
        r#"
        sensor photo;
        fn sample_avg() {{
            let sum = 0;
            repeat {n} {{
                let v = in(photo);
                consistent(v, 1);
                sum = sum + v;
            }}
            let avg = sum / {n};
            out(uart, avg);
            return avg;
        }}
        fn main() {{
            let avg = sample_avg();
            out(log, avg);
        }}
        "#
    )
}

fn supply_for(capacity_nj: f64) -> Box<dyn PowerSupply> {
    Box::new(HarvestedPower::new(
        Capacitor::new(capacity_nj, 3_000.0),
        Harvester::Constant { power_nw: 1.0 },
    ))
}

fn collect_samoyed(opts: &DriverOpts) -> Artifact {
    let env = Environment::new().with("photo", Signal::Constant(40));
    let costs = CostModel::default();
    let env = &env;
    let costs = &costs;
    let work: Vec<Job<'_, Json>> = CAPACITIES_NJ
        .iter()
        .map(|&capacity| {
            Box::new(move || {
                // Ocelot: the constraint pins all five readings in one
                // region.
                let ocelot = build(
                    ocelot_ir::compile(&photo_src(5)).unwrap(),
                    ExecModel::Ocelot,
                )
                .unwrap();
                let mut m = Machine::new(
                    &ocelot.program,
                    &ocelot.regions,
                    ocelot.policies.clone(),
                    env.clone(),
                    costs.clone(),
                    supply_for(capacity),
                )
                .with_reexec_limit(12);
                let ocelot_outcome = match m.run_once(4_000_000) {
                    RunOutcome::Completed { violated: false } => "completes, consistent",
                    RunOutcome::Completed { violated: true } => "completes, VIOLATED",
                    RunOutcome::Livelock { .. } => "LIVELOCK (unsatisfiable)",
                    RunOutcome::StepLimit => "step limit",
                };

                // Samoyed: same kernel as an atomic function with a
                // scaling rule and fallback.
                let app = ScaledApp {
                    source_for: &photo_src,
                    initial: 5,
                    min: 1,
                    atomic_fns: vec!["sample_avg".into()],
                };
                let out = run_scaled(&app, env, costs, &|| supply_for(capacity), 12, 4_000_000)
                    .expect("samoyed build");
                Json::obj(vec![
                    ("capacity_nj", Json::Float(capacity)),
                    ("ocelot_outcome", Json::str(ocelot_outcome)),
                    ("samoyed_completed", Json::Bool(out.completed)),
                    ("samoyed_final_param", Json::u64(out.final_param)),
                    ("samoyed_scalings", Json::u64(out.scalings as u64)),
                    ("samoyed_fell_back", Json::Bool(out.fell_back)),
                    ("samoyed_violations", Json::u64(out.violations)),
                ])
            }) as Job<'_, Json>
        })
        .collect();
    let cells = pool::run_jobs(work, opts.jobs);
    // No run/seed dimension (one deterministic run per capacity, constant
    // signal and harvester); the capacity sweep is the whole config.
    let mut a = Artifact::new(
        "samoyed_scaling",
        vec![(
            "capacities_nj".into(),
            Json::Arr(CAPACITIES_NJ.iter().map(|&c| Json::Float(c)).collect()),
        )],
    );
    a.cells = cells;
    a
}

fn render_samoyed(a: &Artifact) -> Result<String, ArtifactError> {
    let mut t = Table::new(&[
        "buffer µJ",
        "Ocelot (fixed N=5)",
        "Samoyed outcome",
        "N used",
        "scalings",
        "fallback",
    ]);
    for cell in &a.cells {
        let fell_back = cell_bool(cell, "samoyed_fell_back")?;
        let outcome = if fell_back {
            if cell_u64(cell, "samoyed_violations")? > 0 {
                "fallback, VIOLATED".to_string()
            } else {
                "fallback, lucky".to_string()
            }
        } else if cell_bool(cell, "samoyed_completed")? {
            "completes, consistent".to_string()
        } else {
            "step limit".to_string()
        };
        t.row(vec![
            format!("{:.0}", cell_f64(cell, "capacity_nj")? / 1000.0),
            cell_str(cell, "ocelot_outcome")?.to_string(),
            outcome,
            cell_u64(cell, "samoyed_final_param")?.to_string(),
            cell_u64(cell, "samoyed_scalings")?.to_string(),
            if fell_back { "yes" } else { "no" }.to_string(),
        ]);
    }
    Ok(format!(
        "Samoyed scaling/fallback vs Ocelot fixed regions (photo kernel, §7.4/§9)\n{}\
         Ample buffers: both complete atomically. As the buffer shrinks, Samoyed\n\
         degrades the workload (fewer readings averaged) to keep committing\n\
         atomically; Ocelot refuses to weaken the constraint and livelocks —\n\
         signalling that the annotation is unsatisfiable on that hardware. At\n\
         the smallest buffer Samoyed's fallback abandons atomicity entirely and\n\
         the consistency constraint with it.\n",
        t.render()
    ))
}
