//! Extension — the `serve` driver: incremental re-verification latency
//! over a recorded edit-trace workload.
//!
//! Replays a deterministic stream of one-line single-function edits
//! (see [`crate::verify`]) through an incremental verification
//! [`crate::verify::Session`], timing each incremental re-verify
//! against a from-scratch verify of the same source, and persists the
//! per-edit measurements as a standard versioned artifact. `render`
//! reports p50/p99 latencies and the speedup purely from the artifact
//! (`--replay` works as for every driver). Like the fleet throughput
//! fingerprint, the recorded wall times are machine-dependent data:
//! this artifact is excluded from byte-identity comparisons, and the
//! verdict hashes inside it are the machine-independent part.

use super::{cell_u64, Driver, DriverOpts};
use crate::artifact::{Artifact, ArtifactError};
use crate::json::Json;
use crate::verify::{replay_trace, EditTrace, Verdict, DEFAULT_TRACE};
use ocelot_telemetry::percentile;

/// The edit-trace latency driver.
pub static SERVE: Driver = Driver {
    name: "serve",
    about: "extension: incremental re-verification latency over a recorded edit trace",
    collect,
    render,
    collect_traced: None,
};

/// The trace this driver replays: the default workload shape with
/// `--runs` scaling the edit count and `--seed` reseeding the trace.
fn plan(opts: &DriverOpts) -> EditTrace {
    EditTrace {
        funcs: DEFAULT_TRACE.funcs,
        edits: opts.runs_or(DEFAULT_TRACE.edits as u64) as usize,
        seed: opts.seed_or(DEFAULT_TRACE.seed),
    }
}

fn collect(opts: &DriverOpts) -> Artifact {
    collect_trace(&plan(opts))
}

fn collect_trace(trace: &EditTrace) -> Artifact {
    let measurements = replay_trace(trace);
    let mut a = Artifact::new(
        "serve",
        vec![
            ("funcs".into(), Json::u64(trace.funcs as u64)),
            ("edits".into(), Json::u64(trace.edits as u64)),
            ("seed".into(), Json::u64(trace.seed)),
        ],
    );
    for m in &measurements {
        a.cells.push(Json::obj(vec![
            ("edit", Json::u64(m.edit as u64)),
            ("target", Json::u64(m.target as u64)),
            ("funcs", Json::u64(m.stats.funcs as u64)),
            ("analyzed", Json::u64(m.stats.analyzed as u64)),
            ("reused", Json::u64(m.stats.reused as u64)),
            ("verdict", m.verdict.to_json()),
            ("incr_ns", Json::u64(m.incr_ns)),
            ("full_ns", Json::u64(m.full_ns)),
        ]));
    }
    a
}

/// Sorted samples of one latency column.
fn column(a: &Artifact, key: &str) -> Result<Vec<u64>, ArtifactError> {
    let mut xs = a
        .cells
        .iter()
        .map(|c| cell_u64(c, key))
        .collect::<Result<Vec<_>, _>>()?;
    if xs.is_empty() {
        return Err(ArtifactError::Schema("serve artifact has no cells".into()));
    }
    xs.sort_unstable();
    Ok(xs)
}

fn render(a: &Artifact) -> Result<String, ArtifactError> {
    let incr = column(a, "incr_ns")?;
    let full = column(a, "full_ns")?;
    let p = |xs: &[u64], q: f64| percentile(xs, q) as f64 / 1.0e6;
    let mut out = String::new();
    out.push_str("Incremental re-verification latency (recorded edit trace)\n");
    out.push_str(&format!(
        "workload: {} functions, {} one-line single-function edits, seed {}\n\n",
        a.config_u64("funcs")?,
        a.config_u64("edits")?,
        a.config_u64("seed")?,
    ));
    out.push_str("              p50 (ms)   p99 (ms)\n");
    out.push_str(&format!(
        "incremental   {:>8.3}   {:>8.3}\n",
        p(&incr, 50.0),
        p(&incr, 99.0)
    ));
    out.push_str(&format!(
        "full          {:>8.3}   {:>8.3}\n",
        p(&full, 50.0),
        p(&full, 99.0)
    ));
    let speedup = percentile(&full, 50.0) as f64 / percentile(&incr, 50.0).max(1) as f64;
    out.push_str(&format!("\np50 speedup: {speedup:.1}x\n"));
    let mut analyzed = 0u64;
    let mut reused = 0u64;
    for c in &a.cells {
        analyzed += cell_u64(c, "analyzed")?;
        reused += cell_u64(c, "reused")?;
        let v = c
            .get("verdict")
            .and_then(Verdict::from_json)
            .ok_or_else(|| ArtifactError::Schema("cell verdict missing or malformed".into()))?;
        if !v.passes {
            return Err(ArtifactError::Schema(format!(
                "edit {} recorded a failing verdict",
                cell_u64(c, "edit")?
            )));
        }
    }
    out.push_str(&format!(
        "functions re-analyzed: {analyzed} of {} ({reused} reused from cache)\n",
        analyzed + reused
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_runtime::{ExecBackend, OptLevel};

    #[test]
    fn plan_scales_edits_and_reseeds() {
        let opts = DriverOpts {
            jobs: 1,
            runs: Some(5),
            seed: Some(4),
            backend: ExecBackend::Interp,
            opt: OptLevel::default(),
        };
        let t = plan(&opts);
        assert_eq!(t.funcs, DEFAULT_TRACE.funcs);
        assert_eq!(t.edits, 5);
        assert_eq!(t.seed, 4);
        let defaults = DriverOpts {
            runs: None,
            seed: None,
            ..opts
        };
        assert_eq!(plan(&defaults).edits, DEFAULT_TRACE.edits);
        assert_eq!(plan(&defaults).seed, DEFAULT_TRACE.seed);
    }

    #[test]
    fn collect_records_one_cell_per_edit_and_replays() {
        // A scaled-down trace: the full DEFAULT_TRACE workload is sized
        // for release-mode latency measurement, not for unit tests.
        let a = collect_trace(&EditTrace {
            funcs: 6,
            edits: 5,
            seed: 4,
        });
        assert_eq!(a.driver, "serve");
        assert_eq!(a.cells.len(), 5);
        for c in &a.cells {
            // The one-line edit re-analyzes the edited worker + main.
            assert!(cell_u64(c, "analyzed").unwrap() <= 2);
            let v = Verdict::from_json(c.get("verdict").unwrap()).unwrap();
            assert!(v.passes);
        }
        // The --replay path: render from a round-tripped artifact.
        let reloaded = Artifact::from_text(&a.render().unwrap()).unwrap();
        let text = render(&reloaded).unwrap();
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("speedup"), "{text}");
    }

    #[test]
    fn render_rejects_malformed_cells() {
        let mut a = Artifact::new("serve", vec![("funcs".into(), Json::u64(1))]);
        a.cells.push(Json::obj(vec![("edit", Json::u64(1))]));
        assert!(render(&a).is_err());
        let empty = Artifact::new("serve", vec![]);
        assert!(render(&empty).is_err(), "no cells is a schema error");
    }
}
