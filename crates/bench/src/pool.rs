//! A hand-rolled work-stealing thread pool for the evaluation harness.
//!
//! The environment has no `rayon`, so sharding (benchmark, model, seed)
//! cells across cores is done here with `std` only. The design is the
//! classic one: every worker owns a deque seeded round-robin with job
//! indices; a worker pops from the *front* of its own deque and, when
//! empty, steals the *back half* of the fullest victim's deque. Jobs
//! never spawn jobs, so termination is simply "all deques empty".
//!
//! Two properties the harness depends on:
//!
//! * **Deterministic results.** Each job writes its result into its own
//!   index slot, so the output order equals the input order no matter
//!   which worker ran what when — `--jobs 1` and `--jobs 8` produce
//!   byte-identical artifacts (a regression test holds this).
//! * **Borrow-friendly jobs.** Workers are scoped threads, so jobs may
//!   borrow from the caller's stack (prebuilt programs, shared specs)
//!   without `Arc`.
//!
//! A panicking job poisons its worker; the scope re-raises the panic on
//! join, so a failing assertion inside one cell still fails the whole
//! sweep loudly instead of vanishing on a detached thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A boxed job yielding a `T`, runnable on any worker.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// One worker's deque of (input index, job) pairs.
type JobDeque<'a, T> = Mutex<VecDeque<(usize, Job<'a, T>)>>;

/// Counters describing one [`run_jobs_counting`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads actually spawned (0 for the inline fast path).
    pub workers: usize,
    /// Jobs that ran on a worker other than the one seeded with them.
    pub steals: u64,
}

/// Number of workers to use when `--jobs` is not given: the machine's
/// available parallelism, or 1 if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every job and returns the results in input order. `workers <= 1`
/// runs inline on the calling thread (no spawns, same results).
pub fn run_jobs<'a, T: Send>(jobs: Vec<Job<'a, T>>, workers: usize) -> Vec<T> {
    run_jobs_counting(jobs, workers).0
}

/// [`run_jobs`] that also reports scheduling counters, for tests that
/// assert stealing actually happens.
pub fn run_jobs_counting<'a, T: Send>(
    jobs: Vec<Job<'a, T>>,
    workers: usize,
) -> (Vec<T>, PoolStats) {
    let n_jobs = jobs.len();
    let workers = workers.min(n_jobs);
    if workers <= 1 {
        let results = jobs
            .into_iter()
            .map(|j| {
                let _span = ocelot_telemetry::span!("pool.task", "pool");
                j()
            })
            .collect();
        return (results, PoolStats::default());
    }

    // Deques of (index, job), seeded round-robin so every worker starts
    // with an even share regardless of job order.
    let mut queues: Vec<JobDeque<'a, T>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        queues.push(Mutex::new(VecDeque::new()));
    }
    for (i, job) in jobs.into_iter().enumerate() {
        queues[i % workers].lock().unwrap().push_back((i, job));
    }
    for q in &queues {
        ocelot_telemetry::metrics::POOL_QUEUE_DEPTH.observe(q.lock().unwrap().len() as u64);
    }
    let queues = &queues;
    let steals = AtomicU64::new(0);
    let steals_ref = &steals;

    let mut collected: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                s.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Own work first, front to back.
                        let next = queues[me].lock().unwrap().pop_front();
                        if let Some((idx, job)) = next {
                            let _span = ocelot_telemetry::span!("pool.task", "pool");
                            out.push((idx, job()));
                            continue;
                        }
                        // Steal the back half of the fullest victim.
                        match steal_half(queues, me) {
                            Some(batch) => {
                                steals_ref.fetch_add(batch.len() as u64, Ordering::Relaxed);
                                ocelot_telemetry::metrics::POOL_STEALS.add(batch.len() as u64);
                                let mut q = queues[me].lock().unwrap();
                                let depth = q.len() + batch.len();
                                ocelot_telemetry::metrics::POOL_QUEUE_DEPTH.observe(depth as u64);
                                q.extend(batch);
                            }
                            // Nothing anywhere; jobs never spawn jobs,
                            // so this worker is done.
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise a job panic with its original payload so the
                // failing cell's message reaches the caller's test.
                h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
            })
            .collect()
    });

    // Reassemble in input order: each index appears exactly once.
    let mut slots: Vec<Option<T>> = (0..n_jobs).map(|_| None).collect();
    for (idx, value) in collected.drain(..).flatten() {
        debug_assert!(slots[idx].is_none(), "job {idx} ran twice");
        slots[idx] = Some(value);
    }
    let results = slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("job {i} never ran")))
        .collect();
    let stats = PoolStats {
        workers,
        steals: steals.load(Ordering::Relaxed),
    };
    (results, stats)
}

/// Takes the back half (at least one) of the fullest non-empty deque
/// other than `me`, or `None` when every other deque is empty.
fn steal_half<'a, T>(
    queues: &[JobDeque<'a, T>],
    me: usize,
) -> Option<VecDeque<(usize, Job<'a, T>)>> {
    // Pick the fullest victim by a cheap scan; lengths may shift under
    // us, which is fine — we re-check under the victim's lock.
    let mut order: Vec<usize> = (0..queues.len()).filter(|&i| i != me).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(queues[i].lock().unwrap().len()));
    for victim in order {
        let mut q = queues[victim].lock().unwrap();
        let len = q.len();
        if len == 0 {
            continue;
        }
        return Some(q.split_off(len - len.div_ceil(2)));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_keep_input_order_at_any_width() {
        let jobs = |n: usize| -> Vec<Job<'static, usize>> {
            (0..n)
                .map(|i| Box::new(move || i * i) as Job<'static, usize>)
                .collect()
        };
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for w in [1, 2, 3, 8, 64] {
            assert_eq!(run_jobs(jobs(37), w), expect, "workers={w}");
        }
        assert_eq!(run_jobs(jobs(0), 4), Vec::<usize>::new());
    }

    #[test]
    fn jobs_can_borrow_from_the_caller() {
        let data: Vec<u64> = (0..100).collect();
        let jobs: Vec<Job<'_, u64>> = data
            .chunks(10)
            .map(|c| Box::new(move || c.iter().sum::<u64>()) as Job<'_, u64>)
            .collect();
        let sums = run_jobs(jobs, 4);
        assert_eq!(sums.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_, ()>> = (0..200)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Job<'_, ()>
            })
            .collect();
        run_jobs(jobs, 8);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn idle_workers_steal_from_busy_ones() {
        // Worker 1's seed jobs (odd indices) sleep; worker 0 finishes
        // its own share quickly and must steal the sleepers' backlog.
        let jobs: Vec<Job<'static, usize>> = (0..16usize)
            .map(|i| {
                Box::new(move || {
                    if i % 2 == 1 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    i
                }) as Job<'static, usize>
            })
            .collect();
        let (results, stats) = run_jobs_counting(jobs, 2);
        assert_eq!(results, (0..16).collect::<Vec<_>>());
        assert_eq!(stats.workers, 2);
        assert!(stats.steals > 0, "expected steals, got {stats:?}");
    }

    #[test]
    #[should_panic(expected = "cell 3 exploded")]
    fn a_panicking_job_fails_the_whole_sweep() {
        let jobs: Vec<Job<'static, usize>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 3, "cell {i} exploded");
                    i
                }) as Job<'static, usize>
            })
            .collect();
        run_jobs(jobs, 4);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
