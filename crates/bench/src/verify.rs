//! Incremental re-verification sessions and the recorded edit-trace
//! workload behind the `serve` driver and `ocelotc serve`.
//!
//! A [`Session`] holds one logical *document*: an
//! [`ocelot_analysis::incremental::FlowCache`] of per-function taint
//! flows keyed by function-body fingerprints. Each [`Session::verify`]
//! call compiles the submitted source, reuses every flow whose
//! fingerprint is unchanged, recomputes the rest, and runs the full
//! Ocelot transform + self-check on the assembled analysis — producing
//! a [`Verdict`] guaranteed identical to a from-scratch
//! [`full_verify`] (the incremental assembly equals
//! `TaintAnalysis::run` exactly; held by tests here and byte-identity
//! tests in `crates/serve`).
//!
//! The module also generates the *edit-trace workload* the `serve`
//! driver replays: a large program of branch-heavy worker functions
//! plus a handful of annotated sensor functions, and a deterministic
//! stream of one-line single-function edits. On this shape the
//! analysis dominates parsing by a wide margin, so incremental
//! re-verification (edited function + its callers) beats full
//! re-analysis by well over the 10× the artifact reports.

use crate::json::Json;
use ocelot_analysis::incremental::{FlowCache, IncrementalStats};
use ocelot_analysis::taint::TaintAnalysis;
use ocelot_core::{ocelot_transform_with, Compiled};
use ocelot_ir::print::program_to_string;
use ocelot_ir::Program;

/// FNV-1a 64 over a program's canonical printed form — the program
/// hash `crates/serve` keys its caches by, and the hash verdicts embed
/// so byte-identity checks are one integer compare away.
pub fn program_hash(p: &Program) -> u64 {
    ocelot_analysis::incremental::fnv1a(program_to_string(p).as_bytes())
}

/// The outcome of verifying (transforming + self-checking) one program
/// version. Deliberately timing-free: verdicts for the same source must
/// be byte-identical whether they came from a cold compile, a warm
/// cache, or any `--jobs` level — latency lives in the driver artifact,
/// not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Hash of the *submitted* program (cache key).
    pub source_hash: u64,
    /// Hash of the transformed program (regions inserted, annotations
    /// erased) — the byte-identity witness.
    pub transformed_hash: u64,
    /// Functions in the program.
    pub funcs: usize,
    /// Derived policies (the paper's `PD`).
    pub policies: usize,
    /// Atomic regions in the transformed program.
    pub regions: usize,
    /// Whether the post-transform self-check passes (always true for a
    /// successful transform — Theorem 1).
    pub passes: bool,
}

impl Verdict {
    /// The verdict as a deterministic JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("source_hash", Json::u64(self.source_hash)),
            ("transformed_hash", Json::u64(self.transformed_hash)),
            ("funcs", Json::u64(self.funcs as u64)),
            ("policies", Json::u64(self.policies as u64)),
            ("regions", Json::u64(self.regions as u64)),
            ("passes", Json::Bool(self.passes)),
        ])
    }

    /// Reads a verdict back from its [`Verdict::to_json`] form.
    pub fn from_json(v: &Json) -> Option<Verdict> {
        Some(Verdict {
            source_hash: v.get("source_hash")?.as_u64()?,
            transformed_hash: v.get("transformed_hash")?.as_u64()?,
            funcs: v.get("funcs")?.as_u64()? as usize,
            policies: v.get("policies")?.as_u64()? as usize,
            regions: v.get("regions")?.as_u64()? as usize,
            passes: v.get("passes")?.as_bool()?,
        })
    }
}

fn verdict_of(source_hash: u64, funcs: usize, compiled: &Compiled) -> Verdict {
    Verdict {
        source_hash,
        transformed_hash: program_hash(&compiled.program),
        funcs,
        policies: compiled.policies.len(),
        regions: compiled.regions.len(),
        passes: compiled.check.passes(),
    }
}

/// One verification document: a flow cache that survives across edits
/// of the same program so re-verification is incremental.
#[derive(Debug, Default)]
pub struct Session {
    cache: FlowCache,
}

impl Session {
    /// A fresh session with a cold cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles and verifies `src` incrementally against this session's
    /// cache. Returns the transform output, its verdict, and how much
    /// analysis the cache saved.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for compile/validation/transform
    /// failures (the serve layer forwards it verbatim to the client).
    pub fn verify(&mut self, src: &str) -> Result<(Compiled, Verdict, IncrementalStats), String> {
        ocelot_telemetry::metrics::VERIFY_INCREMENTAL.incr();
        let p = compile(src)?;
        let (taint, stats) = self.cache.run(&p);
        let (source_hash, funcs) = (program_hash(&p), p.funcs.len());
        let compiled = ocelot_transform_with(p, &taint).map_err(|e| format!("transform: {e}"))?;
        let verdict = verdict_of(source_hash, funcs, &compiled);
        Ok((compiled, verdict, stats))
    }

    /// Functions currently cached (for `stats` surfaces).
    pub fn cached_funcs(&self) -> usize {
        self.cache.len()
    }
}

/// From-scratch verification of `src`: no cache, plain
/// [`TaintAnalysis::run`]. The baseline incremental verdicts must match
/// exactly, and the baseline full re-analysis latency is measured
/// against.
///
/// # Errors
///
/// Same contract as [`Session::verify`].
pub fn full_verify(src: &str) -> Result<(Compiled, Verdict), String> {
    ocelot_telemetry::metrics::VERIFY_FULL.incr();
    let p = compile(src)?;
    let taint = TaintAnalysis::run(&p);
    let (source_hash, funcs) = (program_hash(&p), p.funcs.len());
    let compiled = ocelot_transform_with(p, &taint).map_err(|e| format!("transform: {e}"))?;
    let verdict = verdict_of(source_hash, funcs, &compiled);
    Ok((compiled, verdict))
}

fn compile(src: &str) -> Result<Program, String> {
    let p = ocelot_ir::compile(src).map_err(|e| format!("compile: {e}"))?;
    ocelot_ir::validate(&p).map_err(|e| format!("validate: {e}"))?;
    Ok(p)
}

// ---------------------------------------------------------------------
// The edit-trace workload
// ---------------------------------------------------------------------

/// A deterministic edit-trace workload: one base program of `funcs`
/// worker functions and a stream of one-line single-function edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditTrace {
    /// Worker functions in the base program (besides the fixed sensor
    /// functions and `main`).
    pub funcs: usize,
    /// Edits in the recorded trace.
    pub edits: usize,
    /// Seed driving which function each edit touches and the edited
    /// constant.
    pub seed: u64,
}

/// The driver-default workload shape.
pub const DEFAULT_TRACE: EditTrace = EditTrace {
    funcs: 36,
    edits: 24,
    seed: 11,
};

/// SplitMix64 — the workspace's standard cheap deterministic stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One branch-heavy, loop-heavy worker function. The bodies are big on
/// purpose: per-function analysis cost grows with blocks × locals while
/// parsing stays linear, which is exactly the regime where incremental
/// re-verification pays.
fn worker(i: usize, k: u64) -> String {
    let mut s = String::new();
    s.push_str(&format!("fn work{i}(v) {{\n"));
    s.push_str(&format!("    let acc = v + {k};\n"));
    for j in 0..12 {
        s.push_str(&format!("    let s{j} = in(sense{j});\n"));
    }
    s.push_str("    let t0 = acc + s0;\n");
    for j in 1..20 {
        s.push_str(&format!(
            "    let t{j} = t{} * {} + s{};\n",
            j - 1,
            j + 2,
            j % 12
        ));
    }
    s.push_str("    repeat 6 {\n    repeat 5 {\n");
    for j in 0..20 {
        s.push_str(&format!(
            "        if t{j} > acc {{ acc = acc + t{j}; }} else {{ t{j} = t{j} + s{}; acc = acc - {}; }}\n",
            (j + 1) % 12,
            j + 1
        ));
    }
    s.push_str("        if acc % 2 == 0 { acc = acc / 2; } else { acc = acc * 3 + 1; }\n");
    s.push_str("    }\n    }\n");
    s.push_str("    repeat 4 {\n");
    s.push_str("        if acc > 1000 { acc = acc - 997; }\n");
    s.push_str(&format!("        acc = acc % {};\n", 2048 + i));
    s.push_str("    }\n");
    s.push_str("    return acc;\n}\n");
    s
}

/// The base program for `trace`: `funcs` workers, two annotated sensor
/// readers, and a `main` that feeds sensor data through every worker.
pub fn workload_source(trace: &EditTrace) -> String {
    let mut rng = trace.seed;
    let mut s = String::from("sensor temp;\nsensor pres;\nnv total = 0;\n");
    for j in 0..12 {
        s.push_str(&format!("sensor sense{j};\n"));
    }
    s.push_str("fn read_temp() { let t = in(temp); return t; }\n");
    s.push_str("fn read_pres() { let q = in(pres); return q; }\n");
    for i in 0..trace.funcs {
        s.push_str(&worker(i, splitmix(&mut rng) % 1000));
    }
    s.push_str("fn main() {\n");
    s.push_str("    let a = read_temp();\n    fresh(a);\n");
    s.push_str("    let b = read_pres();\n    consistent(b, 2);\n");
    s.push_str("    let x = a + b;\n");
    for i in 0..trace.funcs {
        s.push_str(&format!("    let r{i} = work{i}(x);\n"));
        s.push_str(&format!("    out(log, r{i});\n"));
    }
    s.push_str("    total = total + a;\n    out(log, a, b, x);\n}\n");
    s
}

/// The source after edit `n` (1-based; edit 0 is the base program).
/// Each edit rewrites the seeded constant on the first line of one
/// worker — a one-line, single-function change.
pub fn edited_source(trace: &EditTrace, n: usize) -> String {
    let mut src = workload_source(trace);
    let mut rng = trace.seed ^ 0xed17;
    for _ in 1..=n {
        let f = (splitmix(&mut rng) as usize) % trace.funcs;
        let k = splitmix(&mut rng) % 1000;
        let open = format!("fn work{f}(v) {{\n");
        let start = src.find(&open).expect("worker present") + open.len();
        let end = start + src[start..].find('\n').expect("line end");
        src.replace_range(start..end, &format!("    let acc = v + {k};"));
    }
    src
}

/// The worker each edit in `1..=edits` touches, in order (for artifact
/// provenance).
pub fn edit_targets(trace: &EditTrace) -> Vec<usize> {
    let mut rng = trace.seed ^ 0xed17;
    (0..trace.edits)
        .map(|_| {
            let f = (splitmix(&mut rng) as usize) % trace.funcs;
            let _ = splitmix(&mut rng);
            f
        })
        .collect()
}

/// One measured edit replay: what changed, how much analysis the cache
/// saved, the verdict hash, and the incremental vs full wall times.
#[derive(Debug, Clone)]
pub struct EditMeasurement {
    /// 1-based edit index.
    pub edit: usize,
    /// Worker index the edit touched.
    pub target: usize,
    /// Cache statistics for the incremental pass.
    pub stats: IncrementalStats,
    /// The incremental verdict (always equal to the full one).
    pub verdict: Verdict,
    /// Incremental re-verification wall time.
    pub incr_ns: u64,
    /// From-scratch re-verification wall time.
    pub full_ns: u64,
}

/// Replays `trace` through a fresh [`Session`], measuring each edit's
/// incremental re-verify against a from-scratch verify and asserting
/// verdict equality along the way.
///
/// # Panics
///
/// Panics if any generated program fails to verify or an incremental
/// verdict ever diverges from the from-scratch one — either is a bug,
/// not a measurement.
pub fn replay_trace(trace: &EditTrace) -> Vec<EditMeasurement> {
    let mut session = Session::new();
    let base = workload_source(trace);
    session.verify(&base).expect("base program verifies");
    let targets = edit_targets(trace);
    let mut out = Vec::with_capacity(trace.edits);
    for n in 1..=trace.edits {
        let src = edited_source(trace, n);
        let t0 = std::time::Instant::now();
        let (_, verdict, stats) = session.verify(&src).expect("edited program verifies");
        let incr_ns = t0.elapsed().as_nanos() as u64;
        let t1 = std::time::Instant::now();
        let (_, full) = full_verify(&src).expect("full verify");
        let full_ns = t1.elapsed().as_nanos() as u64;
        assert_eq!(verdict, full, "incremental verdict diverged at edit {n}");
        out.push(EditMeasurement {
            edit: n,
            target: targets[n - 1],
            stats,
            verdict,
            incr_ns,
            full_ns,
        });
    }
    out
}

/// The shared nearest-rank percentile accessor — generalized into
/// `ocelot-telemetry` alongside the log₂ [`crate::fleet::Histogram`];
/// re-exported here because this module's callers (the serve driver,
/// the incremental-speedup suite) historically found it here.
pub use ocelot_telemetry::percentile;

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: EditTrace = EditTrace {
        funcs: 6,
        edits: 4,
        seed: 3,
    };

    #[test]
    fn incremental_verdicts_match_full_verify_across_a_trace() {
        let mut session = Session::new();
        let (_, v0, s0) = session.verify(&workload_source(&SMALL)).unwrap();
        assert_eq!(s0.analyzed, s0.funcs, "cold cache analyzes everything");
        assert_eq!(v0, full_verify(&workload_source(&SMALL)).unwrap().1);
        for n in 1..=SMALL.edits {
            let src = edited_source(&SMALL, n);
            let (_, v, stats) = session.verify(&src).unwrap();
            assert_eq!(v, full_verify(&src).unwrap().1, "edit {n}");
            // One worker + main recompute; everything else is reused.
            assert!(
                stats.analyzed <= 2,
                "edit {n} re-analyzed {} functions",
                stats.analyzed
            );
            assert!(stats.reused >= stats.funcs - 2);
        }
    }

    #[test]
    fn edits_are_one_line_single_function_changes() {
        let base = workload_source(&SMALL);
        let e1 = edited_source(&SMALL, 1);
        let differing: Vec<_> = base
            .lines()
            .zip(e1.lines())
            .filter(|(a, b)| a != b)
            .collect();
        assert!(differing.len() <= 1, "edit touches at most one line");
        assert_eq!(base.lines().count(), e1.lines().count());
        // Deterministic: same trace, same text.
        assert_eq!(e1, edited_source(&SMALL, 1));
        assert_eq!(edit_targets(&SMALL).len(), SMALL.edits);
    }

    #[test]
    fn verdict_json_round_trips() {
        let (_, v) = full_verify(&workload_source(&SMALL)).unwrap();
        assert!(v.passes);
        assert!(v.policies >= 2, "fresh + consistent derive policies");
        assert_eq!(Verdict::from_json(&v.to_json()), Some(v));
    }

    #[test]
    fn verify_reports_compile_errors_as_one_line_strings() {
        let err = Session::new().verify("fn main( {").unwrap_err();
        assert!(err.starts_with("compile:"), "{err}");
        assert_eq!(err.lines().count(), 1, "{err:?}");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [10, 20, 30, 40];
        assert_eq!(percentile(&xs, 50.0), 20);
        assert_eq!(percentile(&xs, 99.0), 40);
        assert_eq!(percentile(&[7], 50.0), 7);
    }
}
