//! JSON encoding for lint reports (`ocelotc lint --format json`, the
//! serve `lint` op, and the CI round-trip smoke).
//!
//! Lives here rather than in `ocelot-lint` so the linter stays free of
//! serialization concerns and the one strict [`Json`] implementation in
//! the workspace is shared. The encoding is *byte-stable*: a report
//! renders to identical bytes across runs, platforms, and `--jobs`
//! counts, because [`Report::normalize`] fixes the finding order and
//! every field is integral or a string.
//!
//! Schema (`docs/lint.md` documents it for external consumers):
//!
//! ```json
//! {
//!   "schema": "ocelot-lint-report", "version": 1,
//!   "errors": 1, "warnings": 0, "notes": 2,
//!   "findings": [{
//!     "code": "OC001", "severity": "error", "message": "...",
//!     "primary": {"start": 10, "end": 24, "line": 2, "col": 3, "message": "..."},
//!     "related": [{"start": 1, "end": 7, "line": 1, "col": 2, "message": "..."}]
//!   }]
//! }
//! ```

use crate::json::{parse, Json};
use ocelot_ir::span::Span;
use ocelot_lint::{Code, Finding, Label, Report, Severity};

/// Schema identifier carried in every encoded report.
pub const SCHEMA: &str = "ocelot-lint-report";
/// Current schema version.
pub const VERSION: u64 = 1;

/// Encodes a (normalized) report as a [`Json`] value.
pub fn to_json(report: &Report) -> Json {
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        ("version", Json::u64(VERSION)),
        ("errors", Json::u64(report.error_count() as u64)),
        ("warnings", Json::u64(report.warning_count() as u64)),
        ("notes", Json::u64(report.note_count() as u64)),
        (
            "findings",
            Json::Arr(report.findings.iter().map(finding_to_json).collect()),
        ),
    ])
}

/// Renders a report as pretty-printed JSON text (trailing newline).
///
/// # Panics
///
/// Never: the encoding contains no floats, so [`Json::render`] cannot
/// fail.
pub fn render_json(report: &Report) -> String {
    let mut s = to_json(report).render().expect("float-free encoding");
    s.push('\n');
    s
}

fn finding_to_json(f: &Finding) -> Json {
    Json::obj(vec![
        ("code", Json::str(f.code.as_str())),
        ("severity", Json::str(f.severity.as_str())),
        ("message", Json::str(&f.message)),
        ("primary", label_to_json(&f.primary)),
        (
            "related",
            Json::Arr(f.related.iter().map(label_to_json).collect()),
        ),
    ])
}

fn label_to_json(l: &Label) -> Json {
    Json::obj(vec![
        ("start", Json::u64(l.span.start as u64)),
        ("end", Json::u64(l.span.end as u64)),
        ("line", Json::u64(l.line as u64)),
        ("col", Json::u64(l.col as u64)),
        ("message", Json::str(&l.message)),
    ])
}

/// Strictly decodes an encoded report: unknown schema/version, unknown
/// codes, unparseable severities, or missing fields are all errors.
/// `from_json(parse(render_json(r))) == r` for every report the linter
/// produces — the CI smoke asserts exactly that round-trip.
pub fn from_json(text: &str) -> Result<Report, String> {
    let v = parse(text).map_err(|e| e.to_string())?;
    if v.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("not an {SCHEMA} document"));
    }
    if v.get("version").and_then(Json::as_u64) != Some(VERSION) {
        return Err(format!("unsupported {SCHEMA} version"));
    }
    let findings = v
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("missing findings array")?
        .iter()
        .map(finding_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let report = Report { findings };
    // The counts are redundant with the findings; a mismatch means the
    // document was hand-edited or truncated.
    for (key, want) in [
        ("errors", report.error_count()),
        ("warnings", report.warning_count()),
        ("notes", report.note_count()),
    ] {
        if v.get(key).and_then(Json::as_u64) != Some(want as u64) {
            return Err(format!("`{key}` count disagrees with the findings"));
        }
    }
    Ok(report)
}

fn finding_from_json(v: &Json) -> Result<Finding, String> {
    let code_str = v
        .get("code")
        .and_then(Json::as_str)
        .ok_or("finding missing code")?;
    let code = Code::parse(code_str).ok_or_else(|| format!("unknown code `{code_str}`"))?;
    let sev_str = v
        .get("severity")
        .and_then(Json::as_str)
        .ok_or("finding missing severity")?;
    let severity = [Severity::Note, Severity::Warning, Severity::Error]
        .into_iter()
        .find(|s| s.as_str() == sev_str)
        .ok_or_else(|| format!("unknown severity `{sev_str}`"))?;
    let message = v
        .get("message")
        .and_then(Json::as_str)
        .ok_or("finding missing message")?
        .to_string();
    let primary = label_from_json(v.get("primary").ok_or("finding missing primary label")?)?;
    let related = v
        .get("related")
        .and_then(Json::as_arr)
        .ok_or("finding missing related array")?
        .iter()
        .map(label_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Finding {
        code,
        severity,
        message,
        primary,
        related,
    })
}

fn label_from_json(v: &Json) -> Result<Label, String> {
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("label missing `{k}`"))
    };
    let message = v
        .get("message")
        .and_then(Json::as_str)
        .ok_or("label missing message")?
        .to_string();
    Ok(Label {
        span: Span::new(field("start")? as usize, field("end")? as usize),
        line: field("line")? as usize,
        col: field("col")? as usize,
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_lint::{lint_source, LintOptions};

    fn sample() -> Report {
        lint_source(
            "sensor s; fn main() { let x = in(s); fresh(x); out(log, x); out(alarm, x); }",
            &LintOptions {
                window_us: Some(10),
                ..LintOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn round_trips_byte_stably() {
        let r = sample();
        assert!(!r.findings.is_empty());
        let text = render_json(&r);
        let back = from_json(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(render_json(&back), text);
    }

    #[test]
    fn strict_reader_rejects_tampering() {
        let r = sample();
        let text = render_json(&r);
        assert!(from_json(&text.replace("OC001", "OC999")).is_err());
        assert!(from_json(&text.replace("\"error\"", "\"fatal\"")).is_err());
        assert!(from_json(&text.replace("ocelot-lint-report", "other")).is_err());
        // Dropping a finding desynchronizes the counts.
        let v = parse(&text).unwrap();
        if let Json::Obj(mut pairs) = v {
            for (k, val) in &mut pairs {
                if k == "findings" {
                    *val = Json::Arr(vec![]);
                }
            }
            let truncated = Json::Obj(pairs).render().unwrap();
            assert!(from_json(&truncated).is_err());
        }
    }

    #[test]
    fn empty_report_encodes_cleanly() {
        let r = Report::default();
        let back = from_json(&render_json(&r)).unwrap();
        assert_eq!(back, r);
    }
}
