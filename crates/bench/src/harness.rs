//! Shared benchmark harness: calibrated cost models and power supplies,
//! plus runners for the three measurement modes of §7 — continuous
//! power, harvested intermittent power, and pathological failure
//! injection.

use ocelot_apps::Benchmark;
use ocelot_hw::energy::CostModel;
use ocelot_hw::power::{ContinuousPower, HarvestedPower, PowerSupply};
use ocelot_hw::{Capacitor, Harvester};
use ocelot_runtime::machine::{pathological_targets, Machine, RunOutcome};
use ocelot_runtime::model::{build, Built, ExecModel};
use ocelot_runtime::stats::Stats;

/// Step budget per program run — generous; runs are thousands of steps.
pub const MAX_STEPS: u64 = 5_000_000;

/// Per-benchmark cost model: sampling costs differ per sensor class
/// (photoresistor integration is slow, a TPMS pressure cell is fast),
/// which shapes both the runtime mix and the violation windows.
pub fn calibrated_costs(bench: &Benchmark) -> CostModel {
    let c = CostModel::default();
    match bench.name {
        "activity" => c.with_input_cost("accel", 5_000),
        "greenhouse" => c
            .with_input_cost("temp", 1_400)
            .with_input_cost("hum", 1_400),
        "cem" => c.with_input_cost("temp", 4_000),
        "photo" => c.with_input_cost("photo", 3_500),
        "send_photo" => c
            .with_input_cost("photo", 3_500)
            .with_input_cost("rssi", 7_000)
            .with_input_cost("vcap", 7_000),
        "tire" => c
            .with_input_cost("tirepres", 200)
            .with_input_cost("tiretemp", 200)
            .with_input_cost("wheelacc", 200),
        _ => c,
    }
}

/// The evaluation's harvested supply: a small Capybara-style bank
/// (≈26 µJ usable, ≈2.6 µJ checkpoint reserve) charged by a noisy
/// PowerCast-at-10-inches RF source, with boot-voltage jitter so failure
/// points drift across the program like they do on real hardware.
pub fn bench_supply(seed: u64) -> HarvestedPower {
    HarvestedPower::new(
        Capacitor::new(26_000.0, 2_600.0),
        Harvester::powercast_noisy(seed),
    )
    .with_boot_jitter(seed ^ 0x9E37, 0.4)
}

/// Builds `bench` for `model`, choosing the annotated or atomics-only
/// source as appropriate.
///
/// # Panics
///
/// Panics if the benchmark fails to build — covered by `ocelot-apps`
/// tests.
pub fn build_for(bench: &Benchmark, model: ExecModel) -> Built {
    let program = match model {
        ExecModel::AtomicsOnly => bench.atomics_only(),
        _ => bench.annotated(),
    };
    build(program, model).unwrap_or_else(|e| panic!("{} ({:?}): {e}", bench.name, model))
}

/// Wraps every statement of `main` in one region by rewriting the
/// source — §5.3's trivially-correct placement
/// (`startatom; FD(main); endatom`), used as the naive-programmer
/// baseline in the region-size and forward-progress ablations.
///
/// # Panics
///
/// Panics if `src` has no `fn main()` or fails to compile after
/// wrapping (the apps' uniform formatting guarantees both).
pub fn whole_main_variant(src: &str) -> ocelot_ir::Program {
    let marker = "fn main() {";
    let start = src.rfind(marker).expect("main exists") + marker.len();
    let end = src.trim_end().rfind('}').expect("closing brace");
    let mut out = String::new();
    out.push_str(&src[..start]);
    out.push_str("\natomic {\n");
    out.push_str(&src[start..end]);
    out.push_str("}\n");
    out.push_str(&src[end..]);
    ocelot_ir::compile(&out).expect("wrapped source compiles")
}

fn machine<'a>(
    bench: &Benchmark,
    built: &'a Built,
    supply: Box<dyn PowerSupply>,
    seed: u64,
) -> Machine<'a> {
    Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        bench.environment(seed),
        calibrated_costs(bench),
        supply,
    )
}

/// Runs `runs` back-to-back executions on continuous power (Figure 7's
/// configuration) and returns the accumulated stats.
pub fn run_continuous(bench: &Benchmark, built: &Built, runs: u64, seed: u64) -> Stats {
    let mut m = machine(bench, built, Box::new(ContinuousPower), seed);
    for _ in 0..runs {
        let out = m.run_once(MAX_STEPS);
        assert!(
            matches!(out, RunOutcome::Completed { .. }),
            "{} did not complete on continuous power",
            bench.name
        );
    }
    m.stats().clone()
}

/// Runs `runs` executions on harvested intermittent power (Figure 8's
/// configuration).
pub fn run_intermittent(bench: &Benchmark, built: &Built, runs: u64, seed: u64) -> Stats {
    let mut m = machine(bench, built, Box::new(bench_supply(seed)), seed);
    for _ in 0..runs {
        let out = m.run_once(MAX_STEPS);
        assert!(
            matches!(out, RunOutcome::Completed { .. }),
            "{} did not complete on intermittent power",
            bench.name
        );
    }
    m.stats().clone()
}

/// Runs repeatedly for `sim_duration_us` of simulated wall-clock time on
/// harvested power, the Table 2(b) methodology, returning the stats
/// (runs completed, runs violating).
pub fn run_for_duration(
    bench: &Benchmark,
    built: &Built,
    sim_duration_us: u64,
    seed: u64,
) -> Stats {
    let mut m = machine(bench, built, Box::new(bench_supply(seed)), seed);
    m.run_for(sim_duration_us, MAX_STEPS);
    m.stats().clone()
}

/// Runs `runs` executions with pathological failures injected at the
/// policy-critical points (§7.3, Table 2(a)).
pub fn run_pathological(bench: &Benchmark, built: &Built, runs: u64, seed: u64) -> Stats {
    let targets = pathological_targets(&built.policies);
    let mut m = machine(bench, built, Box::new(ContinuousPower), seed).with_injector(targets);
    for _ in 0..runs {
        let out = m.run_once(MAX_STEPS);
        assert!(matches!(out, RunOutcome::Completed { .. }));
    }
    m.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_runs_complete_for_all_models() {
        for b in ocelot_apps::all() {
            for model in [ExecModel::Jit, ExecModel::Ocelot, ExecModel::AtomicsOnly] {
                let built = build_for(&b, model);
                let s = run_continuous(&b, &built, 2, 7);
                assert_eq!(s.runs_completed, 2, "{} {:?}", b.name, model);
                assert_eq!(s.reboots, 0, "continuous power never fails");
            }
        }
    }

    #[test]
    fn ocelot_overhead_is_small_but_nonzero() {
        let b = ocelot_apps::by_name("greenhouse").unwrap();
        let jit = run_continuous(&b, &build_for(&b, ExecModel::Jit), 10, 7);
        let oce = run_continuous(&b, &build_for(&b, ExecModel::Ocelot), 10, 7);
        let ratio = oce.on_cycles as f64 / jit.on_cycles as f64;
        assert!(ratio > 1.0, "regions cost something: {ratio}");
        assert!(ratio < 1.3, "but not much: {ratio}");
    }

    #[test]
    fn pathological_violates_jit_not_ocelot() {
        for b in ocelot_apps::all() {
            let jit = build_for(&b, ExecModel::Jit);
            let s = run_pathological(&b, &jit, 3, 9);
            assert!(
                s.runs_with_violation > 0,
                "{}: JIT must violate under targeted failures",
                b.name
            );
            let oce = build_for(&b, ExecModel::Ocelot);
            let s = run_pathological(&b, &oce, 3, 9);
            assert_eq!(
                s.runs_with_violation, 0,
                "{}: Ocelot must survive targeted failures",
                b.name
            );
        }
    }

    #[test]
    fn intermittent_power_charges_most_of_the_time() {
        let b = ocelot_apps::by_name("photo").unwrap();
        let built = build_for(&b, ExecModel::Ocelot);
        let s = run_intermittent(&b, &built, 5, 3);
        assert!(s.reboots > 0, "harvested power must fail");
        assert!(
            s.off_time_us > s.on_time_us,
            "charging dominates: on={} off={}",
            s.on_time_us,
            s.off_time_us
        );
    }
}
