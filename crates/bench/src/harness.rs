//! Shared benchmark harness: calibrated cost models and power supplies,
//! plus runners for the three measurement modes of §7 — continuous
//! power, harvested intermittent power, and pathological failure
//! injection.
//!
//! The sweep surface is the **cell**: one (benchmark, model, seed,
//! workload) combination. Drivers enumerate their cells up front as a
//! [`CellSpec`] job list and hand it to [`run_cells`], which shards the
//! list across the [`crate::pool`] work-stealing pool; results come
//! back in job-list order, so the persisted artifact is byte-identical
//! at every `--jobs` width.

use crate::pool::{self, Job};
use ocelot_apps::Benchmark;
use ocelot_hw::energy::CostModel;
use ocelot_hw::power::{ContinuousPower, HarvestedPower, PowerSupply};
use ocelot_hw::{Capacitor, Harvester};
use ocelot_runtime::machine::{pathological_targets, Machine, RunOutcome};
use ocelot_runtime::model::{build, Built, ExecModel};
use ocelot_runtime::obs::Obs;
use ocelot_runtime::stats::Stats;
use ocelot_runtime::{ExecBackend, OptLevel};

/// Step budget per program run — generous; runs are thousands of steps.
pub const MAX_STEPS: u64 = 5_000_000;

/// Per-benchmark cost model: sampling costs differ per sensor class
/// (photoresistor integration is slow, a TPMS pressure cell is fast),
/// which shapes both the runtime mix and the violation windows.
pub fn calibrated_costs(bench: &Benchmark) -> CostModel {
    let c = CostModel::default();
    match bench.name {
        "activity" => c.with_input_cost("accel", 5_000),
        "greenhouse" => c
            .with_input_cost("temp", 1_400)
            .with_input_cost("hum", 1_400),
        "cem" => c.with_input_cost("temp", 4_000),
        "photo" => c.with_input_cost("photo", 3_500),
        "send_photo" => c
            .with_input_cost("photo", 3_500)
            .with_input_cost("rssi", 7_000)
            .with_input_cost("vcap", 7_000),
        "tire" => c
            .with_input_cost("tirepres", 200)
            .with_input_cost("tiretemp", 200)
            .with_input_cost("wheelacc", 200),
        "fusion" => c
            .with_input_cost("accel", 3_000)
            .with_input_cost("gyro", 3_000)
            .with_input_cost("mag", 4_500),
        "radiolog" => c
            .with_input_cost("rssi", 7_000)
            .with_input_cost("vcap", 7_000),
        "mlinfer" => c.with_input_cost("mic", 2_500),
        _ => c,
    }
}

/// The evaluation's harvested supply: a small Capybara-style bank
/// (≈26 µJ usable, ≈2.6 µJ checkpoint reserve) charged by a noisy
/// PowerCast-at-10-inches RF source, with boot-voltage jitter so failure
/// points drift across the program like they do on real hardware.
pub fn bench_supply(seed: u64) -> HarvestedPower {
    HarvestedPower::new(
        Capacitor::new(26_000.0, 2_600.0),
        Harvester::powercast_noisy(seed),
    )
    .with_boot_jitter(seed ^ 0x9E37, 0.4)
}

/// Builds `bench` for `model`, choosing the annotated or atomics-only
/// source as appropriate.
///
/// # Panics
///
/// Panics if the benchmark fails to build — covered by `ocelot-apps`
/// tests.
pub fn build_for(bench: &Benchmark, model: ExecModel) -> Built {
    let program = match model {
        ExecModel::AtomicsOnly => bench.atomics_only(),
        _ => bench.annotated(),
    };
    build(program, model).unwrap_or_else(|e| panic!("{} ({:?}): {e}", bench.name, model))
}

/// Wraps every statement of `main` in one region by rewriting the
/// source — §5.3's trivially-correct placement
/// (`startatom; FD(main); endatom`), used as the naive-programmer
/// baseline in the region-size and forward-progress ablations.
///
/// # Panics
///
/// Panics if `src` has no `fn main()` or fails to compile after
/// wrapping (the apps' uniform formatting guarantees both).
pub fn whole_main_variant(src: &str) -> ocelot_ir::Program {
    let marker = "fn main() {";
    let start = src.rfind(marker).expect("main exists") + marker.len();
    let end = src.trim_end().rfind('}').expect("closing brace");
    let mut out = String::new();
    out.push_str(&src[..start]);
    out.push_str("\natomic {\n");
    out.push_str(&src[start..end]);
    out.push_str("}\n");
    out.push_str(&src[end..]);
    ocelot_ir::compile(&out).expect("wrapped source compiles")
}

fn machine<'a>(
    bench: &Benchmark,
    built: &'a Built,
    supply: Box<dyn PowerSupply>,
    seed: u64,
    backend: ExecBackend,
) -> Machine<'a> {
    Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        bench.environment(seed),
        calibrated_costs(bench),
        supply,
    )
    .with_backend(backend)
}

/// Runs `runs` back-to-back executions on continuous power (Figure 7's
/// configuration) and returns the accumulated stats.
pub fn run_continuous(
    bench: &Benchmark,
    built: &Built,
    runs: u64,
    seed: u64,
    backend: ExecBackend,
) -> Stats {
    let mut m = machine(bench, built, Box::new(ContinuousPower), seed, backend);
    for _ in 0..runs {
        let out = m.run_once(MAX_STEPS);
        assert!(
            matches!(out, RunOutcome::Completed { .. }),
            "{} did not complete on continuous power",
            bench.name
        );
    }
    m.stats().clone()
}

/// Runs `runs` executions on harvested intermittent power (Figure 8's
/// configuration).
pub fn run_intermittent(
    bench: &Benchmark,
    built: &Built,
    runs: u64,
    seed: u64,
    backend: ExecBackend,
) -> Stats {
    let mut m = machine(bench, built, Box::new(bench_supply(seed)), seed, backend);
    for _ in 0..runs {
        let out = m.run_once(MAX_STEPS);
        assert!(
            matches!(out, RunOutcome::Completed { .. }),
            "{} did not complete on intermittent power",
            bench.name
        );
    }
    m.stats().clone()
}

/// Runs repeatedly for `sim_duration_us` of simulated wall-clock time on
/// harvested power, the Table 2(b) methodology, returning the stats
/// (runs completed, runs violating).
pub fn run_for_duration(
    bench: &Benchmark,
    built: &Built,
    sim_duration_us: u64,
    seed: u64,
    backend: ExecBackend,
) -> Stats {
    let mut m = machine(bench, built, Box::new(bench_supply(seed)), seed, backend);
    m.run_for(sim_duration_us, MAX_STEPS);
    m.stats().clone()
}

/// Runs `runs` executions with pathological failures injected at the
/// policy-critical points (§7.3, Table 2(a)).
pub fn run_pathological(
    bench: &Benchmark,
    built: &Built,
    runs: u64,
    seed: u64,
    backend: ExecBackend,
) -> Stats {
    let targets = pathological_targets(&built.policies);
    let mut m =
        machine(bench, built, Box::new(ContinuousPower), seed, backend).with_injector(targets);
    for _ in 0..runs {
        let out = m.run_once(MAX_STEPS);
        assert!(matches!(out, RunOutcome::Completed { .. }));
    }
    m.stats().clone()
}

/// How one cell exercises its machine — the four measurement modes the
/// paper's evaluation sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// `runs` back-to-back executions on continuous power (Figure 7);
    /// asserts every run completes.
    Continuous {
        /// Number of program runs.
        runs: u64,
    },
    /// `runs` executions on the harvested bench supply (Figure 8);
    /// asserts every run completes.
    Intermittent {
        /// Number of program runs.
        runs: u64,
    },
    /// `runs` executions on the harvested bench supply without
    /// completion assertions — for comparison models (TICS expiry
    /// restarts) that may legitimately give up mid-run.
    Harvested {
        /// Number of program runs.
        runs: u64,
    },
    /// Run repeatedly for a simulated wall-clock budget (Table 2(b)).
    Duration {
        /// Simulated wall-clock budget in µs.
        sim_us: u64,
    },
    /// `runs` executions with pathological failures injected at the
    /// policy-critical points (Table 2(a)); asserts completion.
    Pathological {
        /// Number of program runs.
        runs: u64,
    },
}

/// One evaluation cell: everything needed to reproduce one measurement
/// independently of every other cell (each cell builds its own program
/// and machine, so cells share no mutable state across workers).
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Benchmark name (resolved via [`ocelot_apps::by_name`]).
    pub bench: String,
    /// Execution model to build.
    pub model: ExecModel,
    /// Environment/harvester seed.
    pub seed: u64,
    /// Measurement mode.
    pub workload: Workload,
    /// When set, attach a TICS-style expiry window of this many µs
    /// (with restart mitigation) to the machine.
    pub expiry_window_us: Option<u64>,
    /// Execution engine the cell's machine runs on. Backends are
    /// observationally identical (the differential suite holds them to
    /// the same stats), so this only changes how fast the cell
    /// simulates — but artifacts record it for provenance.
    pub backend: ExecBackend,
    /// Optimization level of the compiled backend (ignored by the
    /// interpreter). Levels are observationally identical by
    /// construction, so artifacts deliberately do NOT record it: the
    /// same sweep at `--opt 0` and `--opt 2` must produce byte-identical
    /// artifacts.
    pub opt: OptLevel,
    /// When set, the cell's environment and power supply come from this
    /// scenario (an [`ocelot_scenario::parse`] spec, reseeded with the
    /// cell seed) instead of the benchmark's default world and the
    /// standard bench supply. Scenario cells never assert completion —
    /// a harsh regime legitimately starves runs — and
    /// [`Workload::Pathological`] keeps continuous power so the
    /// injector's targeted failures stay the only failures.
    pub scenario: Option<String>,
}

impl CellSpec {
    /// A cell with no expiry window, on the interpreter backend.
    pub fn new(bench: &str, model: ExecModel, seed: u64, workload: Workload) -> Self {
        CellSpec {
            bench: bench.to_string(),
            model,
            seed,
            workload,
            expiry_window_us: None,
            backend: ExecBackend::Interp,
            opt: OptLevel::from_env(),
            scenario: None,
        }
    }

    /// Selects the execution backend (builder-style).
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the compiled backend's optimization level
    /// (builder-style; the interpreter ignores it).
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Binds the cell to a named scenario (builder-style).
    pub fn with_scenario(mut self, scenario: &str) -> Self {
        self.scenario = Some(scenario.to_string());
        self
    }
}

/// Everything one cell produced: the accumulated [`Stats`] and the
/// committed observation trace (for `--traces` artifacts and the
/// backend-differential suites).
#[derive(Debug, Clone, PartialEq)]
pub struct CellRun {
    /// Accumulated statistics, as [`run_cell`] returns.
    pub stats: Stats,
    /// The committed [`Obs`] trace of every run of the cell.
    pub trace: Vec<Obs>,
}

/// Runs one cell to completion and returns its stats *and* committed
/// observation trace.
///
/// # Panics
///
/// Panics if the benchmark or scenario name is unknown, the build
/// fails, or an asserting workload fails to complete — the same
/// failures the serial harness helpers raise.
pub fn run_cell_full(spec: &CellSpec) -> CellRun {
    let b = ocelot_apps::by_name(&spec.bench)
        .unwrap_or_else(|| panic!("unknown benchmark `{}`", spec.bench));
    let built = build_for(&b, spec.model);
    let scenario = spec.scenario.as_deref().map(|s| {
        ocelot_scenario::parse(s)
            .unwrap_or_else(|e| panic!("cell scenario: {e}"))
            .reseeded(spec.seed)
    });
    let env = match &scenario {
        Some(sc) => sc.environment(),
        None => b.environment(spec.seed),
    };
    let pathological = matches!(spec.workload, Workload::Pathological { .. });
    let supply: Box<dyn PowerSupply> = if pathological
        || (scenario.is_none() && matches!(spec.workload, Workload::Continuous { .. }))
    {
        Box::new(ContinuousPower)
    } else {
        match &scenario {
            Some(sc) => sc.supply(),
            None => Box::new(bench_supply(spec.seed)),
        }
    };
    // Harvested never asserts; neither do expiry-window comparisons
    // (TICS may give up mid-run) nor scenario cells (a harsh regime may
    // starve runs).
    let assert_complete = spec.expiry_window_us.is_none()
        && scenario.is_none()
        && !matches!(spec.workload, Workload::Harvested { .. });
    let mut m = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        env,
        calibrated_costs(&b),
        supply,
    )
    .with_backend(spec.backend)
    .with_opt(spec.opt);
    if pathological {
        m = m.with_injector(pathological_targets(&built.policies));
    }
    if let Some(w) = spec.expiry_window_us {
        m = m.with_expiry_window(w);
    }
    match spec.workload {
        Workload::Duration { sim_us } => {
            m.run_for(sim_us, MAX_STEPS);
        }
        Workload::Continuous { runs }
        | Workload::Intermittent { runs }
        | Workload::Harvested { runs }
        | Workload::Pathological { runs } => {
            for _ in 0..runs {
                let out = m.run_once(MAX_STEPS);
                if assert_complete {
                    assert!(
                        matches!(out, RunOutcome::Completed { .. }),
                        "{} did not complete under {:?}",
                        spec.bench,
                        spec.workload
                    );
                }
            }
        }
    }
    CellRun {
        stats: m.stats().clone(),
        trace: m.take_trace(),
    }
}

/// Runs one cell to completion and returns its accumulated stats.
///
/// # Panics
///
/// As for [`run_cell_full`].
pub fn run_cell(spec: &CellSpec) -> Stats {
    run_cell_full(spec).stats
}

/// Runs every cell through the work-stealing pool with `jobs` workers
/// and returns the stats in input order (deterministic at any width).
pub fn run_cells(specs: &[CellSpec], jobs: usize) -> Vec<Stats> {
    let work: Vec<Job<'_, Stats>> = specs
        .iter()
        .map(|spec| Box::new(move || run_cell(spec)) as Job<'_, Stats>)
        .collect();
    pool::run_jobs(work, jobs)
}

/// As [`run_cells`], but keeping each cell's observation trace — the
/// `--traces` collection path.
pub fn run_cells_full(specs: &[CellSpec], jobs: usize) -> Vec<CellRun> {
    let work: Vec<Job<'_, CellRun>> = specs
        .iter()
        .map(|spec| Box::new(move || run_cell_full(spec)) as Job<'_, CellRun>)
        .collect();
    pool::run_jobs(work, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_runs_complete_for_all_models() {
        for b in ocelot_apps::all() {
            for model in [ExecModel::Jit, ExecModel::Ocelot, ExecModel::AtomicsOnly] {
                let built = build_for(&b, model);
                let s = run_continuous(&b, &built, 2, 7, ExecBackend::Interp);
                assert_eq!(s.runs_completed, 2, "{} {:?}", b.name, model);
                assert_eq!(s.reboots, 0, "continuous power never fails");
            }
        }
    }

    #[test]
    fn ocelot_overhead_is_small_but_nonzero() {
        let b = ocelot_apps::by_name("greenhouse").unwrap();
        let jit = run_continuous(
            &b,
            &build_for(&b, ExecModel::Jit),
            10,
            7,
            ExecBackend::Interp,
        );
        let oce = run_continuous(
            &b,
            &build_for(&b, ExecModel::Ocelot),
            10,
            7,
            ExecBackend::Interp,
        );
        let ratio = oce.on_cycles as f64 / jit.on_cycles as f64;
        assert!(ratio > 1.0, "regions cost something: {ratio}");
        assert!(ratio < 1.3, "but not much: {ratio}");
    }

    #[test]
    fn pathological_violates_jit_not_ocelot() {
        for b in ocelot_apps::all() {
            let jit = build_for(&b, ExecModel::Jit);
            let s = run_pathological(&b, &jit, 3, 9, ExecBackend::Interp);
            assert!(
                s.runs_with_violation > 0,
                "{}: JIT must violate under targeted failures",
                b.name
            );
            let oce = build_for(&b, ExecModel::Ocelot);
            let s = run_pathological(&b, &oce, 3, 9, ExecBackend::Interp);
            assert_eq!(
                s.runs_with_violation, 0,
                "{}: Ocelot must survive targeted failures",
                b.name
            );
        }
    }

    #[test]
    fn cells_reproduce_the_serial_helpers() {
        let b = ocelot_apps::by_name("greenhouse").unwrap();
        let built = build_for(&b, ExecModel::Ocelot);
        let serial = run_continuous(&b, &built, 3, 7, ExecBackend::Interp);
        let cell = run_cell(&CellSpec::new(
            "greenhouse",
            ExecModel::Ocelot,
            7,
            Workload::Continuous { runs: 3 },
        ));
        assert_eq!(serial, cell);
        // Harvested (non-asserting) matches run_intermittent when runs
        // do complete.
        let serial = run_intermittent(&b, &built, 2, 7, ExecBackend::Interp);
        let cell = run_cell(&CellSpec::new(
            "greenhouse",
            ExecModel::Ocelot,
            7,
            Workload::Harvested { runs: 2 },
        ));
        assert_eq!(serial, cell);
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        let mut specs = Vec::new();
        for bench in ["greenhouse", "photo"] {
            for model in ExecModel::all() {
                specs.push(CellSpec::new(
                    bench,
                    model,
                    5,
                    Workload::Continuous { runs: 2 },
                ));
            }
        }
        let serial = run_cells(&specs, 1);
        let parallel = run_cells(&specs, 4);
        assert_eq!(serial, parallel, "worker count must not leak into stats");
    }

    #[test]
    fn compiled_backend_cells_match_interpreter_cells() {
        for workload in [
            Workload::Continuous { runs: 2 },
            Workload::Intermittent { runs: 2 },
            Workload::Pathological { runs: 2 },
        ] {
            let spec = CellSpec::new("greenhouse", ExecModel::Ocelot, 7, workload);
            let interp = run_cell(&spec);
            let compiled = run_cell(&spec.clone().with_backend(ExecBackend::Compiled));
            assert_eq!(interp, compiled, "{workload:?}");
        }
    }

    #[test]
    fn extended_apps_pathological_violates_jit_not_ocelot() {
        // The paper's Table 2(a) property must extend to the new
        // workloads: targeted failures at policy-critical points break
        // JIT and never break Ocelot.
        for b in ocelot_apps::extended() {
            let jit = build_for(&b, ExecModel::Jit);
            let s = run_pathological(&b, &jit, 3, 9, ExecBackend::Interp);
            assert!(
                s.runs_with_violation > 0,
                "{}: JIT must violate under targeted failures",
                b.name
            );
            let oce = build_for(&b, ExecModel::Ocelot);
            let s = run_pathological(&b, &oce, 3, 9, ExecBackend::Interp);
            assert_eq!(
                s.runs_with_violation, 0,
                "{}: Ocelot must survive targeted failures",
                b.name
            );
        }
    }

    #[test]
    fn scenario_cells_resolve_env_and_supply_from_the_registry() {
        // A scenario cell must differ from the default-world cell (the
        // whole point of binding one), and re-running it must reproduce
        // stats *and* trace exactly.
        let spec = CellSpec::new(
            "radiolog",
            ExecModel::Ocelot,
            7,
            Workload::Harvested { runs: 2 },
        )
        .with_scenario("brownout");
        let a = run_cell_full(&spec);
        let b = run_cell_full(&spec);
        assert_eq!(a, b, "scenario cells are deterministic");
        let default = run_cell_full(&CellSpec::new(
            "radiolog",
            ExecModel::Ocelot,
            7,
            Workload::Harvested { runs: 2 },
        ));
        assert_ne!(
            a.stats, default.stats,
            "the scenario supply/world must actually be in effect"
        );
        // Seed goes through the scenario: a seeded spec string behaves
        // like the cell seed 9 (spec seed wins over the string's).
        let seeded = run_cell_full(&spec.clone()).stats;
        let via_string = CellSpec {
            scenario: Some("brownout@999".into()),
            ..spec
        };
        assert_eq!(
            run_cell_full(&via_string).stats,
            seeded,
            "cell seed overrides any seed in the scenario spec"
        );
    }

    #[test]
    fn scenario_cells_match_across_backends_in_stats_and_obs() {
        // The acceptance criterion: identical Stats *and* Obs across
        // interp vs compiled, for every extension app under a scenario.
        for bench in ["fusion", "radiolog", "mlinfer"] {
            for scenario in ["rf-noisy", "cold-start"] {
                let spec =
                    CellSpec::new(bench, ExecModel::Ocelot, 5, Workload::Harvested { runs: 2 })
                        .with_scenario(scenario);
                let interp = run_cell_full(&spec);
                let compiled = run_cell_full(&spec.clone().with_backend(ExecBackend::Compiled));
                assert_eq!(
                    interp.stats, compiled.stats,
                    "{bench}/{scenario}: stats diverged across backends"
                );
                assert_eq!(
                    interp.trace, compiled.trace,
                    "{bench}/{scenario}: traces diverged across backends"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_cells_fail_loudly() {
        run_cell(
            &CellSpec::new(
                "fusion",
                ExecModel::Ocelot,
                1,
                Workload::Harvested { runs: 1 },
            )
            .with_scenario("no-such-regime"),
        );
    }

    #[test]
    fn intermittent_power_charges_most_of_the_time() {
        let b = ocelot_apps::by_name("photo").unwrap();
        let built = build_for(&b, ExecModel::Ocelot);
        let s = run_intermittent(&b, &built, 5, 3, ExecBackend::Interp);
        assert!(s.reboots > 0, "harvested power must fail");
        assert!(
            s.off_time_us > s.on_time_us,
            "charging dominates: on={} off={}",
            s.on_time_us,
            s.off_time_us
        );
    }
}
