//! Shared benchmark harness: calibrated cost models and power supplies,
//! plus runners for the three measurement modes of §7 — continuous
//! power, harvested intermittent power, and pathological failure
//! injection.
//!
//! The sweep surface is the **cell**: one (benchmark, model, seed,
//! workload) combination. Drivers enumerate their cells up front as a
//! [`CellSpec`] job list and hand it to [`run_cells`], which shards the
//! list across the [`crate::pool`] work-stealing pool; results come
//! back in job-list order, so the persisted artifact is byte-identical
//! at every `--jobs` width.

use crate::pool::{self, Job};
use ocelot_apps::Benchmark;
use ocelot_hw::energy::CostModel;
use ocelot_hw::power::{ContinuousPower, HarvestedPower, PowerSupply};
use ocelot_hw::{Capacitor, Harvester};
use ocelot_runtime::machine::{pathological_targets, Machine, RunOutcome};
use ocelot_runtime::model::{build, Built, ExecModel};
use ocelot_runtime::stats::Stats;
use ocelot_runtime::ExecBackend;

/// Step budget per program run — generous; runs are thousands of steps.
pub const MAX_STEPS: u64 = 5_000_000;

/// Per-benchmark cost model: sampling costs differ per sensor class
/// (photoresistor integration is slow, a TPMS pressure cell is fast),
/// which shapes both the runtime mix and the violation windows.
pub fn calibrated_costs(bench: &Benchmark) -> CostModel {
    let c = CostModel::default();
    match bench.name {
        "activity" => c.with_input_cost("accel", 5_000),
        "greenhouse" => c
            .with_input_cost("temp", 1_400)
            .with_input_cost("hum", 1_400),
        "cem" => c.with_input_cost("temp", 4_000),
        "photo" => c.with_input_cost("photo", 3_500),
        "send_photo" => c
            .with_input_cost("photo", 3_500)
            .with_input_cost("rssi", 7_000)
            .with_input_cost("vcap", 7_000),
        "tire" => c
            .with_input_cost("tirepres", 200)
            .with_input_cost("tiretemp", 200)
            .with_input_cost("wheelacc", 200),
        _ => c,
    }
}

/// The evaluation's harvested supply: a small Capybara-style bank
/// (≈26 µJ usable, ≈2.6 µJ checkpoint reserve) charged by a noisy
/// PowerCast-at-10-inches RF source, with boot-voltage jitter so failure
/// points drift across the program like they do on real hardware.
pub fn bench_supply(seed: u64) -> HarvestedPower {
    HarvestedPower::new(
        Capacitor::new(26_000.0, 2_600.0),
        Harvester::powercast_noisy(seed),
    )
    .with_boot_jitter(seed ^ 0x9E37, 0.4)
}

/// Builds `bench` for `model`, choosing the annotated or atomics-only
/// source as appropriate.
///
/// # Panics
///
/// Panics if the benchmark fails to build — covered by `ocelot-apps`
/// tests.
pub fn build_for(bench: &Benchmark, model: ExecModel) -> Built {
    let program = match model {
        ExecModel::AtomicsOnly => bench.atomics_only(),
        _ => bench.annotated(),
    };
    build(program, model).unwrap_or_else(|e| panic!("{} ({:?}): {e}", bench.name, model))
}

/// Wraps every statement of `main` in one region by rewriting the
/// source — §5.3's trivially-correct placement
/// (`startatom; FD(main); endatom`), used as the naive-programmer
/// baseline in the region-size and forward-progress ablations.
///
/// # Panics
///
/// Panics if `src` has no `fn main()` or fails to compile after
/// wrapping (the apps' uniform formatting guarantees both).
pub fn whole_main_variant(src: &str) -> ocelot_ir::Program {
    let marker = "fn main() {";
    let start = src.rfind(marker).expect("main exists") + marker.len();
    let end = src.trim_end().rfind('}').expect("closing brace");
    let mut out = String::new();
    out.push_str(&src[..start]);
    out.push_str("\natomic {\n");
    out.push_str(&src[start..end]);
    out.push_str("}\n");
    out.push_str(&src[end..]);
    ocelot_ir::compile(&out).expect("wrapped source compiles")
}

fn machine<'a>(
    bench: &Benchmark,
    built: &'a Built,
    supply: Box<dyn PowerSupply>,
    seed: u64,
    backend: ExecBackend,
) -> Machine<'a> {
    Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        bench.environment(seed),
        calibrated_costs(bench),
        supply,
    )
    .with_backend(backend)
}

/// Runs `runs` back-to-back executions on continuous power (Figure 7's
/// configuration) and returns the accumulated stats.
pub fn run_continuous(
    bench: &Benchmark,
    built: &Built,
    runs: u64,
    seed: u64,
    backend: ExecBackend,
) -> Stats {
    let mut m = machine(bench, built, Box::new(ContinuousPower), seed, backend);
    for _ in 0..runs {
        let out = m.run_once(MAX_STEPS);
        assert!(
            matches!(out, RunOutcome::Completed { .. }),
            "{} did not complete on continuous power",
            bench.name
        );
    }
    m.stats().clone()
}

/// Runs `runs` executions on harvested intermittent power (Figure 8's
/// configuration).
pub fn run_intermittent(
    bench: &Benchmark,
    built: &Built,
    runs: u64,
    seed: u64,
    backend: ExecBackend,
) -> Stats {
    let mut m = machine(bench, built, Box::new(bench_supply(seed)), seed, backend);
    for _ in 0..runs {
        let out = m.run_once(MAX_STEPS);
        assert!(
            matches!(out, RunOutcome::Completed { .. }),
            "{} did not complete on intermittent power",
            bench.name
        );
    }
    m.stats().clone()
}

/// Runs repeatedly for `sim_duration_us` of simulated wall-clock time on
/// harvested power, the Table 2(b) methodology, returning the stats
/// (runs completed, runs violating).
pub fn run_for_duration(
    bench: &Benchmark,
    built: &Built,
    sim_duration_us: u64,
    seed: u64,
    backend: ExecBackend,
) -> Stats {
    let mut m = machine(bench, built, Box::new(bench_supply(seed)), seed, backend);
    m.run_for(sim_duration_us, MAX_STEPS);
    m.stats().clone()
}

/// Runs `runs` executions with pathological failures injected at the
/// policy-critical points (§7.3, Table 2(a)).
pub fn run_pathological(
    bench: &Benchmark,
    built: &Built,
    runs: u64,
    seed: u64,
    backend: ExecBackend,
) -> Stats {
    let targets = pathological_targets(&built.policies);
    let mut m =
        machine(bench, built, Box::new(ContinuousPower), seed, backend).with_injector(targets);
    for _ in 0..runs {
        let out = m.run_once(MAX_STEPS);
        assert!(matches!(out, RunOutcome::Completed { .. }));
    }
    m.stats().clone()
}

/// How one cell exercises its machine — the four measurement modes the
/// paper's evaluation sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// `runs` back-to-back executions on continuous power (Figure 7);
    /// asserts every run completes.
    Continuous {
        /// Number of program runs.
        runs: u64,
    },
    /// `runs` executions on the harvested bench supply (Figure 8);
    /// asserts every run completes.
    Intermittent {
        /// Number of program runs.
        runs: u64,
    },
    /// `runs` executions on the harvested bench supply without
    /// completion assertions — for comparison models (TICS expiry
    /// restarts) that may legitimately give up mid-run.
    Harvested {
        /// Number of program runs.
        runs: u64,
    },
    /// Run repeatedly for a simulated wall-clock budget (Table 2(b)).
    Duration {
        /// Simulated wall-clock budget in µs.
        sim_us: u64,
    },
    /// `runs` executions with pathological failures injected at the
    /// policy-critical points (Table 2(a)); asserts completion.
    Pathological {
        /// Number of program runs.
        runs: u64,
    },
}

/// One evaluation cell: everything needed to reproduce one measurement
/// independently of every other cell (each cell builds its own program
/// and machine, so cells share no mutable state across workers).
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Benchmark name (resolved via [`ocelot_apps::by_name`]).
    pub bench: String,
    /// Execution model to build.
    pub model: ExecModel,
    /// Environment/harvester seed.
    pub seed: u64,
    /// Measurement mode.
    pub workload: Workload,
    /// When set, attach a TICS-style expiry window of this many µs
    /// (with restart mitigation) to the machine.
    pub expiry_window_us: Option<u64>,
    /// Execution engine the cell's machine runs on. Backends are
    /// observationally identical (the differential suite holds them to
    /// the same stats), so this only changes how fast the cell
    /// simulates — but artifacts record it for provenance.
    pub backend: ExecBackend,
}

impl CellSpec {
    /// A cell with no expiry window, on the interpreter backend.
    pub fn new(bench: &str, model: ExecModel, seed: u64, workload: Workload) -> Self {
        CellSpec {
            bench: bench.to_string(),
            model,
            seed,
            workload,
            expiry_window_us: None,
            backend: ExecBackend::Interp,
        }
    }

    /// Selects the execution backend (builder-style).
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// Runs one cell to completion and returns its accumulated stats.
///
/// # Panics
///
/// Panics if the benchmark name is unknown, the build fails, or an
/// asserting workload fails to complete — the same failures the serial
/// harness helpers raise.
pub fn run_cell(spec: &CellSpec) -> Stats {
    let b = ocelot_apps::by_name(&spec.bench)
        .unwrap_or_else(|| panic!("unknown benchmark `{}`", spec.bench));
    let built = build_for(&b, spec.model);
    match spec.workload {
        Workload::Continuous { runs } if spec.expiry_window_us.is_none() => {
            run_continuous(&b, &built, runs, spec.seed, spec.backend)
        }
        Workload::Intermittent { runs } if spec.expiry_window_us.is_none() => {
            run_intermittent(&b, &built, runs, spec.seed, spec.backend)
        }
        Workload::Duration { sim_us } if spec.expiry_window_us.is_none() => {
            run_for_duration(&b, &built, sim_us, spec.seed, spec.backend)
        }
        Workload::Pathological { runs } if spec.expiry_window_us.is_none() => {
            run_pathological(&b, &built, runs, spec.seed, spec.backend)
        }
        // Harvested (never asserts) and any expiry-window variant share
        // the permissive loop.
        Workload::Continuous { runs }
        | Workload::Intermittent { runs }
        | Workload::Harvested { runs } => {
            let supply: Box<dyn PowerSupply> =
                if matches!(spec.workload, Workload::Continuous { .. }) {
                    Box::new(ContinuousPower)
                } else {
                    Box::new(bench_supply(spec.seed))
                };
            let mut m = machine(&b, &built, supply, spec.seed, spec.backend);
            if let Some(w) = spec.expiry_window_us {
                m = m.with_expiry_window(w);
            }
            for _ in 0..runs {
                m.run_once(MAX_STEPS);
            }
            m.stats().clone()
        }
        Workload::Duration { sim_us } => {
            let mut m = machine(
                &b,
                &built,
                Box::new(bench_supply(spec.seed)),
                spec.seed,
                spec.backend,
            );
            if let Some(w) = spec.expiry_window_us {
                m = m.with_expiry_window(w);
            }
            m.run_for(sim_us, MAX_STEPS);
            m.stats().clone()
        }
        Workload::Pathological { runs } => {
            let targets = pathological_targets(&built.policies);
            let mut m = machine(
                &b,
                &built,
                Box::new(ContinuousPower),
                spec.seed,
                spec.backend,
            )
            .with_injector(targets);
            if let Some(w) = spec.expiry_window_us {
                m = m.with_expiry_window(w);
            }
            for _ in 0..runs {
                m.run_once(MAX_STEPS);
            }
            m.stats().clone()
        }
    }
}

/// Runs every cell through the work-stealing pool with `jobs` workers
/// and returns the stats in input order (deterministic at any width).
pub fn run_cells(specs: &[CellSpec], jobs: usize) -> Vec<Stats> {
    let work: Vec<Job<'_, Stats>> = specs
        .iter()
        .map(|spec| Box::new(move || run_cell(spec)) as Job<'_, Stats>)
        .collect();
    pool::run_jobs(work, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_runs_complete_for_all_models() {
        for b in ocelot_apps::all() {
            for model in [ExecModel::Jit, ExecModel::Ocelot, ExecModel::AtomicsOnly] {
                let built = build_for(&b, model);
                let s = run_continuous(&b, &built, 2, 7, ExecBackend::Interp);
                assert_eq!(s.runs_completed, 2, "{} {:?}", b.name, model);
                assert_eq!(s.reboots, 0, "continuous power never fails");
            }
        }
    }

    #[test]
    fn ocelot_overhead_is_small_but_nonzero() {
        let b = ocelot_apps::by_name("greenhouse").unwrap();
        let jit = run_continuous(
            &b,
            &build_for(&b, ExecModel::Jit),
            10,
            7,
            ExecBackend::Interp,
        );
        let oce = run_continuous(
            &b,
            &build_for(&b, ExecModel::Ocelot),
            10,
            7,
            ExecBackend::Interp,
        );
        let ratio = oce.on_cycles as f64 / jit.on_cycles as f64;
        assert!(ratio > 1.0, "regions cost something: {ratio}");
        assert!(ratio < 1.3, "but not much: {ratio}");
    }

    #[test]
    fn pathological_violates_jit_not_ocelot() {
        for b in ocelot_apps::all() {
            let jit = build_for(&b, ExecModel::Jit);
            let s = run_pathological(&b, &jit, 3, 9, ExecBackend::Interp);
            assert!(
                s.runs_with_violation > 0,
                "{}: JIT must violate under targeted failures",
                b.name
            );
            let oce = build_for(&b, ExecModel::Ocelot);
            let s = run_pathological(&b, &oce, 3, 9, ExecBackend::Interp);
            assert_eq!(
                s.runs_with_violation, 0,
                "{}: Ocelot must survive targeted failures",
                b.name
            );
        }
    }

    #[test]
    fn cells_reproduce_the_serial_helpers() {
        let b = ocelot_apps::by_name("greenhouse").unwrap();
        let built = build_for(&b, ExecModel::Ocelot);
        let serial = run_continuous(&b, &built, 3, 7, ExecBackend::Interp);
        let cell = run_cell(&CellSpec::new(
            "greenhouse",
            ExecModel::Ocelot,
            7,
            Workload::Continuous { runs: 3 },
        ));
        assert_eq!(serial, cell);
        // Harvested (non-asserting) matches run_intermittent when runs
        // do complete.
        let serial = run_intermittent(&b, &built, 2, 7, ExecBackend::Interp);
        let cell = run_cell(&CellSpec::new(
            "greenhouse",
            ExecModel::Ocelot,
            7,
            Workload::Harvested { runs: 2 },
        ));
        assert_eq!(serial, cell);
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        let mut specs = Vec::new();
        for bench in ["greenhouse", "photo"] {
            for model in ExecModel::all() {
                specs.push(CellSpec::new(
                    bench,
                    model,
                    5,
                    Workload::Continuous { runs: 2 },
                ));
            }
        }
        let serial = run_cells(&specs, 1);
        let parallel = run_cells(&specs, 4);
        assert_eq!(serial, parallel, "worker count must not leak into stats");
    }

    #[test]
    fn compiled_backend_cells_match_interpreter_cells() {
        for workload in [
            Workload::Continuous { runs: 2 },
            Workload::Intermittent { runs: 2 },
            Workload::Pathological { runs: 2 },
        ] {
            let spec = CellSpec::new("greenhouse", ExecModel::Ocelot, 7, workload);
            let interp = run_cell(&spec);
            let compiled = run_cell(&spec.clone().with_backend(ExecBackend::Compiled));
            assert_eq!(interp, compiled, "{workload:?}");
        }
    }

    #[test]
    fn intermittent_power_charges_most_of_the_time() {
        let b = ocelot_apps::by_name("photo").unwrap();
        let built = build_for(&b, ExecModel::Ocelot);
        let s = run_intermittent(&b, &built, 5, 3, ExecBackend::Interp);
        assert!(s.reboots > 0, "harvested power must fail");
        assert!(
            s.off_time_us > s.on_time_us,
            "charging dominates: on={} off={}",
            s.on_time_us,
            s.off_time_us
        );
    }
}
