//! The flag surface shared by every driver binary and by
//! `ocelotc bench`.
//!
//! ```text
//! <driver> [--jobs N] [--out DIR] [--runs N] [--seed N]
//!          [--backend interp|compiled] [--traces] [--replay]
//! ```
//!
//! Default flow: `collect` the sweep on `--jobs` workers, persist the
//! artifact to `<out>/<driver>.json`, then render the table/figure from
//! the artifact. With `--replay`, skip collection entirely and render
//! whatever is on disk — the persisted JSON is the single source of
//! truth either way. `--traces` additionally persists the raw per-cell
//! observation logs to `<out>/<driver>_traces.json` (same versioned
//! envelope; summary appended to the rendered output), and composes
//! with `--replay` to re-summarize the persisted traces without
//! re-simulating.

use crate::artifact::Artifact;
use crate::drivers::{self, Driver, DriverOpts};
use crate::pool;
use ocelot_runtime::{ExecBackend, OptLevel};
use std::path::PathBuf;
use std::process::ExitCode;

/// Directory artifacts land in when `--out` is not given.
pub const DEFAULT_OUT_DIR: &str = "target/bench-results";

/// Parsed driver flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Worker threads (`--jobs`, default: available parallelism).
    pub jobs: usize,
    /// Artifact directory (`--out`, default [`DEFAULT_OUT_DIR`]).
    pub out: PathBuf,
    /// Render from the persisted artifact instead of simulating.
    pub replay: bool,
    /// Scale override (`--runs`; seconds for duration-based drivers).
    pub runs: Option<u64>,
    /// Seed override (`--seed`).
    pub seed: Option<u64>,
    /// Execution backend for simulated cells (`--backend`, default
    /// `interp`).
    pub backend: ExecBackend,
    /// Middle-end optimization level for the compiled backend
    /// (`--opt 0|1|2`, default `2`; ignored by the interpreter, which
    /// is always the unoptimized oracle).
    pub opt: OptLevel,
    /// Persist (or, with `--replay`, re-render) raw observation traces.
    pub traces: bool,
    /// `--help` was requested.
    pub help: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            jobs: pool::default_jobs(),
            out: PathBuf::from(DEFAULT_OUT_DIR),
            replay: false,
            runs: None,
            seed: None,
            backend: ExecBackend::Interp,
            opt: OptLevel::default(),
            traces: false,
            help: false,
        }
    }
}

impl BenchArgs {
    /// Parses the flags (any order, all optional).
    ///
    /// # Errors
    ///
    /// A usage message naming the offending flag or value.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<BenchArgs, String> {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    out.jobs = n;
                }
                "--out" => {
                    out.out = PathBuf::from(it.next().ok_or("--out needs a directory")?);
                }
                "--runs" => {
                    let v = it.next().ok_or("--runs needs a value")?;
                    let n: u64 = v.parse().map_err(|_| format!("bad --runs value `{v}`"))?;
                    if n == 0 {
                        return Err("--runs must be at least 1".into());
                    }
                    out.runs = Some(n);
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = Some(v.parse().map_err(|_| format!("bad --seed value `{v}`"))?);
                }
                "--backend" => {
                    let v = it.next().ok_or("--backend needs `interp` or `compiled`")?;
                    out.backend = ExecBackend::parse(&v)
                        .ok_or_else(|| format!("bad --backend value `{v}` (interp|compiled)"))?;
                }
                "--opt" => {
                    let v = it.next().ok_or("--opt needs `0`, `1` or `2`")?;
                    out.opt = OptLevel::parse(&v)
                        .ok_or_else(|| format!("bad --opt value `{v}` (0|1|2)"))?;
                }
                "--traces" => out.traces = true,
                "--replay" => out.replay = true,
                "--help" | "-h" => out.help = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(out)
    }
}

fn usage(d: &Driver) -> String {
    format!(
        "{} — {}\n\n\
         usage: {} [--jobs N] [--out DIR] [--runs N] [--seed N]\n\
                     [--backend interp|compiled] [--opt 0|1|2]\n\
                     [--traces] [--replay]\n\n\
         --jobs N    worker threads for the sweep (default: all cores)\n\
         --out DIR   artifact directory (default: {DEFAULT_OUT_DIR})\n\
         --runs N    scale override: run count, or simulated seconds for\n\
                     duration-based drivers (default: paper scale; ignored\n\
                     by drivers with no run dimension, e.g. static tables\n\
                     and the fixed samoyed_scaling capacity sweep)\n\
         --seed N    seed override (default: the paper sweep's fixed seed;\n\
                     ignored by drivers that simulate nothing seeded)\n\
         --backend B execution engine for simulated cells: `interp`\n\
                     (default) or `compiled`; results are identical, the\n\
                     compiled engine is faster, and the artifact records\n\
                     which one produced it\n\
         --opt L     middle-end optimization level for the compiled\n\
                     engine: 0 (direct), 1 (const-prop + dead stores) or\n\
                     2 (default; adds taint-free evaluation and check\n\
                     elision); observable results are identical at every\n\
                     level, so artifacts do not record it\n\
         --traces    also persist raw per-cell observation logs to\n\
                     <out>/{}_traces.json (uniform cell sweeps only) and\n\
                     append their summary; with --replay, re-render the\n\
                     persisted traces instead of re-simulating\n\
         --replay    render from <out>/{}.json without re-simulating\n",
        d.name, d.about, d.name, d.name, d.name
    )
}

/// Entry point used by each `src/bin/` wrapper: parses
/// `std::env::args()` and drives `driver_name`.
pub fn main_for(driver_name: &str) -> ExitCode {
    run_driver(driver_name, std::env::args().skip(1))
}

/// Runs one driver with the given (already split) flag list.
pub fn run_driver(driver_name: &str, args: impl IntoIterator<Item = String>) -> ExitCode {
    let Some(d) = drivers::by_name(driver_name) else {
        eprintln!("error: unknown driver `{driver_name}`");
        return ExitCode::from(2);
    };
    let parsed = match BenchArgs::parse(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage(d));
            return ExitCode::from(2);
        }
    };
    if parsed.help {
        print!("{}", usage(d));
        return ExitCode::SUCCESS;
    }
    if parsed.traces && !parsed.replay && d.collect_traced.is_none() {
        eprintln!(
            "error: driver `{}` does not support --traces (its cells are \
             bespoke per-bench jobs, not a uniform sweep)",
            d.name
        );
        return ExitCode::from(2);
    }
    let traces_name = crate::traces::traces_driver_name(d.name);
    let (artifact, trace_artifact) = if parsed.replay {
        let a = match Artifact::load(&parsed.out, d.name) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: cannot replay: {e}");
                return ExitCode::FAILURE;
            }
        };
        let t = if parsed.traces {
            match Artifact::load(&parsed.out, &traces_name) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("error: cannot replay traces: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            None
        };
        (a, t)
    } else {
        let opts = DriverOpts {
            jobs: parsed.jobs,
            runs: parsed.runs,
            seed: parsed.seed,
            backend: parsed.backend,
            opt: parsed.opt,
        };
        let (a, t) = match (parsed.traces, d.collect_traced) {
            (true, Some(traced)) => {
                let (a, t) = traced(&opts);
                (a, Some(t))
            }
            _ => ((d.collect)(&opts), None),
        };
        for artifact in std::iter::once(&a).chain(t.as_ref()) {
            match artifact.save(&parsed.out) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("error: cannot persist artifact: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (a, t)
    };
    match (d.render)(&artifact) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: cannot render artifact: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(t) = trace_artifact {
        match crate::traces::render_traces(&t) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("error: cannot render traces: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Lists every driver with its description (for `ocelotc bench --list`).
pub fn list_drivers() -> String {
    let mut out = String::new();
    for d in drivers::all() {
        out.push_str(&format!("{:22} {}\n", d.name, d.about));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_full_flag_set_parse() {
        let d = BenchArgs::parse(strings(&[])).unwrap();
        assert!(!d.replay);
        assert!(d.jobs >= 1);
        assert_eq!(d.out, PathBuf::from(DEFAULT_OUT_DIR));
        assert_eq!(d.runs, None);

        let a = BenchArgs::parse(strings(&[
            "--jobs",
            "8",
            "--out",
            "/tmp/x",
            "--runs",
            "3",
            "--seed",
            "99",
            "--backend",
            "compiled",
            "--replay",
        ]))
        .unwrap();
        assert_eq!(a.jobs, 8);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert_eq!(a.runs, Some(3));
        assert_eq!(a.seed, Some(99));
        assert_eq!(a.backend, ExecBackend::Compiled);
        assert!(a.replay);
    }

    #[test]
    fn backend_flag_parses_both_engines_and_rejects_junk() {
        assert_eq!(
            BenchArgs::parse(strings(&[])).unwrap().backend,
            ExecBackend::Interp,
            "interpreter is the default"
        );
        for (flag, want) in [
            ("interp", ExecBackend::Interp),
            ("compiled", ExecBackend::Compiled),
        ] {
            let a = BenchArgs::parse(strings(&["--backend", flag])).unwrap();
            assert_eq!(a.backend, want);
        }
        assert!(BenchArgs::parse(strings(&["--backend"])).is_err());
        assert!(BenchArgs::parse(strings(&["--backend", "jit"])).is_err());
    }

    #[test]
    fn opt_flag_parses_all_levels_and_rejects_junk() {
        assert_eq!(
            BenchArgs::parse(strings(&[])).unwrap().opt,
            OptLevel::O2,
            "full optimization is the default"
        );
        for (flag, want) in [
            ("0", OptLevel::O0),
            ("1", OptLevel::O1),
            ("2", OptLevel::O2),
        ] {
            let a = BenchArgs::parse(strings(&["--opt", flag])).unwrap();
            assert_eq!(a.opt, want);
        }
        assert!(BenchArgs::parse(strings(&["--opt"])).is_err());
        assert!(BenchArgs::parse(strings(&["--opt", "3"])).is_err());
        assert!(BenchArgs::parse(strings(&["--opt", "fast"])).is_err());
    }

    #[test]
    fn bad_flags_are_rejected_with_messages() {
        for bad in [
            vec!["--jobs"],
            vec!["--jobs", "zero"],
            vec!["--jobs", "0"],
            vec!["--runs", "0"],
            vec!["--runs", "-1"],
            vec!["--seed", "x"],
            vec!["--out"],
            vec!["--frobnicate"],
        ] {
            assert!(BenchArgs::parse(strings(&bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn driver_listing_names_every_driver() {
        let listing = list_drivers();
        for d in drivers::all() {
            assert!(listing.contains(d.name), "{} missing", d.name);
        }
    }
}
