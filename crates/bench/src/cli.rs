//! The flag surface shared by every driver binary and by
//! `ocelotc bench`.
//!
//! ```text
//! <driver> [--jobs N] [--out DIR] [--runs N] [--seed N]
//!          [--backend interp|compiled] [--traces] [--replay]
//! ```
//!
//! Default flow: `collect` the sweep on `--jobs` workers, persist the
//! artifact to `<out>/<driver>.json`, then render the table/figure from
//! the artifact. With `--replay`, skip collection entirely and render
//! whatever is on disk — the persisted JSON is the single source of
//! truth either way. `--traces` additionally persists the raw per-cell
//! observation logs to `<out>/<driver>_traces.json` (same versioned
//! envelope; summary appended to the rendered output), and composes
//! with `--replay` to re-summarize the persisted traces without
//! re-simulating.

use crate::artifact::Artifact;
use crate::drivers::{self, Driver, DriverOpts};
use crate::json::Json;
use crate::pool;
use ocelot_runtime::{ExecBackend, OptLevel};
use std::path::PathBuf;
use std::process::ExitCode;

/// Directory artifacts land in when `--out` is not given.
pub const DEFAULT_OUT_DIR: &str = "target/bench-results";

/// Parsed driver flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Worker threads (`--jobs`, default: available parallelism).
    pub jobs: usize,
    /// Artifact directory (`--out`, default [`DEFAULT_OUT_DIR`]).
    pub out: PathBuf,
    /// Render from the persisted artifact instead of simulating.
    pub replay: bool,
    /// Scale override (`--runs`; seconds for duration-based drivers).
    pub runs: Option<u64>,
    /// Seed override (`--seed`).
    pub seed: Option<u64>,
    /// Execution backend for simulated cells (`--backend`, default
    /// `interp`).
    pub backend: ExecBackend,
    /// Middle-end optimization level for the compiled backend
    /// (`--opt 0|1|2`, default `2`; ignored by the interpreter, which
    /// is always the unoptimized oracle).
    pub opt: OptLevel,
    /// Persist (or, with `--replay`, re-render) raw observation traces.
    pub traces: bool,
    /// Record telemetry spans and write a Chrome `trace_event` JSON
    /// file here (`--trace-out`). Never touches the artifact.
    pub trace_out: Option<PathBuf>,
    /// Count telemetry metrics and print the sorted snapshot after the
    /// rendered output (`--metrics`). Never touches the artifact.
    pub metrics: bool,
    /// Collect even when the static lint pre-flight proves the driver's
    /// program infeasible under its scenario distribution (`--force`;
    /// fleet driver only — other drivers have no pre-flight).
    pub force: bool,
    /// `--help` was requested.
    pub help: bool,
    /// Which simulation-shaping flags were passed explicitly — replay
    /// cross-checks these against the artifact's recorded config instead
    /// of silently ignoring them.
    pub given: GivenFlags,
}

/// Tracks which simulation-shaping flags appeared on the command line
/// (as opposed to taking their defaults). `--replay` renders recorded
/// results without simulating, so an explicitly-passed flag either has
/// to agree with what the artifact records or is an error — never a
/// silent override.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GivenFlags {
    /// `--jobs` appeared.
    pub jobs: bool,
    /// `--runs` appeared.
    pub runs: bool,
    /// `--seed` appeared.
    pub seed: bool,
    /// `--backend` appeared.
    pub backend: bool,
    /// `--opt` appeared.
    pub opt: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            jobs: pool::default_jobs(),
            out: PathBuf::from(DEFAULT_OUT_DIR),
            replay: false,
            runs: None,
            seed: None,
            backend: ExecBackend::Interp,
            opt: OptLevel::default(),
            traces: false,
            trace_out: None,
            metrics: false,
            force: false,
            help: false,
            given: GivenFlags::default(),
        }
    }
}

impl BenchArgs {
    /// Parses the flags (any order, all optional).
    ///
    /// # Errors
    ///
    /// A usage message naming the offending flag or value.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<BenchArgs, String> {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    out.jobs = n;
                    out.given.jobs = true;
                }
                "--out" => {
                    out.out = PathBuf::from(it.next().ok_or("--out needs a directory")?);
                }
                "--runs" => {
                    let v = it.next().ok_or("--runs needs a value")?;
                    let n: u64 = v.parse().map_err(|_| format!("bad --runs value `{v}`"))?;
                    if n == 0 {
                        return Err("--runs must be at least 1".into());
                    }
                    out.runs = Some(n);
                    out.given.runs = true;
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = Some(v.parse().map_err(|_| format!("bad --seed value `{v}`"))?);
                    out.given.seed = true;
                }
                "--backend" => {
                    let v = it.next().ok_or("--backend needs `interp` or `compiled`")?;
                    out.backend = ExecBackend::parse(&v)
                        .ok_or_else(|| format!("bad --backend value `{v}` (interp|compiled)"))?;
                    out.given.backend = true;
                }
                "--opt" => {
                    let v = it.next().ok_or("--opt needs `0`, `1` or `2`")?;
                    out.opt = OptLevel::parse(&v)
                        .ok_or_else(|| format!("bad --opt value `{v}` (0|1|2)"))?;
                    out.given.opt = true;
                }
                "--traces" => out.traces = true,
                "--trace-out" => {
                    out.trace_out =
                        Some(PathBuf::from(it.next().ok_or("--trace-out needs a path")?));
                }
                "--metrics" => out.metrics = true,
                "--force" => out.force = true,
                "--replay" => out.replay = true,
                "--help" | "-h" => out.help = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(out)
    }
}

fn usage(d: &Driver) -> String {
    format!(
        "{} — {}\n\n\
         usage: {} [--jobs N] [--out DIR] [--runs N] [--seed N]\n\
                     [--backend interp|compiled] [--opt 0|1|2]\n\
                     [--traces] [--replay] [--trace-out PATH] [--metrics]\n\
                     [--force]\n\n\
         --jobs N    worker threads for the sweep (default: all cores)\n\
         --out DIR   artifact directory (default: {DEFAULT_OUT_DIR})\n\
         --runs N    scale override: run count, or simulated seconds for\n\
                     duration-based drivers (default: paper scale; ignored\n\
                     by drivers with no run dimension, e.g. static tables\n\
                     and the fixed samoyed_scaling capacity sweep)\n\
         --seed N    seed override (default: the paper sweep's fixed seed;\n\
                     ignored by drivers that simulate nothing seeded)\n\
         --backend B execution engine for simulated cells: `interp`\n\
                     (default) or `compiled`; results are identical, the\n\
                     compiled engine is faster, and the artifact records\n\
                     which one produced it\n\
         --opt L     middle-end optimization level for the compiled\n\
                     engine: 0 (direct), 1 (const-prop + dead stores) or\n\
                     2 (default; adds taint-free evaluation and check\n\
                     elision); observable results are identical at every\n\
                     level, so artifacts do not record it\n\
         --traces    also persist raw per-cell observation logs to\n\
                     <out>/{}_traces.json (uniform cell sweeps only) and\n\
                     append their summary; with --replay, re-render the\n\
                     persisted traces instead of re-simulating\n\
         --replay    render from <out>/{}.json without re-simulating\n\
         --trace-out P  record pipeline/pool telemetry spans and write them\n\
                     to P as Chrome trace_event JSON (Perfetto-loadable);\n\
                     never touches the artifact\n\
         --metrics   count telemetry metrics and print the sorted snapshot\n\
                     after the rendered output; never touches the artifact\n\
         --force     collect even when the static lint pre-flight proves\n\
                     the program infeasible under the scenario distribution\n\
                     (fleet driver only; see docs/lint.md)\n",
        d.name, d.about, d.name, d.name, d.name
    )
}

/// Cross-checks explicitly-passed simulation flags against a replayed
/// artifact's recorded config. Replay renders recorded results without
/// simulating, so a flag that conflicts with the recording (or that the
/// artifact deliberately does not record, like `--opt` and `--jobs`)
/// is a hard error with a one-line diagnostic naming the file — never
/// a silent override of what is on disk.
///
/// # Errors
///
/// The diagnostic line, ready for `error:` prefixing.
pub fn replay_flag_conflicts(
    parsed: &BenchArgs,
    artifact: &Artifact,
    path: &std::path::Path,
) -> Result<(), String> {
    let path = path.display();
    if parsed.given.backend {
        match artifact.config_get("backend").and_then(Json::as_str) {
            Some(recorded) if recorded != parsed.backend.name() => {
                return Err(format!(
                    "replay of {path}: artifact records backend={recorded} but \
                     --backend {} was given",
                    parsed.backend.name()
                ));
            }
            Some(_) => {}
            None => {
                return Err(format!(
                    "replay of {path}: --backend was given but the artifact does \
                     not record a backend (drop the flag; replay re-renders \
                     recorded results)"
                ));
            }
        }
    }
    if parsed.given.opt {
        return Err(format!(
            "replay of {path}: --opt has no effect on replay (artifacts are \
             opt-level independent by design; drop the flag)"
        ));
    }
    if parsed.given.jobs {
        return Err(format!(
            "replay of {path}: --jobs has no effect on replay (nothing is \
             simulated; drop the flag)"
        ));
    }
    for (flag, given, value) in [
        ("--runs", parsed.given.runs, parsed.runs),
        ("--seed", parsed.given.seed, parsed.seed),
    ] {
        if !given {
            continue;
        }
        let value = value.expect("explicit flag carries a value");
        match artifact
            .config_get(flag.trim_start_matches("--"))
            .and_then(Json::as_u64)
        {
            Some(recorded) if recorded != value => {
                return Err(format!(
                    "replay of {path}: artifact records {}={recorded} but \
                     {flag} {value} was given",
                    flag.trim_start_matches("--")
                ));
            }
            Some(_) => {}
            None => {
                return Err(format!(
                    "replay of {path}: {flag} was given but the artifact does \
                     not record one (drop the flag; replay re-renders recorded \
                     results)"
                ));
            }
        }
    }
    Ok(())
}

/// Entry point used by each `src/bin/` wrapper: parses
/// `std::env::args()` and drives `driver_name`.
pub fn main_for(driver_name: &str) -> ExitCode {
    run_driver(driver_name, std::env::args().skip(1))
}

/// Runs one driver with the given (already split) flag list.
pub fn run_driver(driver_name: &str, args: impl IntoIterator<Item = String>) -> ExitCode {
    let Some(d) = drivers::by_name(driver_name) else {
        eprintln!("error: unknown driver `{driver_name}`");
        return ExitCode::from(2);
    };
    let parsed = match BenchArgs::parse(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage(d));
            return ExitCode::from(2);
        }
    };
    if parsed.help {
        print!("{}", usage(d));
        return ExitCode::SUCCESS;
    }
    ocelot_telemetry::set_tracing(parsed.trace_out.is_some());
    ocelot_telemetry::set_metrics(parsed.metrics);
    if parsed.traces && !parsed.replay && d.collect_traced.is_none() {
        eprintln!(
            "error: driver `{}` does not support --traces (its cells are \
             bespoke per-bench jobs, not a uniform sweep)",
            d.name
        );
        return ExitCode::from(2);
    }
    let traces_name = crate::traces::traces_driver_name(d.name);
    let (artifact, trace_artifact) = if parsed.replay {
        let a = match Artifact::load(&parsed.out, d.name) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: cannot replay: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = Artifact::path_in(&parsed.out, d.name);
        if let Err(msg) = replay_flag_conflicts(&parsed, &a, &path) {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
        let t = if parsed.traces {
            match Artifact::load(&parsed.out, &traces_name) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("error: cannot replay traces: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            None
        };
        (a, t)
    } else {
        // The fleet driver sweeps a fixed app across the whole scenario
        // registry, so it is the one driver whose program can be proven
        // statically infeasible before spending any simulation time.
        if d.name == "fleet" {
            let scenarios: Vec<String> = ocelot_scenario::all()
                .iter()
                .map(|s| s.name.to_string())
                .collect();
            if let Err(msg) = crate::fleet::lint_preflight("tire", &scenarios) {
                eprintln!("{msg}");
                if parsed.force {
                    eprintln!("fleet: --force: sweeping despite lint errors");
                } else {
                    return ExitCode::FAILURE;
                }
            }
        }
        let opts = DriverOpts {
            jobs: parsed.jobs,
            runs: parsed.runs,
            seed: parsed.seed,
            backend: parsed.backend,
            opt: parsed.opt,
        };
        let (a, t) = match (parsed.traces, d.collect_traced) {
            (true, Some(traced)) => {
                let (a, t) = traced(&opts);
                (a, Some(t))
            }
            _ => ((d.collect)(&opts), None),
        };
        for artifact in std::iter::once(&a).chain(t.as_ref()) {
            match artifact.save(&parsed.out) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("error: cannot persist artifact: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (a, t)
    };
    match (d.render)(&artifact) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: cannot render artifact: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(t) = trace_artifact {
        match crate::traces::render_traces(&t) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("error: cannot render traces: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if parsed.metrics {
        print!(
            "\nmetrics:\n{}",
            ocelot_telemetry::metrics::render_snapshot()
        );
    }
    if let Some(tp) = &parsed.trace_out {
        match crate::telem::write_trace(tp) {
            Ok(n) => eprintln!("wrote {} ({n} spans)", tp.display()),
            Err(e) => {
                eprintln!("error: cannot write trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Lists every driver with its description (for `ocelotc bench --list`).
pub fn list_drivers() -> String {
    let mut out = String::new();
    for d in drivers::all() {
        out.push_str(&format!("{:22} {}\n", d.name, d.about));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_full_flag_set_parse() {
        let d = BenchArgs::parse(strings(&[])).unwrap();
        assert!(!d.replay);
        assert!(d.jobs >= 1);
        assert_eq!(d.out, PathBuf::from(DEFAULT_OUT_DIR));
        assert_eq!(d.runs, None);

        let a = BenchArgs::parse(strings(&[
            "--jobs",
            "8",
            "--out",
            "/tmp/x",
            "--runs",
            "3",
            "--seed",
            "99",
            "--backend",
            "compiled",
            "--replay",
        ]))
        .unwrap();
        assert_eq!(a.jobs, 8);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert_eq!(a.runs, Some(3));
        assert_eq!(a.seed, Some(99));
        assert_eq!(a.backend, ExecBackend::Compiled);
        assert!(a.replay);
    }

    #[test]
    fn backend_flag_parses_both_engines_and_rejects_junk() {
        assert_eq!(
            BenchArgs::parse(strings(&[])).unwrap().backend,
            ExecBackend::Interp,
            "interpreter is the default"
        );
        for (flag, want) in [
            ("interp", ExecBackend::Interp),
            ("compiled", ExecBackend::Compiled),
        ] {
            let a = BenchArgs::parse(strings(&["--backend", flag])).unwrap();
            assert_eq!(a.backend, want);
        }
        assert!(BenchArgs::parse(strings(&["--backend"])).is_err());
        assert!(BenchArgs::parse(strings(&["--backend", "jit"])).is_err());
    }

    #[test]
    fn opt_flag_parses_all_levels_and_rejects_junk() {
        assert_eq!(
            BenchArgs::parse(strings(&[])).unwrap().opt,
            OptLevel::O2,
            "full optimization is the default"
        );
        for (flag, want) in [
            ("0", OptLevel::O0),
            ("1", OptLevel::O1),
            ("2", OptLevel::O2),
        ] {
            let a = BenchArgs::parse(strings(&["--opt", flag])).unwrap();
            assert_eq!(a.opt, want);
        }
        assert!(BenchArgs::parse(strings(&["--opt"])).is_err());
        assert!(BenchArgs::parse(strings(&["--opt", "3"])).is_err());
        assert!(BenchArgs::parse(strings(&["--opt", "fast"])).is_err());
    }

    #[test]
    fn bad_flags_are_rejected_with_messages() {
        for bad in [
            vec!["--jobs"],
            vec!["--jobs", "zero"],
            vec!["--jobs", "0"],
            vec!["--runs", "0"],
            vec!["--runs", "-1"],
            vec!["--seed", "x"],
            vec!["--out"],
            vec!["--frobnicate"],
        ] {
            assert!(BenchArgs::parse(strings(&bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn driver_listing_names_every_driver() {
        let listing = list_drivers();
        for d in drivers::all() {
            assert!(listing.contains(d.name), "{} missing", d.name);
        }
    }
}
