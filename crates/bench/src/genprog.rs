//! Scope-correct random `.oc` program generation.
//!
//! Moved out of the differential test so every randomized suite shares
//! one grammar: the backend-differential sweep, the lint determinism
//! proptests, and the lint-vs-`--opt 2` elision cross-validation all
//! draw from the same seeded distribution. The generator emits source
//! from the full statement grammar — locals, globals, arrays, sensors,
//! helpers with by-ref parameters, `repeat`/`while`/`if`, manual
//! `atomic` blocks, `fresh`/`consistent` annotations — so the sweeps
//! reach corners the hand-written apps never hit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scope-correct random program source. Seed-deterministic: the same
/// seed always yields byte-identical source.
pub struct SourceGen {
    rng: StdRng,
    out: String,
    locals: Vec<String>,
    input_locals: Vec<String>,
    next_local: usize,
    stmt_budget: usize,
}

const GLOBALS: [&str; 2] = ["g0", "g1"];
const ARRAY: &str = "arr";
const SENSORS: [&str; 2] = ["s0", "s1"];

impl SourceGen {
    /// Generates one program from `seed`. Every program compiles (the
    /// differential suite treats a compile failure as a generator bug).
    pub fn generate(seed: u64) -> String {
        let mut g = SourceGen {
            rng: StdRng::seed_from_u64(seed),
            out: String::new(),
            locals: Vec::new(),
            input_locals: Vec::new(),
            next_local: 0,
            stmt_budget: 18,
        };
        g.out.push_str("sensor s0; sensor s1;\n");
        g.out.push_str("nv g0 = 3; nv g1 = 0; nv arr[4];\n");
        g.out
            .push_str("fn bump(&dst, v) { *dst = *dst + v; return 0; }\n");
        g.out.push_str("fn grab() { let v = in(s0); return v; }\n");
        // A three-deep call chain ending in a sample: when `deep` is
        // called once the chain is statically fixed (pre-resolved
        // path); called twice or more it becomes data-dependent and
        // exercises the dynamic-chain fallback at depth.
        g.out.push_str("fn leaf() { let v = in(s1); return v; }\n");
        g.out
            .push_str("fn mid() { let v = leaf(); return v + 1; }\n");
        g.out
            .push_str("fn deep() { let v = mid(); return v + 1; }\n");
        g.out.push_str("fn main() {\n");
        let n = g.rng.gen_range(4..10usize);
        for _ in 0..n {
            g.stmt(1, false);
        }
        g.out.push_str("out(log, g0 + g1);\n}\n");
        g.out
    }

    fn fresh_local(&mut self) -> String {
        let name = format!("x{}", self.next_local);
        self.next_local += 1;
        self.locals.push(name.clone());
        name
    }

    fn expr(&mut self, depth: usize) -> String {
        let has_locals = !self.locals.is_empty();
        let roll = self.rng.gen_range(0..10u32);
        match roll {
            0 | 1 => format!("{}", self.rng.gen_range(-3..20i64)),
            2 if has_locals => {
                let i = self.rng.gen_range(0..self.locals.len());
                self.locals[i].clone()
            }
            3 => GLOBALS[self.rng.gen_range(0..GLOBALS.len())].to_string(),
            4 => format!("{ARRAY}[{}]", self.rng.gen_range(-1..6i64)),
            _ if depth >= 3 => format!("{}", self.rng.gen_range(0..9i64)),
            5 => format!("(0 - {})", self.expr(depth + 1)),
            _ => {
                let op = ["+", "-", "*", "/", "%", "<", "==", ">"][self.rng.gen_range(0..8usize)];
                format!("({} {} {})", self.expr(depth + 1), op, self.expr(depth + 1))
            }
        }
    }

    fn block(&mut self, depth: usize, in_atomic: bool) {
        let n = self.rng.gen_range(1..4usize);
        for _ in 0..n {
            self.stmt(depth, in_atomic);
        }
    }

    fn stmt(&mut self, depth: usize, in_atomic: bool) {
        if self.stmt_budget == 0 {
            self.out.push_str("skip;\n");
            return;
        }
        self.stmt_budget -= 1;
        let roll = self.rng.gen_range(0..16u32);
        match roll {
            0 | 1 => {
                let e = self.expr(0);
                let l = self.fresh_local();
                self.out.push_str(&format!("let {l} = {e};\n"));
            }
            2 if !self.locals.is_empty() => {
                let l = self.locals[self.rng.gen_range(0..self.locals.len())].clone();
                let e = self.expr(0);
                self.out.push_str(&format!("{l} = {e};\n"));
            }
            3 => {
                let gl = GLOBALS[self.rng.gen_range(0..GLOBALS.len())];
                let e = self.expr(0);
                self.out.push_str(&format!("{gl} = {e};\n"));
            }
            4 => {
                let (i, e) = (self.expr(1), self.expr(0));
                self.out.push_str(&format!("{ARRAY}[{i}] = {e};\n"));
            }
            5 | 6 => {
                let s = SENSORS[self.rng.gen_range(0..SENSORS.len())];
                let l = self.fresh_local();
                self.out.push_str(&format!("let {l} = in({s});\n"));
                self.input_locals.push(l.clone());
                match self.rng.gen_range(0..3u32) {
                    0 => self.out.push_str(&format!("fresh({l});\n")),
                    1 => self.out.push_str(&format!("consistent({l}, 1);\n")),
                    _ => {}
                }
            }
            7 => {
                let e = self.expr(0);
                self.out.push_str(&format!("out(log, {e});\n"));
            }
            8 if depth < 3 => {
                let k = self.rng.gen_range(0..4u32);
                self.out.push_str(&format!("repeat {k} {{\n"));
                self.block(depth + 1, in_atomic);
                self.out.push_str("}\n");
            }
            9 if depth < 3 => {
                let c = self.expr(1);
                self.out.push_str(&format!("if {c} {{\n"));
                self.block(depth + 1, in_atomic);
                self.out.push_str("} else {\n");
                self.block(depth + 1, in_atomic);
                self.out.push_str("}\n");
            }
            10 if depth < 3 => {
                // Usually terminates: counts a global down; bodies that
                // push it back up just hit the shared step limit, which
                // both backends must agree on anyway.
                let gl = GLOBALS[self.rng.gen_range(0..GLOBALS.len())];
                self.out
                    .push_str(&format!("while {gl} > 0 {{\n{gl} = {gl} - 1;\n"));
                self.block(depth + 1, in_atomic);
                self.out.push_str("}\n");
            }
            11 if depth < 3 && !in_atomic => {
                self.out.push_str("atomic {\n");
                self.block(depth + 1, true);
                self.out.push_str("}\n");
            }
            12 => {
                let l = self.fresh_local();
                self.out.push_str(&format!("let {l} = grab();\n"));
                self.input_locals.push(l);
            }
            13 | 14 => {
                // Deep-stack collection: the chain resolution path
                // (static vs dynamic fallback) depends on how many
                // `deep()` sites this particular program emits.
                let l = self.fresh_local();
                self.out.push_str(&format!("let {l} = deep();\n"));
                self.input_locals.push(l.clone());
                match self.rng.gen_range(0..3u32) {
                    0 => self.out.push_str(&format!("fresh({l});\n")),
                    1 => self.out.push_str(&format!("consistent({l}, 1);\n")),
                    _ => {}
                }
            }
            _ => {
                let target = if !self.locals.is_empty() && self.rng.gen_range(0..2u32) == 0 {
                    self.locals[self.rng.gen_range(0..self.locals.len())].clone()
                } else {
                    GLOBALS[self.rng.gen_range(0..GLOBALS.len())].to_string()
                };
                let (e, l) = (self.expr(1), self.fresh_local());
                self.out
                    .push_str(&format!("let {l} = bump(&{target}, {e});\n"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic_and_compiles() {
        for seed in 0..20u64 {
            let a = SourceGen::generate(seed);
            let b = SourceGen::generate(seed);
            assert_eq!(a, b);
            ocelot_ir::compile(&a)
                .unwrap_or_else(|e| panic!("seed {seed}: generator bug: {e}\n{a}"));
        }
    }
}
