//! Extension experiment: where do the cycles go? Per-category breakdown
//! of active cycles for each benchmark × execution model on harvested
//! power.
//!
//! This decomposes Figure 7/8's aggregate overheads: Ocelot's cost is a
//! thin checkpoint slice; Atomics-only turns checkpointing into a major
//! category on region-heavy apps (cem); JIT pays only at low-power
//! interrupts.

use ocelot_bench::harness::{bench_supply, build_for, calibrated_costs, MAX_STEPS};
use ocelot_bench::report::Table;
use ocelot_runtime::machine::Machine;
use ocelot_runtime::model::ExecModel;

const RUNS: u64 = 25;

fn main() {
    let mut t = Table::new(&[
        "App / Model",
        "compute%",
        "input%",
        "output%",
        "checkpoint%",
        "undo-log%",
        "restore%",
    ]);
    for b in ocelot_apps::all() {
        for model in [ExecModel::Jit, ExecModel::Ocelot, ExecModel::AtomicsOnly] {
            let built = build_for(&b, model);
            let mut m = Machine::new(
                &built.program,
                &built.regions,
                built.policies.clone(),
                b.environment(31),
                calibrated_costs(&b),
                Box::new(bench_supply(31)),
            );
            for _ in 0..RUNS {
                m.run_once(MAX_STEPS);
            }
            let bd = &m.stats().breakdown;
            let total = bd.total().max(1) as f64;
            let pct = |v: u64| format!("{:.1}", v as f64 * 100.0 / total);
            t.row(vec![
                format!("{} / {}", b.name, model.name()),
                pct(bd.compute),
                pct(bd.input),
                pct(bd.output),
                pct(bd.checkpoint),
                pct(bd.undo_log),
                pct(bd.restore),
            ]);
        }
    }
    println!("Extension: active-cycle breakdown on harvested power ({RUNS} runs each)");
    println!("{}", t.render());
    println!(
        "Reading guide: sampling dominates sensing-bound apps; Atomics-only\n\
         inflates the checkpoint column (every region entry snapshots volatile\n\
         state), most dramatically on cem."
    );
}
