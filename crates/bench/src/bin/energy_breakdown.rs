//! Extension experiment: where do the cycles go? Per-category breakdown
//!
//! Thin wrapper over the `energy_breakdown` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("energy_breakdown")
}
