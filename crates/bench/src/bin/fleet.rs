//! Fleet sweep — a fleet of devices running one app across the
//! scenario registry on one shared compiled program, aggregated per
//! scenario.
//!
//! Thin wrapper over the `fleet` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs` (device count), `--seed`,
//! `--backend`, `--replay` (see `--help` or `docs/fleet.md`). The
//! acceptance-scale million-device sweep with throughput fingerprint is
//! `ocelotc fleet`.

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("fleet")
}
