//! Table 4 — lines of code needed to enable correct execution on each
//! benchmark, for Ocelot, TICS, and Samoyed.
//!
//! Paper values (reproduced exactly by the effort model):
//! Ocelot 5/2/7/2/4/9, TICS 20/8/12/8/8/32, Samoyed 18/4/6/12/4/24.

use ocelot_bench::effort::table4;
use ocelot_bench::report::Table;

fn main() {
    let rows = table4();
    let mut t = Table::new(&["Sys", "Act", "CEM", "G-house", "Photo", "S-Photo", "Tire"]);
    let pick = |f: &dyn Fn(&ocelot_bench::effort::EffortRow) -> usize| -> Vec<String> {
        [
            "activity",
            "cem",
            "greenhouse",
            "photo",
            "send_photo",
            "tire",
        ]
        .iter()
        .map(|n| f(rows.iter().find(|r| r.bench == *n).expect("row exists")).to_string())
        .collect()
    };
    let mut row = vec!["Ocelot".to_string()];
    row.extend(pick(&|r| r.ocelot));
    t.row(row);
    let mut row = vec!["TICS".to_string()];
    row.extend(pick(&|r| r.tics));
    t.row(row);
    let mut row = vec!["Samoyed".to_string()];
    row.extend(pick(&|r| r.samoyed));
    t.row(row);
    println!("Table 4: LoC changes to enable correct execution");
    println!("{}", t.render());
    println!(
        "Reasoning burden: Ocelot none; TICS real-time reasoning; Samoyed data-flow reasoning."
    );
}
