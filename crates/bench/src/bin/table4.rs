//! Table 4 — lines of code needed to enable correct execution on each
//!
//! Thin wrapper over the `table4` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("table4")
}
