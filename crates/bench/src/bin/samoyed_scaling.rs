//! Samoyed scaling rules and fallbacks vs Ocelot's fixed minimal regions
//!
//! Thin wrapper over the `samoyed_scaling` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("samoyed_scaling")
}
