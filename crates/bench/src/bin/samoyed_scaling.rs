//! Samoyed scaling rules and fallbacks vs Ocelot's fixed minimal regions
//! (§7.4 Table 3, §9), swept across buffer sizes.
//!
//! The photo benchmark's kernel averages N consistent readings inside
//! one atomic function. As the capacitor shrinks: Ocelot's inferred
//! region (all N readings — the constraint demands it) eventually cannot
//! complete and the program livelocks, which is *correct* (§8: the
//! constraint is fundamentally unsatisfiable on that buffer). A Samoyed
//! programmer instead supplies a scaling rule (halve N) and a software
//! fallback (non-atomic), trading constraint strength for progress.

use ocelot_bench::report::Table;
use ocelot_hw::energy::{Capacitor, CostModel};
use ocelot_hw::harvest::Harvester;
use ocelot_hw::power::{HarvestedPower, PowerSupply};
use ocelot_hw::sensors::{Environment, Signal};
use ocelot_runtime::machine::{Machine, RunOutcome};
use ocelot_runtime::model::{build, ExecModel};
use ocelot_runtime::samoyed::{run_scaled, ScaledApp};

fn photo_src(n: u64) -> String {
    format!(
        r#"
        sensor photo;
        fn sample_avg() {{
            let sum = 0;
            repeat {n} {{
                let v = in(photo);
                consistent(v, 1);
                sum = sum + v;
            }}
            let avg = sum / {n};
            out(uart, avg);
            return avg;
        }}
        fn main() {{
            let avg = sample_avg();
            out(log, avg);
        }}
        "#
    )
}

fn supply_for(capacity_nj: f64) -> Box<dyn PowerSupply> {
    Box::new(HarvestedPower::new(
        Capacitor::new(capacity_nj, 3_000.0),
        Harvester::Constant { power_nw: 1.0 },
    ))
}

fn main() {
    let env = Environment::new().with("photo", Signal::Constant(40));
    let costs = CostModel::default();
    let mut t = Table::new(&[
        "buffer µJ",
        "Ocelot (fixed N=5)",
        "Samoyed outcome",
        "N used",
        "scalings",
        "fallback",
    ]);
    for capacity in [60_000.0, 30_000.0, 18_000.0, 11_000.0, 7_800.0] {
        // Ocelot: the constraint pins all five readings in one region.
        let ocelot = build(
            ocelot_ir::compile(&photo_src(5)).unwrap(),
            ExecModel::Ocelot,
        )
        .unwrap();
        let mut m = Machine::new(
            &ocelot.program,
            &ocelot.regions,
            ocelot.policies.clone(),
            env.clone(),
            costs.clone(),
            supply_for(capacity),
        )
        .with_reexec_limit(12);
        let ocelot_out = match m.run_once(4_000_000) {
            RunOutcome::Completed { violated: false } => "completes, consistent".to_string(),
            RunOutcome::Completed { violated: true } => "completes, VIOLATED".to_string(),
            RunOutcome::Livelock { .. } => "LIVELOCK (unsatisfiable)".to_string(),
            RunOutcome::StepLimit => "step limit".to_string(),
        };

        // Samoyed: same kernel as an atomic function with a scaling rule
        // and fallback.
        let app = ScaledApp {
            source_for: &photo_src,
            initial: 5,
            min: 1,
            atomic_fns: vec!["sample_avg".into()],
        };
        let out = run_scaled(&app, &env, &costs, &|| supply_for(capacity), 12, 4_000_000)
            .expect("samoyed build");
        let outcome = if out.fell_back {
            if out.violations > 0 {
                "fallback, VIOLATED".to_string()
            } else {
                "fallback, lucky".to_string()
            }
        } else if out.completed {
            "completes, consistent".to_string()
        } else {
            "step limit".to_string()
        };
        t.row(vec![
            format!("{:.0}", capacity / 1000.0),
            ocelot_out,
            outcome,
            out.final_param.to_string(),
            out.scalings.to_string(),
            if out.fell_back { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("Samoyed scaling/fallback vs Ocelot fixed regions (photo kernel, §7.4/§9)");
    println!("{}", t.render());
    println!(
        "Ample buffers: both complete atomically. As the buffer shrinks, Samoyed\n\
         degrades the workload (fewer readings averaged) to keep committing\n\
         atomically; Ocelot refuses to weaken the constraint and livelocks —\n\
         signalling that the annotation is unsatisfiable on that hardware. At\n\
         the smallest buffer Samoyed's fallback abandons atomicity entirely and\n\
         the consistency constraint with it."
    );
}
