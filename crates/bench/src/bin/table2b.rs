//! Table 2(b) — violation percentage while running on real (simulated)
//! intermittent power for a fixed wall-clock budget.
//!
//! Paper result to reproduce: Ocelot 0% everywhere; JIT violates in
//! proportion to how much of each program the constraint spans cover —
//! Photo worst (77%), Activity/SendPhoto ≈50%, Greenhouse 24%, Tire 3%,
//! CEM ≈0%.

use ocelot_bench::harness::{build_for, run_for_duration};
use ocelot_bench::report::{pct, Table};
use ocelot_runtime::model::ExecModel;

/// Simulated wall-clock budget per benchmark (the paper used 100 s).
const SIM_US: u64 = 100_000_000;
const SEED: u64 = 17;

fn main() {
    let mut t = Table::new(&[
        "Exec. Model",
        "Activity",
        "CEM",
        "Greenhouse",
        "Photo",
        "Send Photo",
        "Tire",
    ]);
    let mut completions = Vec::new();
    for model in [ExecModel::Ocelot, ExecModel::Jit] {
        let mut cells = vec![model.name().to_string()];
        for name in [
            "activity",
            "cem",
            "greenhouse",
            "photo",
            "send_photo",
            "tire",
        ] {
            let b = ocelot_apps::by_name(name).expect("benchmark exists");
            let s = run_for_duration(&b, &build_for(&b, model), SIM_US, SEED);
            cells.push(pct(s.violating_fraction()));
            if model == ExecModel::Jit {
                completions.push((name, s.runs_completed));
            }
        }
        t.row(cells);
    }
    println!(
        "Table 2(b): Violating % on intermittent power ({}s simulated per cell)",
        SIM_US / 1_000_000
    );
    println!("{}", t.render());
    print!("Completed runs (JIT): ");
    for (name, runs) in completions {
        print!("{name}={runs} ");
    }
    println!();
    println!(
        "Paper: Ocelot 0% everywhere; JIT Activity 50, CEM 0, Greenhouse 24, Photo 77,\n\
         SendPhoto 50, Tire 3 (percent)."
    );
}
