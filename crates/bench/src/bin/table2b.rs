//! Table 2(b) — violation percentage while running on real (simulated)
//!
//! Thin wrapper over the `table2b` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("table2b")
}
