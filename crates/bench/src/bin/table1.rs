//! Table 1 — benchmark characteristics: origin, lines of code, sensors,
//!
//! Thin wrapper over the `table1` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("table1")
}
