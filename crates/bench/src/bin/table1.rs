//! Table 1 — benchmark characteristics: origin, lines of code, sensors,
//! and constraint kinds.

use ocelot_bench::report::Table;

fn main() {
    let mut t = Table::new(&["Origin", "App", "LoC", "Sensors", "Constraints"]);
    for b in ocelot_apps::all() {
        t.row(vec![
            b.origin.to_string(),
            b.name.to_string(),
            b.loc().to_string(),
            b.sensors.join(", "),
            b.constraints.to_string(),
        ]);
    }
    println!("Table 1: Benchmark Characteristics (`*` = simulated sensor)");
    println!("{}", t.render());
}
