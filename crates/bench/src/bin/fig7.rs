//! Figure 7 — continuous-power runtimes of JIT, Atomics-only, and
//!
//! Thin wrapper over the `fig7` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("fig7")
}
