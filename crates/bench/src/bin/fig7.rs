//! Figure 7 — continuous-power runtimes of JIT, Atomics-only, and
//! Ocelot, normalized to JIT.
//!
//! Paper shape to reproduce: JIT fastest everywhere; Ocelot ≈ 1.07×
//! geometric mean; Atomics-only similar except `cem` (≈2.5×); `tire`
//! slightly faster under Atomics-only than under Ocelot.

use ocelot_bench::harness::{build_for, run_continuous};
use ocelot_bench::report::{gmean, ratio, Table};
use ocelot_runtime::model::ExecModel;

const RUNS: u64 = 25;
const SEED: u64 = 42;

fn main() {
    let mut t = Table::new(&["App", "JIT", "Atomics-only", "Ocelot"]);
    let mut atomics_ratios = Vec::new();
    let mut ocelot_ratios = Vec::new();
    for b in ocelot_apps::all() {
        let jit = run_continuous(&b, &build_for(&b, ExecModel::Jit), RUNS, SEED);
        let atomics = run_continuous(&b, &build_for(&b, ExecModel::AtomicsOnly), RUNS, SEED);
        let ocelot = run_continuous(&b, &build_for(&b, ExecModel::Ocelot), RUNS, SEED);
        let base = jit.on_cycles as f64;
        let ra = atomics.on_cycles as f64 / base;
        let ro = ocelot.on_cycles as f64 / base;
        atomics_ratios.push(ra);
        ocelot_ratios.push(ro);
        t.row(vec![b.name.to_string(), ratio(1.0), ratio(ra), ratio(ro)]);
    }
    t.row(vec![
        "gmean".to_string(),
        ratio(1.0),
        ratio(gmean(&atomics_ratios)),
        ratio(gmean(&ocelot_ratios)),
    ]);
    println!("Figure 7: Continuous runtimes normalized to JIT ({RUNS} runs each)");
    println!("{}", t.render());
    println!(
        "Paper shape: Ocelot gmean ~1.07x; Atomics-only ~= Ocelot except cem (~2.5x);\n\
         tire slightly faster under Atomics-only than Ocelot."
    );
}
