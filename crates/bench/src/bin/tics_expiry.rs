//! Extension experiment (§2.3): how well do TICS-style *expiration
//! windows* approximate the paper's freshness definition?
//!
//! For each benchmark we run the JIT build on harvested power, then
//! replay the committed trace under a sweep of expiry windows, scoring
//! each against the era-based ground truth (Definitions 2/3):
//!
//! * **missed** — real freshness violations younger than the window
//!   ("misbehaves without an expiration time violation");
//! * **spurious** — handler trips on perfectly fresh data;
//! * **consistency** — violations no window can express at all.
//!
//! There is no single correct column: the usable window depends on the
//! deployment's charging time, which the programmer cannot know when
//! writing the code. Ocelot's continuous-execution specification needs
//! no such number.

use ocelot_bench::harness::{bench_supply, build_for, calibrated_costs, MAX_STEPS};
use ocelot_bench::report::Table;
use ocelot_runtime::expiry::evaluate_expiry;
use ocelot_runtime::machine::Machine;
use ocelot_runtime::model::ExecModel;

const WINDOWS_US: &[(u64, &str)] = &[
    (500, "0.5ms"),
    (5_000, "5ms"),
    (50_000, "50ms"),
    (500_000, "500ms"),
];

fn main() {
    let mut t = Table::new(&[
        "App",
        "true fresh viol.",
        "cons. (unexpressible)",
        "0.5ms miss/spur",
        "5ms miss/spur",
        "50ms miss/spur",
        "500ms miss/spur",
    ]);
    for b in ocelot_apps::all() {
        let built = build_for(&b, ExecModel::Jit);
        let mut m = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            b.environment(29),
            calibrated_costs(&b),
            Box::new(bench_supply(29)),
        );
        m.run_for(20_000_000, MAX_STEPS);
        let trace = m.take_trace();
        let mut cells = vec![b.name.to_string()];
        let base = evaluate_expiry(m.policies(), &trace, u64::MAX / 2);
        cells.push(base.true_freshness_violations.to_string());
        cells.push(base.consistency_violations_unexpressible.to_string());
        for (w, _) in WINDOWS_US {
            let r = evaluate_expiry(m.policies(), &trace, *w);
            cells.push(format!("{}/{}", r.missed, r.spurious));
        }
        t.row(cells);
    }
    println!(
        "Extension: TICS-style expiry windows vs the freshness definition\n\
         (JIT on harvested power, 20 s per app; miss = real violation under the\n\
         window, spur = handler trip on fresh data)"
    );
    println!("{}", t.render());
    println!(
        "No window column is clean across apps: short windows burn handler runs on\n\
         fresh data, long windows let stale data through, and consistency is\n\
         unexpressible at any width — the paper's §2.3 argument, quantified."
    );
}
