//! Extension experiment (§2.3): how well do TICS-style *expiration
//!
//! Thin wrapper over the `tics_expiry` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("tics_expiry")
}
