//! Table 3 — the strategy/constructs comparison: what each system asks
//!
//! Thin wrapper over the `table3` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("table3")
}
