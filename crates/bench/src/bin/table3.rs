//! Table 3 — the strategy/constructs comparison: what each system asks
//! of the programmer and whether it upholds freshness and consistency.

use ocelot_bench::report::Table;

fn main() {
    let mut t = Table::new(&[
        "System",
        "Constructs",
        "Strategy (LoC model)",
        "Upholds Fresh+Con?",
    ]);
    t.row(vec![
        "Ocelot".into(),
        "Time-constraint types".into(),
        "annotate inputs + constrained data: 1*(inputs) + 1*(constrained)".into(),
        "Correct by construction".into(),
    ]);
    t.row(vec![
        "JIT".into(),
        "None".into(),
        "do nothing: 0".into(),
        "Incorrect".into(),
    ]);
    t.row(vec![
        "Atomics".into(),
        "Atomic regions".into(),
        "annotate inputs + place regions: 1*(inputs) + 2*(regions)".into(),
        "Programmer-dependent".into(),
    ]);
    t.row(vec![
        "TICS".into(),
        "Expiry, alignment, timely branches".into(),
        "3*(fresh) + 5-line handler each; 2*(consistent) + check+handler per set".into(),
        "Real-time freshness only; no temporal consistency".into(),
    ]);
    t.row(vec![
        "Samoyed".into(),
        "Atomic functions".into(),
        "(3 + params) per atomic fn; +3 scaling +5 fallback per loop".into(),
        "Programmer-dependent".into(),
    ]);
    println!("Table 3: Strategy comparison (LoC formulas instantiated in Table 4)");
    println!("{}", t.render());
}
