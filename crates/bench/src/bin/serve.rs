//! Serve latency — incremental re-verification over a recorded
//! edit-trace workload, reported as p50/p99 latency.
//!
//! Thin wrapper over the `serve` driver in `ocelot_bench::drivers`:
//! supports `--out`, `--runs` (edit count), `--seed`, `--replay` (see
//! `--help` or `docs/serve.md`). The long-running enforcement server
//! this measures is `ocelotc serve`.

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("serve")
}
