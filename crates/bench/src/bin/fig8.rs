//! Figure 8 — intermittent runtimes on harvested power, normalized to
//!
//! Thin wrapper over the `fig8` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("fig8")
}
