//! Figure 8 — intermittent runtimes on harvested power, normalized to
//! continuous JIT, split into running time and off/charging time.
//!
//! Paper shape to reproduce: proportions between execution models match
//! Figure 7, and total runtime is dominated by charging.

use ocelot_bench::harness::{build_for, run_continuous, run_intermittent};
use ocelot_bench::report::{gmean, ratio, Table};
use ocelot_runtime::model::ExecModel;

const RUNS: u64 = 25;
const SEED: u64 = 42;

fn main() {
    let mut t = Table::new(&[
        "App",
        "JIT run",
        "JIT total",
        "Atomics run",
        "Atomics total",
        "Ocelot run",
        "Ocelot total",
    ]);
    let mut run_ratios: [Vec<f64>; 3] = Default::default();
    let mut tot_ratios: [Vec<f64>; 3] = Default::default();
    for b in ocelot_apps::all() {
        // Baseline: continuous JIT on-time for the same number of runs.
        let base = run_continuous(&b, &build_for(&b, ExecModel::Jit), RUNS, SEED).on_time_us as f64;
        let mut cells = vec![b.name.to_string()];
        for (i, model) in [ExecModel::Jit, ExecModel::AtomicsOnly, ExecModel::Ocelot]
            .into_iter()
            .enumerate()
        {
            let s = run_intermittent(&b, &build_for(&b, model), RUNS, SEED);
            let run_ratio = s.on_time_us as f64 / base;
            let tot_ratio = s.total_time_us() as f64 / base;
            run_ratios[i].push(run_ratio);
            tot_ratios[i].push(tot_ratio);
            cells.push(ratio(run_ratio));
            cells.push(ratio(tot_ratio));
        }
        t.row(cells);
    }
    let mut g = vec!["gmean".to_string()];
    for i in 0..3 {
        g.push(ratio(gmean(&run_ratios[i])));
        g.push(ratio(gmean(&tot_ratios[i])));
    }
    t.row(g);
    println!(
        "Figure 8: Intermittent runtimes normalized to continuous JIT on-time\n\
         ({RUNS} runs each; 'run' = on-time, 'total' = on + off/charging)"
    );
    println!("{}", t.render());
    println!(
        "Paper shape: same proportions as Figure 7 between models; charging time\n\
         dominates total runtime."
    );
}
