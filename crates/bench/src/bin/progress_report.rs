//! Forward-progress report (§5.3 / §10) for all six benchmarks.
//!
//! For each app, sizes the minimum energy buffer under (a) Ocelot's
//! inferred regions and (b) the trivially-correct whole-`main` region,
//! checks both against the evaluation's Capybara-style bank, and
//! cross-validates the static verdict by running each app on its own
//! minimum buffer.

use ocelot_bench::harness::{build_for, calibrated_costs, whole_main_variant, MAX_STEPS};
use ocelot_bench::report::Table;
use ocelot_hw::power::HarvestedPower;
use ocelot_hw::{Capacitor, Harvester};
use ocelot_progress::ProgressReport;
use ocelot_runtime::machine::{Machine, RunOutcome};
use ocelot_runtime::model::{build, ExecModel};

fn main() {
    let bench_cap = Capacitor::new(26_000.0, 2_600.0);
    let mut t = Table::new(&[
        "App",
        "regions",
        "peak µJ (inferred)",
        "peak µJ (whole-main)",
        "min buffer µJ",
        "on 26 µJ bank",
        "runs on min buffer?",
    ]);
    for b in ocelot_apps::all() {
        let costs = calibrated_costs(&b);
        let inferred = build_for(&b, ExecModel::Ocelot);
        let ri = ProgressReport::analyze(&inferred.program, &inferred.regions, &costs)
            .expect("benchmarks are bounded");
        let whole = build(whole_main_variant(b.annotated_src), ExecModel::AtomicsOnly)
            .expect("whole-main builds");
        let rw = ProgressReport::analyze(&whole.program, &whole.regions, &costs)
            .expect("benchmarks are bounded");

        let min = ri.min_capacitor(0.10);
        let verdict = if ri.feasible_on(&bench_cap) {
            "feasible"
        } else {
            "INFEASIBLE"
        };

        // Cross-validate: the app must actually complete on its own
        // minimum buffer.
        let supply = HarvestedPower::new(
            Capacitor::new(min.capacity_nj(), min.trigger_nj()),
            Harvester::Constant { power_nw: 1.0 },
        );
        let mut m = Machine::new(
            &inferred.program,
            &inferred.regions,
            inferred.policies.clone(),
            b.environment(3),
            costs.clone(),
            Box::new(supply),
        )
        .with_reexec_limit(50);
        let dynamic = match m.run_once(MAX_STEPS) {
            RunOutcome::Completed { .. } => "yes",
            RunOutcome::Livelock { .. } => "NO (livelock)",
            RunOutcome::StepLimit => "NO (step limit)",
        };

        t.row(vec![
            b.name.to_string(),
            ri.regions.len().to_string(),
            format!("{:.2}", ri.peak_demand_nj() / 1000.0),
            format!("{:.2}", rw.peak_demand_nj() / 1000.0),
            format!("{:.2}", min.capacity_nj() / 1000.0),
            verdict.to_string(),
            dynamic.to_string(),
        ]);
    }
    println!("Forward-progress report (§5.3, §10): worst-case region energy vs buffer");
    println!("{}", t.render());
    println!(
        "Every app is feasible on the evaluation bank, and each completes on the\n\
         buffer the analysis sizes for it. Whole-main wrapping always demands at\n\
         least as much buffer as the inferred regions — most dramatically on cem,\n\
         whose ω would back the whole compression table."
    );
}
