//! Forward-progress report (§5.3 / §10) for all six benchmarks.
//!
//! Thin wrapper over the `progress_report` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("progress_report")
}
