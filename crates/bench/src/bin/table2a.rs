//! Table 2(a) — violation percentage with pathological power-failure
//!
//! Thin wrapper over the `table2a` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("table2a")
}
