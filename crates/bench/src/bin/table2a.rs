//! Table 2(a) — violation percentage with pathological power-failure
//! points: failures injected immediately before each use of a fresh
//! variable and between the collections of each consistent set.
//!
//! Paper result to reproduce: Ocelot 0% everywhere, JIT 100% everywhere.

use ocelot_bench::harness::{build_for, run_pathological};
use ocelot_bench::report::{pct, Table};
use ocelot_runtime::model::ExecModel;

const RUNS: u64 = 20;
const SEED: u64 = 11;

fn main() {
    let mut t = Table::new(&[
        "Exec. Model",
        "Activity",
        "CEM",
        "Greenhouse",
        "Photo",
        "Send Photo",
        "Tire",
    ]);
    for model in [ExecModel::Ocelot, ExecModel::Jit] {
        let mut cells = vec![model.name().to_string()];
        for name in [
            "activity",
            "cem",
            "greenhouse",
            "photo",
            "send_photo",
            "tire",
        ] {
            let b = ocelot_apps::by_name(name).expect("benchmark exists");
            let s = run_pathological(&b, &build_for(&b, model), RUNS, SEED);
            cells.push(pct(s.violating_fraction()));
        }
        t.row(cells);
    }
    println!("Table 2(a): Violating % with pathological power-failure points ({RUNS} runs each)");
    println!("{}", t.render());
    println!("Paper: Ocelot 0% everywhere; JIT 100% everywhere.");
}
