//! Ablation for §5.3 / §8: *smallest-region inference* versus naive
//! whole-`main` regions.
//!
//! Ocelot deliberately infers the smallest region satisfying each
//! policy (Figure 10's discussion): a programmer who instead wraps the
//! whole function pays more per power cycle and — on a small energy
//! buffer — may make the region impossible to complete at all.

use ocelot_bench::harness::{build_for, calibrated_costs, whole_main_variant, MAX_STEPS};
use ocelot_bench::report::{ratio, Table};
use ocelot_core::collect_regions;
use ocelot_hw::power::{ContinuousPower, HarvestedPower};
use ocelot_hw::{Capacitor, Harvester};
use ocelot_runtime::machine::{Machine, RunOutcome};
use ocelot_runtime::model::{build, ExecModel};

fn main() {
    let mut t = Table::new(&[
        "App",
        "inferred ω(words)",
        "whole-main ω(words)",
        "runtime vs inferred",
        "completes on small buffer?",
    ]);
    for b in ocelot_apps::all() {
        let inferred = build_for(&b, ExecModel::Ocelot);
        let inferred_omega: usize = inferred
            .regions
            .iter()
            .map(|r| r.omega_words)
            .max()
            .unwrap_or(0);

        let whole = build(whole_main_variant(b.annotated_src), ExecModel::AtomicsOnly)
            .expect("whole-main builds");
        let whole_omega: usize = collect_regions(&whole.program)
            .unwrap()
            .iter()
            .map(|r| r.omega_words)
            .max()
            .unwrap_or(0);

        // Intermittent runtime comparison: a whole-main region re-executes
        // the entire program after every in-region failure, so its cost
        // shows under harvested power, not on the bench supply.
        let run = |built: &ocelot_runtime::model::Built| {
            let mut m = Machine::new(
                &built.program,
                &built.regions,
                built.policies.clone(),
                b.environment(3),
                calibrated_costs(&b),
                Box::new(ocelot_bench::harness::bench_supply(3)),
            );
            for _ in 0..25 {
                m.run_once(MAX_STEPS);
            }
            m.stats().on_cycles
        };
        let r = run(&whole) as f64 / run(&inferred) as f64;

        // Forward progress on a *small* buffer, sized just under one
        // run's worth of energy: the whole-main region cannot fit, the
        // inferred regions can (§5.3). Buffer derived per app from the
        // measured continuous run cost.
        let run_nj = {
            let mut m = Machine::new(
                &inferred.program,
                &inferred.regions,
                inferred.policies.clone(),
                b.environment(3),
                calibrated_costs(&b),
                Box::new(ContinuousPower),
            );
            m.run_once(MAX_STEPS);
            m.stats().on_cycles as f64
        };
        let tiny = || {
            HarvestedPower::new(
                Capacitor::new(run_nj * 0.97, run_nj * 0.03),
                Harvester::powercast_noisy(5),
            )
        };
        let mut m = Machine::new(
            &whole.program,
            &whole.regions,
            whole.policies.clone(),
            b.environment(3),
            calibrated_costs(&b),
            Box::new(tiny()),
        );
        let whole_done = matches!(m.run_once(400_000), RunOutcome::Completed { .. });
        let mut m = Machine::new(
            &inferred.program,
            &inferred.regions,
            inferred.policies.clone(),
            b.environment(3),
            calibrated_costs(&b),
            Box::new(tiny()),
        );
        let inferred_done = matches!(m.run_once(400_000), RunOutcome::Completed { .. });

        t.row(vec![
            b.name.to_string(),
            inferred_omega.to_string(),
            whole_omega.to_string(),
            ratio(r),
            format!(
                "inferred: {} / whole-main: {}",
                if inferred_done { "yes" } else { "NO" },
                if whole_done { "yes" } else { "NO" }
            ),
        ]);
    }
    println!("Ablation: smallest-region inference vs whole-main regions (§5.3, §8)");
    println!("{}", t.render());
    println!(
        "A whole-main region snapshots more state and re-executes more work per\n\
         failure; on a small buffer it may never complete — the inferred region\n\
         is the difference between progress and livelock."
    );
}
