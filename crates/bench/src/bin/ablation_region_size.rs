//! Ablation for §5.3 / §8: *smallest-region inference* versus naive
//!
//! Thin wrapper over the `ablation_region_size` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("ablation_region_size")
}
