//! Dynamic TICS comparison (§2.3, Table 3): real-time expiry windows
//!
//! Thin wrapper over the `tics_dynamic` driver in `ocelot_bench::drivers`:
//! supports `--jobs`, `--out`, `--runs`, `--seed`, `--replay`
//! (see `--help` or `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("tics_dynamic")
}
