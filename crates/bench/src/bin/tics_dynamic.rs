//! Dynamic TICS comparison (§2.3, Table 3): real-time expiry windows
//! with mitigation handlers, executed head-to-head against JIT and
//! Ocelot on harvested power.
//!
//! The static replay (`tics_expiry`) scores windows against recorded
//! traces; this harness runs the *live* TICS model — an RTC that keeps
//! time across failures, a window check at every fresh use, and a
//! restart-to-recollect handler — so mitigation costs (handler runs,
//! wasted re-execution) appear in the measured runtime.

use ocelot_bench::harness::{bench_supply, build_for, calibrated_costs, MAX_STEPS};
use ocelot_bench::report::Table;
use ocelot_runtime::machine::Machine;
use ocelot_runtime::model::{Built, ExecModel};
use ocelot_runtime::stats::Stats;

const RUNS: u64 = 60;

fn drive(b: &ocelot_apps::Benchmark, built: &Built, window_us: Option<u64>, seed: u64) -> Stats {
    let mut m = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        b.environment(seed),
        calibrated_costs(b),
        Box::new(bench_supply(seed)),
    );
    if let Some(w) = window_us {
        m = m.with_expiry_window(w);
    }
    for _ in 0..RUNS {
        m.run_once(MAX_STEPS);
    }
    m.stats().clone()
}

fn main() {
    let mut t = Table::new(&[
        "App",
        "model",
        "fresh viol",
        "cons viol",
        "trips",
        "restarts",
        "on-time vs JIT",
    ]);
    for b in ocelot_apps::all() {
        let jit = build_for(&b, ExecModel::Jit);
        let ocelot = build_for(&b, ExecModel::Ocelot);
        let base = drive(&b, &jit, None, 11);
        let rows: Vec<(&str, Stats)> = vec![
            ("JIT", base.clone()),
            ("TICS 10ms", drive(&b, &jit, Some(10_000), 11)),
            ("TICS 100ms", drive(&b, &jit, Some(100_000), 11)),
            ("Ocelot", drive(&b, &ocelot, None, 11)),
        ];
        for (name, s) in rows {
            t.row(vec![
                b.name.to_string(),
                name.to_string(),
                s.fresh_violations.to_string(),
                s.consistency_violations.to_string(),
                s.expiry_trips.to_string(),
                s.expiry_restarts.to_string(),
                format!("{:.2}x", s.on_time_us as f64 / base.on_time_us as f64),
            ]);
        }
    }
    println!(
        "Dynamic TICS-style expiry vs Ocelot ({} harvested runs per cell, §2.3)",
        RUNS
    );
    println!("{}", t.render());
    println!(
        "Windows trade freshness misses against handler thrash, pay their\n\
         mitigation in re-executed work, and leave every temporal-consistency\n\
         violation in place; Ocelot's regions eliminate both classes at a\n\
         single-digit runtime premium."
    );
}
