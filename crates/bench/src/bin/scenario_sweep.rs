//! Scenario sweep — every extension app under every scenario in the
//! `ocelot-scenario` registry, at several seeds, JIT vs Ocelot.
//!
//! Thin wrapper over the `scenario_sweep` driver in
//! `ocelot_bench::drivers`: supports `--jobs`, `--out`, `--runs`,
//! `--seed`, `--backend`, `--traces`, `--replay` (see `--help` or
//! `docs/bench.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    ocelot_bench::cli::main_for("scenario_sweep")
}
