//! # ocelot-bench
//!
//! The evaluation harness: everything needed to regenerate the paper's
//! figures and tables. One binary per artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — benchmark characteristics |
//! | `fig7` | Figure 7 — continuous-power runtimes (JIT / Atomics-only / Ocelot) |
//! | `fig8` | Figure 8 — intermittent runtimes with charging time |
//! | `table2a` | Table 2(a) — violations under pathological failures |
//! | `table2b` | Table 2(b) — violations under harvested intermittent power |
//! | `table3` | Table 3 — strategy / constructs comparison |
//! | `table4` | Table 4 — LoC changes per benchmark per system |
//! | `ablation_region_size` | §5.3/§8 — inferred vs whole-function regions |
//! | `tics_expiry` | §2.3 — expiration windows vs the freshness definition |
//! | `energy_breakdown` | per-category cycle accounting behind Figures 7/8 |
//!
//! Run them with `cargo run -p ocelot-bench --bin <name> --release`.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod effort;
pub mod harness;
pub mod report;
