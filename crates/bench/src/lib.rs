//! # ocelot-bench
//!
//! The evaluation harness: everything needed to regenerate the paper's
//! figures and tables, in parallel, with persisted results. One binary
//! per artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — benchmark characteristics |
//! | `fig7` | Figure 7 — continuous-power runtimes (JIT / Atomics-only / Ocelot) |
//! | `fig8` | Figure 8 — intermittent runtimes with charging time |
//! | `table2a` | Table 2(a) — violations under pathological failures |
//! | `table2b` | Table 2(b) — violations under harvested intermittent power |
//! | `table3` | Table 3 — strategy / constructs comparison |
//! | `table4` | Table 4 — LoC changes per benchmark per system |
//! | `ablation_region_size` | §5.3/§8 — inferred vs whole-function regions |
//! | `progress_report` | §5.3/§10 — worst-case region energy vs buffer |
//! | `samoyed_scaling` | §7.4/§9 — scaling rules and fallbacks vs fixed regions |
//! | `tics_expiry` | §2.3 — expiration windows vs the freshness definition |
//! | `tics_dynamic` | §2.3 — live expiry windows vs JIT and Ocelot |
//! | `energy_breakdown` | per-category cycle accounting behind Figures 7/8 |
//! | `scenario_sweep` | extension — app × scenario × seed grid over the `ocelot-scenario` library |
//! | `fleet` | extension — fleet-scale device sweep on one shared compiled program |
//! | `serve` | extension — incremental re-verification latency over a recorded edit trace |
//!
//! Run them with `cargo run -p ocelot-bench --bin <name> --release`.
//! Every binary accepts `--jobs N` (shard the sweep across a
//! hand-rolled work-stealing [`pool`]), `--out DIR` (persist a
//! versioned JSON [`artifact`]), `--replay` (re-emit the table/figure
//! purely from the persisted artifact), and — on uniform cell sweeps —
//! `--traces` (persist the raw per-cell observation logs as a
//! replayable [`traces`] artifact) — see `docs/bench.md` and [`cli`].
//! The same drivers are reachable as `ocelotc bench <driver>`.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod artifact;
pub mod cli;
pub mod drivers;
pub mod effort;
pub mod fleet;
pub mod genprog;
pub mod harness;
pub mod json;
pub mod lintfmt;
pub mod pool;
pub mod report;
pub mod telem;
pub mod traces;
pub mod verify;
