//! `fusion` — multi-sensor attitude fusion (extension workload).
//!
//! Fuses accelerometer, gyroscope, and magnetometer samples into one
//! heading/tilt estimate, the classic complementary-filter shape. All
//! three axes must describe the *same* world state (one consistent
//! set): mixing a pre-failure accelerometer sample with post-failure
//! gyro/mag readings fabricates an attitude no IMU ever measured. The
//! derived tilt alarm must additionally be *fresh* — an alarm raised on
//! a minutes-old tilt is exactly the Figure 2 bug on a different
//! sensor.

use crate::{Benchmark, Effort};
use ocelot_hw::sensors::{Environment, Signal};

/// Annotated source (Ocelot / JIT input).
pub const ANNOTATED: &str = r#"
sensor accel;
sensor gyro;
sensor mag;

nv headlog[8];
nv logn = 0;
nv tiltalarms = 0;
nv jumps = 0;
nv calib = 12;

// [IO:fn = read_accel, read_gyro, read_mag]
fn read_accel() {
    let v = in(accel);
    return v;
}

fn read_gyro() {
    let v = in(gyro);
    return v;
}

fn read_mag() {
    let v = in(mag);
    return v;
}

fn iabs(v) {
    if v < 0 {
        return 0 - v;
    }
    return v;
}

fn smooth_headlog() {
    let acc = 0;
    let i = 0;
    repeat 8 {
        acc = acc + headlog[i];
        i = i + 1;
    }
    return acc / 8;
}

fn main() {
    // One fused attitude sample: all three axes from one world state.
    let a = read_accel();
    consistent(a, 1);
    let g = read_gyro();
    consistent(g, 1);
    let m = read_mag();
    consistent(m, 1);
    // Complementary-filter-flavoured fusion.
    let heading = (m * 3 + g) / 4;
    let lean = a - calib;
    let tilt = iabs(lean);
    fresh(tilt);
    if tilt > 35 {
        tiltalarms = tiltalarms + 1;
        out(alarm, tilt, heading);
    }
    headlog[logn % 8] = heading;
    logn = logn + 1;
    let avg = smooth_headlog();
    let delta = heading - avg;
    let swing = iabs(delta);
    if swing > 20 {
        jumps = jumps + 1;
    }
    atomic {
        out(uart, logn, tiltalarms, jumps);
    }
}
"#;

/// Atomics-only variant: the whole sense-and-fuse phase is one manual
/// region (covering the consistent set's three collections and every
/// fresh-tilt use), followed by a logging phase and the UART guard.
pub const ATOMICS_ONLY: &str = r#"
sensor accel;
sensor gyro;
sensor mag;

nv headlog[8];
nv logn = 0;
nv tiltalarms = 0;
nv jumps = 0;
nv calib = 12;

fn read_accel() {
    let v = in(accel);
    return v;
}

fn read_gyro() {
    let v = in(gyro);
    return v;
}

fn read_mag() {
    let v = in(mag);
    return v;
}

fn iabs(v) {
    if v < 0 {
        return 0 - v;
    }
    return v;
}

fn smooth_headlog() {
    let acc = 0;
    let i = 0;
    repeat 8 {
        acc = acc + headlog[i];
        i = i + 1;
    }
    return acc / 8;
}

fn main() {
    atomic {
        let a = read_accel();
        consistent(a, 1);
        let g = read_gyro();
        consistent(g, 1);
        let m = read_mag();
        consistent(m, 1);
        let heading = (m * 3 + g) / 4;
        let lean = a - calib;
        let tilt = iabs(lean);
        fresh(tilt);
        if tilt > 35 {
            tiltalarms = tiltalarms + 1;
            out(alarm, tilt, heading);
        }
    }
    atomic {
        headlog[logn % 8] = heading;
        logn = logn + 1;
        let avg = smooth_headlog();
        let delta = heading - avg;
        let swing = iabs(delta);
        if swing > 20 {
            jumps = jumps + 1;
        }
    }
    atomic {
        out(uart, logn, tiltalarms, jumps);
    }
}
"#;

/// Default sensed world: motion bursts on a shared base, with the gyro
/// channel a correlated affine image of the accelerometer and a slowly
/// drifting magnetometer — built from the scenario combinators.
fn environment(seed: u64) -> Environment {
    let motion = Signal::Burst {
        base: Box::new(Signal::Constant(8)),
        amplitude: 45,
        every_us: 500_000,
        width_us: 140_000,
        seed,
    };
    Environment::new()
        .with(
            "accel",
            Signal::Noisy {
                base: Box::new(motion.clone()),
                amplitude: 4,
                seed,
            },
        )
        .with(
            "gyro",
            Signal::Noisy {
                base: Box::new(Signal::Scaled {
                    base: Box::new(motion),
                    num: 2,
                    den: 3,
                    offset: 5,
                }),
                amplitude: 3,
                seed: seed ^ 0x61E0,
            },
        )
        .with(
            "mag",
            Signal::Noisy {
                base: Box::new(Signal::Clamp {
                    base: Box::new(Signal::Drift {
                        start: 30,
                        rate_per_s: 2,
                    }),
                    lo: 0,
                    hi: 90,
                }),
                amplitude: 2,
                seed: seed ^ 0x3A99,
            },
        )
}

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "fusion",
        origin: "extension",
        sensors: &["accel", "gyro", "mag"],
        constraints: "Con, Fresh",
        annotated_src: ANNOTATED,
        atomics_src: ATOMICS_ONLY,
        effort: Effort {
            input_fns: 3,
            fresh_data: 1,
            consistent_data: 3,
            consistent_sets: 1,
            samoyed_fn_params: &[3],
            samoyed_loops: 1,
            manual_regions: 3,
        },
        env_fn: environment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_core::PolicyKind;

    #[test]
    fn consistent_set_spans_all_three_axes() {
        let c = ocelot_core::ocelot_transform(benchmark().annotated()).unwrap();
        assert!(c.check.passes(), "{:?}", c.check.violations);
        let set = c
            .policies
            .iter()
            .find(|p| matches!(p.kind, PolicyKind::Consistent(1)))
            .unwrap();
        assert_eq!(set.decls.len(), 3, "a, g, m");
        assert_eq!(set.inputs.len(), 3, "three collections");
    }

    #[test]
    fn environment_channels_are_live_and_correlated() {
        let env = benchmark().environment(5);
        assert_eq!(env.channels(), vec!["accel", "gyro", "mag"]);
        // The gyro is an affine image of the accel base: both spike in
        // the same burst windows (compare means in/out of bursts).
        let mut together = 0;
        for t in (0..2_000_000u64).step_by(10_000) {
            let a = env.sample("accel", t);
            let g = env.sample("gyro", t);
            if (a > 30) == (g > 25) {
                together += 1;
            }
        }
        assert!(together > 150, "correlated channels: {together}/200");
    }
}
