//! `cem` — DINO's compressed event monitor: sense a temperature, look
//! the (quantized) value up in a dictionary, and append a compressed
//! code to a log.
//!
//! The freshness constraint is tiny — the sample must be fresh only
//! until it is quantized into a dictionary key — while the dominant work
//! is the dictionary scan and log maintenance. That asymmetry is what
//! makes `cem` the interesting point of Figure 7: Ocelot's inferred
//! region is small and cheap, while an Atomics-only execution pays
//! region entry for every slice of the heavy lookup loop (≈2.5×).

use crate::{Benchmark, Effort};
use ocelot_hw::sensors::{Environment, Signal};

/// Annotated source.
pub const ANNOTATED: &str = r#"
sensor temp;

nv dict[32];
nv dictn = 0;
nv logbuf[32];
nv logn = 0;
nv misses = 0;

// [IO:fn = read_temp]
fn read_temp() {
    let t = in(temp);
    return t;
}

fn find(key) {
    let found = 0 - 1;
    let idx = 0;
    repeat 32 {
        if dict[idx] == key {
            if found < 0 {
                found = idx;
            }
        }
        idx = idx + 1;
    }
    return found;
}

fn insert(key) {
    let slot = dictn % 32;
    dict[slot] = key;
    dictn = dictn + 1;
    return slot;
}

fn main() {
    let t = read_temp();
    fresh(t);
    let key = (t * 3 + 7) % 97;
    let code = find(key);
    if code < 0 {
        let slot = insert(key);
        misses = misses + 1;
        logbuf[logn % 32] = 0 - slot;
    } else {
        logbuf[logn % 32] = code;
    }
    logn = logn + 1;
    atomic {
        out(uart, logn, misses);
    }
}
"#;

/// Atomics-only variant: DINO-style task boundaries slice the whole
/// program — including every iteration of the dictionary scan — into
/// regions, even though none of that code needs re-execution for timing
/// or memory correctness. Each entry pays a volatile checkpoint.
pub const ATOMICS_ONLY: &str = r#"
sensor temp;

nv dict[32];
nv dictn = 0;
nv logbuf[32];
nv logn = 0;
nv misses = 0;

fn read_temp() {
    let t = in(temp);
    return t;
}

fn main() {
    atomic {
        let t = read_temp();
        fresh(t);
        let key = (t * 3 + 7) % 97;
    }
    let found = 0 - 1;
    let idx = 0;
    repeat 16 {
        atomic {
            if dict[idx] == key {
                if found < 0 {
                    found = idx;
                }
            }
            idx = idx + 1;
            if dict[idx] == key {
                if found < 0 {
                    found = idx;
                }
            }
            idx = idx + 1;
        }
    }
    atomic {
        if found < 0 {
            let slot = dictn % 32;
            dict[slot] = key;
            dictn = dictn + 1;
            misses = misses + 1;
            logbuf[logn % 32] = 0 - slot;
        } else {
            logbuf[logn % 32] = found;
        }
        logn = logn + 1;
    }
    atomic {
        out(uart, logn, misses);
    }
}
"#;

fn environment(seed: u64) -> Environment {
    Environment::new().with(
        "temp",
        Signal::Noisy {
            base: Box::new(Signal::Ramp {
                start: 15,
                end: 42,
                t0_us: 0,
                t1_us: 4_000_000,
            }),
            amplitude: 2,
            seed,
        },
    )
}

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "cem",
        origin: "DINO",
        sensors: &["temp*"],
        constraints: "Fresh",
        annotated_src: ANNOTATED,
        atomics_src: ATOMICS_ONLY,
        effort: Effort {
            input_fns: 1,
            fresh_data: 1,
            consistent_data: 0,
            consistent_sets: 0,
            samoyed_fn_params: &[1],
            samoyed_loops: 0,
            manual_regions: 19,
        },
        env_fn: environment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_core::PolicyKind;

    #[test]
    fn fresh_span_is_tiny() {
        let p = benchmark().annotated();
        ocelot_ir::validate(&p).unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let ps = ocelot_core::build_policies(&p, &taint);
        let fresh = ps.iter().find(|p| p.kind == PolicyKind::Fresh).unwrap();
        assert_eq!(
            fresh.uses.len(),
            1,
            "t is used once (quantization); the heavy lookup uses `key`"
        );
    }

    #[test]
    fn ocelot_region_excludes_the_lookup_loop() {
        let c = ocelot_core::ocelot_transform(benchmark().annotated()).unwrap();
        let inferred = c.policy_map.keys().next().copied().unwrap();
        let info = c.region(inferred).unwrap();
        // The small fresh region touches no dictionary state.
        assert!(
            !info.effects.omega().contains("dict"),
            "dict must stay out of the inferred region's ω: {:?}",
            info.effects
        );
    }

    #[test]
    fn atomics_variant_has_many_regions() {
        let p = benchmark().atomics_only();
        let regions = ocelot_core::collect_regions(&p).unwrap();
        assert!(
            regions.len() >= 4,
            "DINO-style slicing produces several regions, got {}",
            regions.len()
        );
    }
}
