//! `activity` — TICS's activity-recognition app: sample an
//! accelerometer window, extract mean/deviation features, and classify
//! against nearest centroids.
//!
//! The window samples must be mutually consistent (a window spanning a
//! power failure mixes two different motion episodes), and the
//! classification must be fresh when the activity counters are updated.

use crate::{Benchmark, Effort};
use ocelot_hw::sensors::Environment;

/// Annotated source.
pub const ANNOTATED: &str = r#"
sensor accel;

nv stillc = 0;
nv movec = 0;
nv cmean[4];
nv cdev[4];
nv inited = 0;
nv winlog[16];
nv winn = 0;

// [IO:fn = read_accel]
fn read_accel() {
    let raw = in(accel);
    return raw;
}

fn iabs(v) {
    if v < 0 {
        return 0 - v;
    }
    return v;
}

fn featurize(a, b, c, &mean, &dev) {
    let m = (a + b + c) / 3;
    let d1 = iabs(a - m);
    let d2 = iabs(b - m);
    let d3 = iabs(c - m);
    let d = d1 + d2 + d3;
    *mean = m;
    *dev = d / 3;
}

fn classify(mean, dev) {
    let best = 0;
    let bestd = 1000000;
    let i = 0;
    repeat 4 {
        let dm = iabs(mean - cmean[i]);
        let dd = iabs(dev - cdev[i]);
        let dist = dm + dd * 2;
        if dist < bestd {
            bestd = dist;
            best = i;
        }
        i = i + 1;
    }
    return best;
}

fn setup() {
    if inited == 0 {
        cmean[0] = 4;
        cdev[0] = 2;
        cmean[1] = 18;
        cdev[1] = 5;
        cmean[2] = 35;
        cdev[2] = 10;
        cmean[3] = 55;
        cdev[3] = 16;
        inited = 1;
    }
    return inited;
}

fn main() {
    let ok = setup();
    let a0 = read_accel();
    consistent(a0, 1);
    let a1 = read_accel();
    consistent(a1, 1);
    let a2 = read_accel();
    consistent(a2, 1);
    let mean = 0;
    let dev = 0;
    featurize(a0, a1, a2, &mean, &dev);
    let cls = classify(mean, dev);
    fresh(cls);
    if cls > 1 {
        movec = movec + 1;
    } else {
        stillc = stillc + 1;
    }
    winlog[winn % 16] = mean;
    winn = winn + 1;
    atomic {
        out(uart, movec, stillc);
    }
}
"#;

/// Atomics-only variant: sensing + featurization in one region,
/// classification + counters in another (mirroring TICS's static
/// checkpoint placement).
pub const ATOMICS_ONLY: &str = r#"
sensor accel;

nv stillc = 0;
nv movec = 0;
nv cmean[4];
nv cdev[4];
nv inited = 0;
nv winlog[16];
nv winn = 0;

fn read_accel() {
    let raw = in(accel);
    return raw;
}

fn iabs(v) {
    if v < 0 {
        return 0 - v;
    }
    return v;
}

fn featurize(a, b, c, &mean, &dev) {
    let m = (a + b + c) / 3;
    let d1 = iabs(a - m);
    let d2 = iabs(b - m);
    let d3 = iabs(c - m);
    let d = d1 + d2 + d3;
    *mean = m;
    *dev = d / 3;
}

fn classify(mean, dev) {
    let best = 0;
    let bestd = 1000000;
    let i = 0;
    repeat 4 {
        let dm = iabs(mean - cmean[i]);
        let dd = iabs(dev - cdev[i]);
        let dist = dm + dd * 2;
        if dist < bestd {
            bestd = dist;
            best = i;
        }
        i = i + 1;
    }
    return best;
}

fn setup() {
    if inited == 0 {
        cmean[0] = 4;
        cdev[0] = 2;
        cmean[1] = 18;
        cdev[1] = 5;
        cmean[2] = 35;
        cdev[2] = 10;
        cmean[3] = 55;
        cdev[3] = 16;
        inited = 1;
    }
    return inited;
}

fn main() {
    atomic {
        let ok = setup();
        let a0 = read_accel();
        consistent(a0, 1);
        let a1 = read_accel();
        consistent(a1, 1);
        let a2 = read_accel();
        consistent(a2, 1);
        let mean = 0;
        let dev = 0;
        featurize(a0, a1, a2, &mean, &dev);
        let cls = classify(mean, dev);
        fresh(cls);
        if cls > 1 {
            movec = movec + 1;
        } else {
            stillc = stillc + 1;
        }
    }
    atomic {
        winlog[winn % 16] = mean;
        winn = winn + 1;
    }
    atomic {
        out(uart, movec, stillc);
    }
}
"#;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "activity",
        origin: "TICS",
        sensors: &["accel*"],
        constraints: "Con, Fresh",
        annotated_src: ANNOTATED,
        atomics_src: ATOMICS_ONLY,
        effort: Effort {
            input_fns: 1,
            fresh_data: 1,
            consistent_data: 3,
            consistent_sets: 1,
            samoyed_fn_params: &[1, 3],
            samoyed_loops: 1,
            manual_regions: 3,
        },
        env_fn: Environment::motion_episodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_core::PolicyKind;

    #[test]
    fn window_samples_have_distinct_chains() {
        // One static input op in read_accel, three calls: the consistent
        // set must hold three distinct provenance chains (Figure 6(b)).
        let p = benchmark().annotated();
        ocelot_ir::validate(&p).unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let ps = ocelot_core::build_policies(&p, &taint);
        let set = ps
            .iter()
            .find(|p| matches!(p.kind, PolicyKind::Consistent(1)))
            .unwrap();
        assert_eq!(set.inputs.len(), 3);
        assert_eq!(set.input_ops().len(), 1, "all chains end at one static op");
    }

    #[test]
    fn fresh_classification_depends_on_all_samples() {
        let p = benchmark().annotated();
        ocelot_ir::validate(&p).unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let ps = ocelot_core::build_policies(&p, &taint);
        let fresh = ps.iter().find(|p| p.kind == PolicyKind::Fresh).unwrap();
        assert_eq!(
            fresh.inputs.len(),
            3,
            "cls is derived (via featurize/classify) from the three samples"
        );
    }

    #[test]
    fn ocelot_regions_overlap_and_flatten() {
        let c = ocelot_core::ocelot_transform(benchmark().annotated()).unwrap();
        assert!(c.check.passes());
        assert_eq!(c.policy_map.len(), 2, "one fresh + one consistent region");
    }
}
