//! `radiolog` — duty-cycled radio send-window (extension workload).
//!
//! A telemetry node that opens its radio only when the link is good
//! *and* the capacitor holds enough charge to finish a burst. The link
//! estimate must be **fresh** (a stale RSSI opens the radio into a
//! channel that faded during recharge) and the RSSI/charge pair must be
//! **temporally consistent** (a pre-failure link with a post-failure
//! charge budgets a window the hardware cannot pay for). Inside the
//! window a bounded loop drains the backlog — a fresh-constrained use
//! inside a `repeat`, which the inferred region must swallow whole.

use crate::{Benchmark, Effort};
use ocelot_hw::sensors::{Environment, Signal};

/// Annotated source (Ocelot / JIT input).
pub const ANNOTATED: &str = r#"
sensor rssi;
sensor vcap;

nv backlog[16];
nv blhead = 0;
nv bllen = 0;
nv sent = 0;
nv windows = 0;
nv skipped = 0;

// [IO:fn = read_rssi, read_vcap]
fn read_rssi() {
    let v = in(rssi);
    return v;
}

fn read_vcap() {
    let v = in(vcap);
    return v;
}

fn mix(a, b) {
    let acc = a * 31 + b;
    repeat 8 {
        if acc % 2 == 1 {
            acc = acc / 2 + 140;
        } else {
            acc = acc / 2;
        }
    }
    return acc % 255;
}

fn main() {
    let link = read_rssi();
    fresh(link);
    consistent(link, 1);
    let charge = read_vcap();
    consistent(charge, 1);
    let budget = (charge - 40) / 10;
    if link > 45 {
        if budget > 0 {
            windows = windows + 1;
            let i = 0;
            repeat 4 {
                if i < budget {
                    if bllen > 0 {
                        let pkt = backlog[blhead % 16];
                        blhead = blhead + 1;
                        bllen = bllen - 1;
                        out(radio, pkt, link);
                        sent = sent + 1;
                    }
                }
                i = i + 1;
            }
        } else {
            skipped = skipped + 1;
        }
    } else {
        skipped = skipped + 1;
    }
    // Enqueue this cycle's telemetry sample for a later window.
    let sample = mix(link, charge);
    backlog[(blhead + bllen) % 16] = sample;
    bllen = bllen + 1;
    if bllen > 16 {
        bllen = 16;
        blhead = blhead + 1;
    }
    atomic {
        out(uart, sent, windows, skipped);
    }
}
"#;

/// Atomics-only variant: the sense-decide-send phase (every fresh use
/// and both collections) is one manual region, the backlog bookkeeping
/// a second, plus the UART guard.
pub const ATOMICS_ONLY: &str = r#"
sensor rssi;
sensor vcap;

nv backlog[16];
nv blhead = 0;
nv bllen = 0;
nv sent = 0;
nv windows = 0;
nv skipped = 0;

fn read_rssi() {
    let v = in(rssi);
    return v;
}

fn read_vcap() {
    let v = in(vcap);
    return v;
}

fn mix(a, b) {
    let acc = a * 31 + b;
    repeat 8 {
        if acc % 2 == 1 {
            acc = acc / 2 + 140;
        } else {
            acc = acc / 2;
        }
    }
    return acc % 255;
}

fn main() {
    atomic {
        let link = read_rssi();
        fresh(link);
        consistent(link, 1);
        let charge = read_vcap();
        consistent(charge, 1);
        let budget = (charge - 40) / 10;
        if link > 45 {
            if budget > 0 {
                windows = windows + 1;
                let i = 0;
                repeat 4 {
                    if i < budget {
                        if bllen > 0 {
                            let pkt = backlog[blhead % 16];
                            blhead = blhead + 1;
                            bllen = bllen - 1;
                            out(radio, pkt, link);
                            sent = sent + 1;
                        }
                    }
                    i = i + 1;
                }
            } else {
                skipped = skipped + 1;
            }
        } else {
            skipped = skipped + 1;
        }
        let sample = mix(link, charge);
    }
    atomic {
        backlog[(blhead + bllen) % 16] = sample;
        bllen = bllen + 1;
        if bllen > 16 {
            bllen = 16;
            blhead = blhead + 1;
        }
    }
    atomic {
        out(uart, sent, windows, skipped);
    }
}
"#;

/// Default sensed world: the link fades in and out (square wave with
/// noise), while the stored charge is a correlated inverse of a shared
/// activity base — heavy ambient activity both harvests more and jams
/// the channel.
fn environment(seed: u64) -> Environment {
    let activity = Signal::Square {
        lo: 10,
        hi: 70,
        period_us: 900_000,
        duty_pm: 550,
    };
    Environment::new()
        .with(
            "rssi",
            Signal::Noisy {
                base: Box::new(Signal::Scaled {
                    base: Box::new(activity.clone()),
                    num: -1,
                    den: 1,
                    offset: 100,
                }),
                amplitude: 6,
                seed,
            },
        )
        .with(
            "vcap",
            Signal::Noisy {
                base: Box::new(Signal::Clamp {
                    base: Box::new(activity),
                    lo: 20,
                    hi: 95,
                }),
                amplitude: 3,
                seed: seed ^ 0x7ADE,
            },
        )
}

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "radiolog",
        origin: "extension",
        sensors: &["rssi", "vcap"],
        constraints: "Fresh, Con",
        annotated_src: ANNOTATED,
        atomics_src: ATOMICS_ONLY,
        effort: Effort {
            input_fns: 2,
            fresh_data: 1,
            consistent_data: 1,
            consistent_sets: 1,
            samoyed_fn_params: &[2],
            samoyed_loops: 1,
            manual_regions: 3,
        },
        env_fn: environment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_core::PolicyKind;

    #[test]
    fn fresh_link_region_swallows_the_send_loop() {
        let c = ocelot_core::ocelot_transform(benchmark().annotated()).unwrap();
        assert!(c.check.passes(), "{:?}", c.check.violations);
        let fresh = c
            .policies
            .iter()
            .find(|p| p.kind == PolicyKind::Fresh)
            .unwrap();
        assert!(
            fresh.uses.len() >= 3,
            "window gate, in-loop radio use, and mix: {:?}",
            fresh.uses
        );
    }

    #[test]
    fn environment_link_and_charge_are_anticorrelated() {
        let env = benchmark().environment(3);
        let mut opposed = 0;
        for t in (0..3_600_000u64).step_by(18_000) {
            let link = env.sample("rssi", t);
            let cap = env.sample("vcap", t);
            if (link > 60) == (cap < 50) {
                opposed += 1;
            }
        }
        assert!(opposed > 150, "inverse correlation: {opposed}/200");
    }
}
