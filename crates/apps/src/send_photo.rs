//! `send_photo` — Samoyed's radio microbenchmark: sample the
//! photoresistor and transmit when the light level is high.
//!
//! The level must be *fresh* when the send decision and the packet are
//! made: transmitting a pre-power-failure reading reports a brightness
//! the world may no longer have. The radio path also samples the channel
//! (RSSI) and the storage voltage before committing to a send — the
//! extra input functions Table 4's effort row charges.

use crate::{Benchmark, Effort};
use ocelot_hw::sensors::{Environment, Signal};

/// Annotated source.
pub const ANNOTATED: &str = r#"
sensor photo;
sensor rssi;
sensor vcap;

nv sends = 0;
nv skips = 0;

// [IO:fn = read_photo, read_rssi, read_vcap]
fn read_photo() {
    let v = in(photo);
    return v;
}

fn read_rssi() {
    let v = in(rssi);
    return v;
}

fn read_vcap() {
    let v = in(vcap);
    return v;
}

fn main() {
    let level = read_photo();
    fresh(level);
    if level > 60 {
        let ch = read_rssi();
        let bat = read_vcap();
        if ch < 30 {
            if bat > 10 {
                let crc = (level * 7 + sends) % 255;
                out(radio, level, crc);
                sends = sends + 1;
            }
        }
    } else {
        skips = skips + 1;
    }
    atomic {
        out(uart, sends, skips);
    }
}
"#;

/// Atomics-only variant: sampling through transmission in one manual
/// region (the Samoyed atomic-function shape).
pub const ATOMICS_ONLY: &str = r#"
sensor photo;
sensor rssi;
sensor vcap;

nv sends = 0;
nv skips = 0;

fn read_photo() {
    let v = in(photo);
    return v;
}

fn read_rssi() {
    let v = in(rssi);
    return v;
}

fn read_vcap() {
    let v = in(vcap);
    return v;
}

fn main() {
    atomic {
        let level = read_photo();
        fresh(level);
        if level > 60 {
            let ch = read_rssi();
            let bat = read_vcap();
            if ch < 30 {
                if bat > 10 {
                    out(radio, level);
                    sends = sends + 1;
                }
            }
        } else {
            skips = skips + 1;
        }
    }
    atomic {
        out(uart, sends, skips);
    }
}
"#;

fn environment(seed: u64) -> Environment {
    // Light steps drive the send decision; the channel is mostly clear
    // and the storage voltage healthy, with noise.
    let base = Environment::light_steps(seed);
    base.with(
        "rssi",
        Signal::Noisy {
            base: Box::new(Signal::Constant(20)),
            amplitude: 8,
            seed: seed ^ 0x5511,
        },
    )
    .with(
        "vcap",
        Signal::Noisy {
            base: Box::new(Signal::Constant(40)),
            amplitude: 5,
            seed: seed ^ 0xCAFE,
        },
    )
}

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "send_photo",
        origin: "Samoyed",
        sensors: &["photo"],
        constraints: "Fresh",
        annotated_src: ANNOTATED,
        atomics_src: ATOMICS_ONLY,
        effort: Effort {
            input_fns: 3,
            fresh_data: 1,
            consistent_data: 0,
            consistent_sets: 0,
            samoyed_fn_params: &[1],
            samoyed_loops: 0,
            manual_regions: 2,
        },
        env_fn: environment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_core::PolicyKind;

    #[test]
    fn fresh_policy_has_branch_and_radio_uses() {
        let p = benchmark().annotated();
        ocelot_ir::validate(&p).unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let ps = ocelot_core::build_policies(&p, &taint);
        let fresh = ps.iter().find(|p| p.kind == PolicyKind::Fresh).unwrap();
        assert_eq!(fresh.inputs.len(), 1);
        assert_eq!(
            fresh.uses.len(),
            3,
            "the branch, the checksum, and the radio send"
        );
    }

    #[test]
    fn region_covers_the_send() {
        let c = ocelot_core::ocelot_transform(benchmark().annotated()).unwrap();
        assert!(c.check.passes());
        assert_eq!(c.policy_map.len(), 1);
    }
}
