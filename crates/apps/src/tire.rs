//! `tire` — the tire-safety monitor the Ocelot authors wrote (§8,
//! Figure 9).
//!
//! Fast path: a burst-tire alarm fires when the pressure drops sharply
//! below its recent history *while the wheel is in motion* — both the
//! pressure drop (`avgdiff`) and the motion sample (`currmotion`) must
//! be fresh *and* mutually consistent (the paper's `FreshConsistent`).
//! Slow path: a temperature-compensated pressure reading tracks slow
//! leaks; its two samples form a second consistent set.

use crate::{Benchmark, Effort};
use ocelot_hw::sensors::Environment;

/// Annotated source.
pub const ANNOTATED: &str = r#"
sensor tirepres;
sensor tiretemp;
sensor wheelacc;

nv preshist[8];
nv histn = 0;
nv baseline = 95;
nv urgentcount = 0;
nv leakcount = 0;
nv oklog = 0;
nv leakhint = 0;

// [IO:fn = read_pres, read_temp, read_accel_x, read_accel_y, read_accel_z]
fn read_pres() {
    let v = in(tirepres);
    return v;
}

fn read_temp() {
    let v = in(tiretemp);
    return v;
}

fn read_accel_x() {
    let v = in(wheelacc);
    return v;
}

fn read_accel_y() {
    let v = in(wheelacc);
    return v + 1;
}

fn read_accel_z() {
    let v = in(wheelacc);
    return v - 1;
}

fn iabs(v) {
    if v < 0 {
        return 0 - v;
    }
    return v;
}

fn avg_hist() {
    let sum = 0;
    let i = 0;
    repeat 8 {
        sum = sum + preshist[i];
        i = i + 1;
    }
    return sum / 8;
}

fn sample_motion(&m) {
    let x = read_accel_x();
    let y = read_accel_y();
    let z = read_accel_z();
    let mx = iabs(x);
    let my = iabs(y);
    let mz = iabs(z);
    *m = mx + my + mz;
}


fn trend_hist() {
    // Least-squares-flavored slope of the pressure history: positive
    // when pressure is rising, negative when falling.
    let num = 0;
    let i = 0;
    repeat 8 {
        let w = i * 2 - 7;
        num = num + preshist[i] * w;
        i = i + 1;
    }
    return num / 42;
}

fn crc8(a, b) {
    let acc = a * 31 + b;
    repeat 8 {
        if acc % 2 == 1 {
            acc = acc / 2 + 140;
        } else {
            acc = acc / 2;
        }
    }
    return acc % 255;
}

fn smooth_hist(&o) {
    let acc = 0;
    let i = 0;
    repeat 8 {
        let j = (i + 1) % 8;
        let d = preshist[i] - preshist[j];
        if d < 0 {
            d = 0 - d;
        }
        acc = acc + d;
        i = i + 1;
    }
    *o = acc / 8;
}


fn wear_model(m, slope) {
    // Rough tread-wear estimate folded over a simulated rotation: the
    // kind of bookkeeping the original app spends most of its cycles on.
    let acc = m;
    let i = 0;
    repeat 48 {
        acc = (acc * 3 + slope + i) % 997;
        i = i + 1;
    }
    return acc;
}

fn main() {
    // Fast path: burst detection (Figure 9).
    let pnow = read_pres();
    let avg = avg_hist();
    let avgdiff = avg - pnow;
    fresh(avgdiff);
    consistent(avgdiff, 1);
    let currmotion = 0;
    sample_motion(&currmotion);
    fresh(currmotion);
    consistent(currmotion, 1);
    if currmotion > 30 {
        if avgdiff > 25 {
            out(radio, avgdiff, currmotion);
            urgentcount = urgentcount + 1;
        }
    }
    preshist[histn % 8] = pnow;
    histn = histn + 1;
    let slope = trend_hist();
    let jitter = 0;
    smooth_hist(&jitter);
    if slope < 0 - 3 {
        if jitter < 6 {
            leakhint = leakhint + 1;
        }
    }

    // Slow path: temperature-compensated leak trend.
    let tp = read_pres();
    consistent(tp, 2);
    let tt = read_temp();
    consistent(tt, 2);
    let compensated = tp + (25 - tt) / 4;
    if compensated < baseline - 10 {
        leakcount = leakcount + 1;
        out(log, compensated);
    } else {
        oklog = oklog + 1;
    }
    let wear = wear_model(jitter, histn);
    if wear > 900 {
        oklog = oklog + 1;
    }
    let check = crc8(urgentcount, leakcount);
    atomic {
        out(uart, urgentcount, leakcount, check);
    }
}
"#;

/// Atomics-only variant: one large region nests where Ocelot would place
/// two overlapping fast-path regions — only the outermost bounds execute,
/// so the region is entered once, making this variant slightly *faster*
/// than Ocelot on this app (Figure 7's tire anomaly).
pub const ATOMICS_ONLY: &str = r#"
sensor tirepres;
sensor tiretemp;
sensor wheelacc;

nv preshist[8];
nv histn = 0;
nv baseline = 95;
nv urgentcount = 0;
nv leakcount = 0;
nv oklog = 0;
nv leakhint = 0;

fn read_pres() {
    let v = in(tirepres);
    return v;
}

fn read_temp() {
    let v = in(tiretemp);
    return v;
}

fn read_accel_x() {
    let v = in(wheelacc);
    return v;
}

fn read_accel_y() {
    let v = in(wheelacc);
    return v + 1;
}

fn read_accel_z() {
    let v = in(wheelacc);
    return v - 1;
}

fn iabs(v) {
    if v < 0 {
        return 0 - v;
    }
    return v;
}

fn avg_hist() {
    let sum = 0;
    let i = 0;
    repeat 8 {
        sum = sum + preshist[i];
        i = i + 1;
    }
    return sum / 8;
}

fn sample_motion(&m) {
    let x = read_accel_x();
    let y = read_accel_y();
    let z = read_accel_z();
    let mx = iabs(x);
    let my = iabs(y);
    let mz = iabs(z);
    *m = mx + my + mz;
}


fn trend_hist() {
    // Least-squares-flavored slope of the pressure history: positive
    // when pressure is rising, negative when falling.
    let num = 0;
    let i = 0;
    repeat 8 {
        let w = i * 2 - 7;
        num = num + preshist[i] * w;
        i = i + 1;
    }
    return num / 42;
}

fn crc8(a, b) {
    let acc = a * 31 + b;
    repeat 8 {
        if acc % 2 == 1 {
            acc = acc / 2 + 140;
        } else {
            acc = acc / 2;
        }
    }
    return acc % 255;
}

fn smooth_hist(&o) {
    let acc = 0;
    let i = 0;
    repeat 8 {
        let j = (i + 1) % 8;
        let d = preshist[i] - preshist[j];
        if d < 0 {
            d = 0 - d;
        }
        acc = acc + d;
        i = i + 1;
    }
    *o = acc / 8;
}


fn wear_model(m, slope) {
    // Rough tread-wear estimate folded over a simulated rotation: the
    // kind of bookkeeping the original app spends most of its cycles on.
    let acc = m;
    let i = 0;
    repeat 48 {
        acc = (acc * 3 + slope + i) % 997;
        i = i + 1;
    }
    return acc;
}

fn main() {
    atomic {
        let pnow = read_pres();
        let avg = avg_hist();
        let avgdiff = avg - pnow;
        fresh(avgdiff);
        consistent(avgdiff, 1);
        let currmotion = 0;
        atomic {
            sample_motion(&currmotion);
        }
        fresh(currmotion);
        consistent(currmotion, 1);
        if currmotion > 30 {
            if avgdiff > 25 {
                out(radio, avgdiff, currmotion);
                urgentcount = urgentcount + 1;
            }
        }
        preshist[histn % 8] = pnow;
        histn = histn + 1;
        let slope = trend_hist();
        let jitter = 0;
        smooth_hist(&jitter);
        if slope < 0 - 3 {
            if jitter < 6 {
                leakhint = leakhint + 1;
            }
        }
        let tp = read_pres();
        consistent(tp, 2);
        let tt = read_temp();
        consistent(tt, 2);
        let compensated = tp + (25 - tt) / 4;
        if compensated < baseline - 10 {
            leakcount = leakcount + 1;
            out(log, compensated);
        } else {
            oklog = oklog + 1;
        }
    }
    let wear = wear_model(jitter, histn);
    if wear > 900 {
        oklog = oklog + 1;
    }
    let check = crc8(urgentcount, leakcount);
    atomic {
        out(uart, urgentcount, leakcount, check);
    }
}
"#;

fn environment(seed: u64) -> Environment {
    Environment::tire_blowout(800_000, seed)
}

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "tire",
        origin: "Ocelot",
        sensors: &["pres*", "temp*", "accel*"],
        constraints: "Fresh, Con, FreshCon",
        annotated_src: ANNOTATED,
        atomics_src: ATOMICS_ONLY,
        effort: Effort {
            input_fns: 5,
            fresh_data: 2,
            consistent_data: 2,
            consistent_sets: 2,
            samoyed_fn_params: &[2, 2, 3],
            samoyed_loops: 1,
            manual_regions: 3,
        },
        env_fn: environment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_core::PolicyKind;

    #[test]
    fn policies_match_figure9() {
        let p = benchmark().annotated();
        ocelot_ir::validate(&p).unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let ps = ocelot_core::build_policies(&p, &taint);
        let fresh: Vec<_> = ps.iter().filter(|p| p.kind == PolicyKind::Fresh).collect();
        assert_eq!(fresh.len(), 2, "avgdiff and currmotion");
        let set1 = ps
            .iter()
            .find(|p| matches!(p.kind, PolicyKind::Consistent(1)))
            .unwrap();
        // avgdiff depends on the pressure chain (directly and through
        // preshist); currmotion on the three accelerometer chains.
        assert!(set1.inputs.len() >= 4, "pressure + 3 accel chains");
        let set2 = ps
            .iter()
            .find(|p| matches!(p.kind, PolicyKind::Consistent(2)))
            .unwrap();
        assert_eq!(set2.inputs.len(), 2, "slow-path pressure + temperature");
    }

    #[test]
    fn ocelot_infers_multiple_regions() {
        let c = ocelot_core::ocelot_transform(benchmark().annotated()).unwrap();
        assert!(c.check.passes());
        assert_eq!(c.policy_map.len(), 4, "2 fresh + 2 consistent policies");
    }

    #[test]
    fn environment_has_a_blowout() {
        let env = benchmark().environment(3);
        let before = env.sample("tirepres", 100_000);
        let after = env.sample("tirepres", 1_200_000);
        assert!(before > after + 30, "pressure collapses after the puncture");
    }
}
