//! `mlinfer` — fixed-point ML inference over a sample window
//! (extension workload).
//!
//! A tiny two-neuron acoustic-event detector: four microphone samples
//! feed a fixed-point hidden layer and an output squash. The window is
//! one **consistent** set — splicing samples from two power-on
//! intervals feeds the net a waveform no microphone ever produced —
//! and the resulting score must be **fresh** when it gates the alert.

use crate::{Benchmark, Effort};
use ocelot_hw::sensors::{Environment, Signal};

/// Annotated source (Ocelot / JIT input).
pub const ANNOTATED: &str = r#"
sensor mic;

nv events = 0;
nv quiet = 0;
nv scorelog[8];
nv logn = 0;
nv bias = 4;

// [IO:fn = read_mic]
fn read_mic() {
    let v = in(mic);
    return v;
}

fn relu(v) {
    if v < 0 {
        return 0;
    }
    return v;
}

fn squash(v) {
    // Fixed-point soft saturation: v * 64 / (64 + |v|).
    let a = v;
    if a < 0 {
        a = 0 - a;
    }
    return v * 64 / (64 + a);
}

fn main() {
    // One inference window: four samples of the same waveform.
    let s0 = read_mic();
    consistent(s0, 1);
    let s1 = read_mic();
    consistent(s1, 1);
    let s2 = read_mic();
    consistent(s2, 1);
    let s3 = read_mic();
    consistent(s3, 1);
    // Hidden layer, weights in quarters.
    let p0 = (s0 * 3 - s1 + s2 * 2 + s3) / 4 - bias;
    let h0 = relu(p0);
    let p1 = (0 - s0 + s1 * 2 + s2 - s3 * 3) / 4 + bias;
    let h1 = relu(p1);
    // Output neuron.
    let raw = h0 * 2 - h1;
    let score = squash(raw);
    fresh(score);
    if score > 18 {
        events = events + 1;
        out(alert, score);
    } else {
        quiet = quiet + 1;
    }
    scorelog[logn % 8] = score;
    logn = logn + 1;
    // Online bias adaptation over the score history.
    let acc = 0;
    let i = 0;
    repeat 8 {
        acc = acc + scorelog[i];
        i = i + 1;
    }
    let mean = acc / 8;
    if mean > 30 {
        bias = bias + 1;
    }
    if mean < 0 - 30 {
        bias = bias - 1;
    }
    atomic {
        out(uart, events, quiet);
    }
}
"#;

/// Atomics-only variant: window collection + inference + every fresh
/// use in one manual region, bias adaptation in a second, plus the
/// UART guard.
pub const ATOMICS_ONLY: &str = r#"
sensor mic;

nv events = 0;
nv quiet = 0;
nv scorelog[8];
nv logn = 0;
nv bias = 4;

fn read_mic() {
    let v = in(mic);
    return v;
}

fn relu(v) {
    if v < 0 {
        return 0;
    }
    return v;
}

fn squash(v) {
    let a = v;
    if a < 0 {
        a = 0 - a;
    }
    return v * 64 / (64 + a);
}

fn main() {
    atomic {
        let s0 = read_mic();
        consistent(s0, 1);
        let s1 = read_mic();
        consistent(s1, 1);
        let s2 = read_mic();
        consistent(s2, 1);
        let s3 = read_mic();
        consistent(s3, 1);
        let p0 = (s0 * 3 - s1 + s2 * 2 + s3) / 4 - bias;
        let h0 = relu(p0);
        let p1 = (0 - s0 + s1 * 2 + s2 - s3 * 3) / 4 + bias;
        let h1 = relu(p1);
        let raw = h0 * 2 - h1;
        let score = squash(raw);
        fresh(score);
        if score > 18 {
            events = events + 1;
            out(alert, score);
        } else {
            quiet = quiet + 1;
        }
        scorelog[logn % 8] = score;
        logn = logn + 1;
    }
    atomic {
        let acc = 0;
        let i = 0;
        repeat 8 {
            acc = acc + scorelog[i];
            i = i + 1;
        }
        let mean = acc / 8;
        if mean > 30 {
            bias = bias + 1;
        }
        if mean < 0 - 30 {
            bias = bias - 1;
        }
    }
    atomic {
        out(uart, events, quiet);
    }
}
"#;

/// Default sensed world: acoustic events as short loud bursts over a
/// quiet noise floor.
fn environment(seed: u64) -> Environment {
    Environment::new().with(
        "mic",
        Signal::Noisy {
            base: Box::new(Signal::Burst {
                base: Box::new(Signal::Constant(6)),
                amplitude: 70,
                every_us: 700_000,
                width_us: 90_000,
                seed,
            }),
            amplitude: 5,
            seed: seed ^ 0x111C,
        },
    )
}

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "mlinfer",
        origin: "extension",
        sensors: &["mic"],
        constraints: "Fresh, Con",
        annotated_src: ANNOTATED,
        atomics_src: ATOMICS_ONLY,
        effort: Effort {
            input_fns: 1,
            fresh_data: 1,
            consistent_data: 4,
            consistent_sets: 1,
            samoyed_fn_params: &[1],
            samoyed_loops: 1,
            manual_regions: 3,
        },
        env_fn: environment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_core::PolicyKind;

    #[test]
    fn window_forms_one_consistent_set_with_four_collections() {
        let c = ocelot_core::ocelot_transform(benchmark().annotated()).unwrap();
        assert!(c.check.passes(), "{:?}", c.check.violations);
        let set = c
            .policies
            .iter()
            .find(|p| matches!(p.kind, PolicyKind::Consistent(1)))
            .unwrap();
        assert_eq!(set.decls.len(), 4, "s0..s3");
        assert_eq!(set.inputs.len(), 4, "four collections via one reader");
    }

    #[test]
    fn environment_has_loud_and_quiet_phases() {
        let env = benchmark().environment(11);
        let samples: Vec<i64> = (0..2_000_000u64)
            .step_by(5_000)
            .map(|t| env.sample("mic", t))
            .collect();
        assert!(samples.iter().any(|&v| v > 50), "bursts happen");
        assert!(samples.iter().any(|&v| v < 20), "floor is quiet");
    }
}
