//! `photo` — Samoyed's photoresistor microbenchmark: the average of five
//! light readings.
//!
//! A single `Consistent` annotation on the averaged value suffices: the
//! average depends on all five input operations, so the one consistent
//! set forces all five samples into one atomic region — this is why
//! Table 4 charges Ocelot only 2 lines for `photo`.

use crate::{Benchmark, Effort};
use ocelot_hw::sensors::Environment;

/// Annotated source.
pub const ANNOTATED: &str = r#"
sensor photo;

nv reports = 0;
nv last = 0;

// [IO:fn = read5]
fn read5() {
    let r0 = in(photo);
    let r1 = in(photo);
    let r2 = in(photo);
    let r3 = in(photo);
    let r4 = in(photo);
    let sum = r0 + r1 + r2 + r3 + r4;
    return sum / 5;
}

fn main() {
    let avg = read5();
    consistent(avg, 1);
    last = avg;
    reports = reports + 1;
    atomic {
        out(uart, avg);
    }
}
"#;

/// Atomics-only variant: the whole sampling + report pipeline in one
/// region — essentially where the inferred region goes, so the two
/// configurations track each other closely on this microbenchmark
/// (Figure 7).
pub const ATOMICS_ONLY: &str = r#"
sensor photo;

nv reports = 0;
nv last = 0;

fn read5() {
    let r0 = in(photo);
    let r1 = in(photo);
    let r2 = in(photo);
    let r3 = in(photo);
    let r4 = in(photo);
    let sum = r0 + r1 + r2 + r3 + r4;
    return sum / 5;
}

fn main() {
    atomic {
        let avg = read5();
        consistent(avg, 1);
        last = avg;
        reports = reports + 1;
    }
    atomic {
        out(uart, avg);
    }
}
"#;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "photo",
        origin: "Samoyed",
        sensors: &["photo"],
        constraints: "Con",
        annotated_src: ANNOTATED,
        atomics_src: ATOMICS_ONLY,
        effort: Effort {
            input_fns: 1,
            fresh_data: 0,
            consistent_data: 1,
            consistent_sets: 1,
            samoyed_fn_params: &[1],
            samoyed_loops: 1,
            manual_regions: 2,
        },
        env_fn: Environment::light_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_consistent_var_five_collections() {
        let p = benchmark().annotated();
        ocelot_ir::validate(&p).unwrap();
        let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
        let ps = ocelot_core::build_policies(&p, &taint);
        assert_eq!(ps.len(), 1);
        assert_eq!(
            ps.policies[0].inputs.len(),
            5,
            "avg depends on five distinct input operations"
        );
    }

    #[test]
    fn inferred_region_encloses_the_call() {
        let c = ocelot_core::ocelot_transform(benchmark().annotated()).unwrap();
        assert!(c.check.passes());
        let inferred: Vec<_> = c
            .policy_map
            .keys()
            .map(|rid| c.region(*rid).unwrap())
            .collect();
        assert_eq!(inferred.len(), 1);
        assert_eq!(
            inferred[0].func, c.program.main,
            "goal function is main — the reads execute within the read5 call"
        );
    }
}
