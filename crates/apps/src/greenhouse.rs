//! `greenhouse` — a greenhouse climate monitor, from the TICS artifact.
//!
//! Senses temperature and humidity at two stations, derives a combined
//! reading plus a cross-station humidity delta, and drives misting and
//! venting decisions. The three derived values form one temporally-
//! consistent set: a misting decision made from a pre-power-failure
//! temperature and a post-failure humidity is exactly Figure 2's
//! inconsistency.

use crate::{Benchmark, Effort};
use ocelot_hw::sensors::Environment;

/// Annotated source (Ocelot / JIT input).
pub const ANNOTATED: &str = r#"
sensor temp;
sensor hum;

nv vents = 0;
nv mists = 0;
nv tlog[16];
nv hlog[16];
nv logn = 0;

// [IO:fn = read_temp_a, read_temp_b, read_hum_a, read_hum_b]
fn read_temp_a() {
    let raw = in(temp);
    return raw;
}

fn read_temp_b() {
    let raw = in(temp);
    return raw + 1;
}

fn read_hum_a() {
    let raw = in(hum);
    return raw;
}

fn read_hum_b() {
    let raw = in(hum);
    return raw - 1;
}

fn main() {
    let ta = read_temp_a();
    let tb = read_temp_b();
    let t = (ta + tb) / 2;
    consistent(t, 1);
    let ha = read_hum_a();
    let hb = read_hum_b();
    let h = (ha + hb) / 2;
    consistent(h, 1);
    let dh = ha - hb;
    consistent(dh, 1);
    if t > 30 {
        if h < 40 {
            mists = mists + 1;
            out(mist, t, h);
        }
    }
    if t > 33 {
        vents = vents + 1;
        out(vent, t);
    }
    tlog[logn] = t;
    hlog[logn] = h;
    logn = (logn + 1) % 16;
    atomic {
        out(uart, t, h);
    }
}
"#;

/// Atomics-only variant: the sensing phase and the control/log phase are
/// manually wrapped whole, mirroring the statically-placed checkpoints
/// of the TICS original (§7.2).
pub const ATOMICS_ONLY: &str = r#"
sensor temp;
sensor hum;

nv vents = 0;
nv mists = 0;
nv tlog[16];
nv hlog[16];
nv logn = 0;

fn read_temp_a() {
    let raw = in(temp);
    return raw;
}

fn read_temp_b() {
    let raw = in(temp);
    return raw + 1;
}

fn read_hum_a() {
    let raw = in(hum);
    return raw;
}

fn read_hum_b() {
    let raw = in(hum);
    return raw - 1;
}

fn main() {
    atomic {
        let ta = read_temp_a();
        let tb = read_temp_b();
        let t = (ta + tb) / 2;
        consistent(t, 1);
        let ha = read_hum_a();
        let hb = read_hum_b();
        let h = (ha + hb) / 2;
        consistent(h, 1);
        let dh = ha - hb;
        consistent(dh, 1);
    }
    atomic {
        if t > 30 {
            if h < 40 {
                mists = mists + 1;
                out(mist, t, h);
            }
        }
        if t > 33 {
            vents = vents + 1;
            out(vent, t);
        }
        tlog[logn] = t;
        hlog[logn] = h;
        logn = (logn + 1) % 16;
    }
    atomic {
        out(uart, t, h);
    }
}
"#;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "greenhouse",
        origin: "TICS",
        sensors: &["hum", "temp"],
        constraints: "Con",
        annotated_src: ANNOTATED,
        atomics_src: ATOMICS_ONLY,
        effort: Effort {
            input_fns: 4,
            fresh_data: 0,
            consistent_data: 3,
            consistent_sets: 1,
            samoyed_fn_params: &[3],
            samoyed_loops: 0,
            manual_regions: 3,
        },
        env_fn: Environment::greenhouse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_core::PolicyKind;

    #[test]
    fn ocelot_region_spans_all_four_reads() {
        let c = ocelot_core::ocelot_transform(benchmark().annotated()).unwrap();
        // One consistent set → one inferred region + the UART guard.
        assert_eq!(c.policy_map.len(), 1);
        assert_eq!(c.regions.len(), 2);
        let ps = &c.policies;
        let set = ps
            .iter()
            .find(|p| matches!(p.kind, PolicyKind::Consistent(1)))
            .unwrap();
        assert_eq!(set.decls.len(), 3, "t, h, dh");
        assert_eq!(set.inputs.len(), 4, "four collections");
    }

    #[test]
    fn environment_matches_channels() {
        let env = benchmark().environment(7);
        assert_ne!(env.sample("temp", 1_500_000), 0);
        assert_ne!(env.sample("hum", 100_000), 0);
    }
}
