//! # ocelot-apps
//!
//! The six benchmark applications of the paper's evaluation (Table 1),
//! written in the modeling language:
//!
//! | App | Origin | Sensors | Constraints |
//! |---|---|---|---|
//! | `activity` | TICS | accel* | Con, Fresh |
//! | `greenhouse` | TICS | hum, temp | Con |
//! | `cem` | DINO | temp* | Fresh |
//! | `photo` | Samoyed | photo | Con |
//! | `send_photo` | Samoyed | photo | Fresh |
//! | `tire` | Ocelot | pres*, temp*, accel* | Fresh, Con, FreshCon |
//!
//! Each benchmark ships two sources: the **annotated** program (compiled
//! by Ocelot, or run as-is under JIT) and an **atomics-only** variant
//! with manually-placed whole-phase regions (§7.2's third
//! configuration). Both carry the small manual `atomic { out(uart, …) }`
//! guard that the paper applies to every configuration.
//!
//! ## Examples
//!
//! ```
//! let bench = ocelot_apps::by_name("greenhouse").unwrap();
//! let program = bench.annotated();
//! let compiled = ocelot_core::ocelot_transform(program).unwrap();
//! assert!(compiled.check.passes());
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod activity;
pub mod cem;
pub mod fusion;
pub mod greenhouse;
pub mod mlinfer;
pub mod photo;
pub mod radiolog;
pub mod send_photo;
pub mod tire;

use ocelot_hw::sensors::Environment;
use ocelot_ir::Program;

/// Inputs to the programmer-effort model of Tables 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Input-generating functions the programmer marks (`IO:fn = ...`).
    pub input_fns: usize,
    /// Variables carrying a freshness constraint (FreshConsistent data
    /// counts here too).
    pub fresh_data: usize,
    /// Variables carrying only a consistency constraint.
    pub consistent_data: usize,
    /// Distinct consistent sets.
    pub consistent_sets: usize,
    /// Parameter count of each function Samoyed would make atomic.
    pub samoyed_fn_params: &'static [usize],
    /// How many of those atomic functions contain loops (each needs a
    /// scaling rule and a fallback under Samoyed).
    pub samoyed_loops: usize,
    /// Manually-placed regions in the atomics-only variant.
    pub manual_regions: usize,
}

/// One benchmark: sources, Table 1 metadata, and effort-model inputs.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name (`activity`, `cem`, ...).
    pub name: &'static str,
    /// Which prior work the app comes from (Table 1's Origin column).
    pub origin: &'static str,
    /// Sensor channels used; `*` marks sensors the paper simulated.
    pub sensors: &'static [&'static str],
    /// Constraint kinds used (Table 1's Constraints column).
    pub constraints: &'static str,
    /// Annotated source (Ocelot / JIT input).
    pub annotated_src: &'static str,
    /// Atomics-only source with manual phase regions.
    pub atomics_src: &'static str,
    /// Effort-model inputs.
    pub effort: Effort,
    env_fn: fn(u64) -> Environment,
}

impl Benchmark {
    /// Compiles the annotated source.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile — a bug, caught by
    /// this crate's tests.
    pub fn annotated(&self) -> Program {
        ocelot_ir::compile(self.annotated_src)
            .unwrap_or_else(|e| panic!("{}: annotated source: {e}", self.name))
    }

    /// Compiles the atomics-only source.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile.
    pub fn atomics_only(&self) -> Program {
        ocelot_ir::compile(self.atomics_src)
            .unwrap_or_else(|e| panic!("{}: atomics source: {e}", self.name))
    }

    /// The benchmark's sensed environment, seeded for reproducibility.
    pub fn environment(&self, seed: u64) -> Environment {
        (self.env_fn)(seed)
    }

    /// Non-blank, non-comment source lines of the annotated program
    /// (Table 1's LoC column for this reproduction).
    pub fn loc(&self) -> usize {
        self.annotated_src
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count()
    }
}

/// The paper's six benchmarks, in Table 1 order. Paper-artifact
/// drivers (Figure 7, Table 2, …) sweep exactly this set, so the
/// reproduced tables keep the paper's rows.
pub fn all() -> Vec<Benchmark> {
    vec![
        activity::benchmark(),
        cem::benchmark(),
        greenhouse::benchmark(),
        photo::benchmark(),
        send_photo::benchmark(),
        tire::benchmark(),
    ]
}

/// The extension workloads beyond the paper's six (the ROADMAP's "more
/// workloads" lever): multi-sensor fusion, a duty-cycled radio
/// send-window, and an ML-inference window. They share the
/// [`Benchmark`] surface, so everything that drives a paper app drives
/// these; the scenario sweep (`ocelot-bench`'s `scenario_sweep`)
/// exercises them across the whole scenario library.
pub fn extended() -> Vec<Benchmark> {
    vec![
        fusion::benchmark(),
        radiolog::benchmark(),
        mlinfer::benchmark(),
    ]
}

/// Every benchmark: the paper's six followed by the extensions.
pub fn all_with_extensions() -> Vec<Benchmark> {
    let mut bs = all();
    bs.extend(extended());
    bs
}

/// Looks up a benchmark (paper or extension) by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all_with_extensions().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_benchmarks_with_unique_names() {
        let bs = all();
        assert_eq!(bs.len(), 6);
        let mut names: Vec<_> = bs.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("tire").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn every_benchmark_compiles_and_validates() {
        for b in all() {
            let p = b.annotated();
            ocelot_ir::validate(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let a = b.atomics_only();
            ocelot_ir::validate(&a).unwrap_or_else(|e| panic!("{} atomics: {e}", b.name));
        }
    }

    #[test]
    fn every_benchmark_transforms_under_ocelot() {
        for b in all() {
            let c = ocelot_core::ocelot_transform(b.annotated())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(c.check.passes(), "{}: {:?}", b.name, c.check.violations);
            assert!(
                !c.policy_map.is_empty(),
                "{}: Ocelot must infer at least one region",
                b.name
            );
        }
    }

    #[test]
    fn atomics_variants_pass_the_checker() {
        // §7.2: manual regions are placed so correctness properties hold;
        // checker mode (§8) must agree.
        for b in all() {
            let report = ocelot_core::ocelot_check(&b.atomics_only())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(
                report.passes(),
                "{} atomics-only placement violates policies: {:?}",
                b.name,
                report.violations
            );
        }
    }

    #[test]
    fn environments_cover_declared_sensors() {
        for b in all() {
            let p = b.annotated();
            let env = b.environment(42);
            for s in &p.sensors {
                // Sampling twice at different times must be deterministic.
                let v1 = env.sample(s, 12_345);
                let v2 = env.sample(s, 12_345);
                assert_eq!(v1, v2, "{}: sensor {s} not deterministic", b.name);
            }
        }
    }

    #[test]
    fn table1_constraint_kinds_match_policies() {
        use ocelot_core::PolicyKind;
        for b in all() {
            let p = b.annotated();
            let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
            let ps = ocelot_core::build_policies(&p, &taint);
            let has_fresh = ps.iter().any(|pl| pl.kind == PolicyKind::Fresh);
            let has_con = ps
                .iter()
                .any(|pl| matches!(pl.kind, PolicyKind::Consistent(_)));
            let wants_fresh = b.constraints.contains("Fresh");
            let wants_con = b.constraints.contains("Con");
            assert_eq!(has_fresh, wants_fresh, "{}: fresh mismatch", b.name);
            assert_eq!(has_con, wants_con, "{}: consistent mismatch", b.name);
        }
    }

    #[test]
    fn extended_registry_is_disjoint_and_resolvable() {
        let ext = extended();
        assert_eq!(ext.len(), 3);
        let every = all_with_extensions();
        assert_eq!(every.len(), 9);
        let mut names: Vec<_> = every.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9, "no name collisions across registries");
        for b in &ext {
            assert!(by_name(b.name).is_some(), "{} resolvable", b.name);
        }
        // The paper registry is untouched: still exactly Table 1's six.
        assert_eq!(all().len(), 6);
        assert!(!all().iter().any(|b| b.origin == "extension"));
    }

    #[test]
    fn extended_benchmarks_pass_every_paper_quality_gate() {
        use ocelot_core::PolicyKind;
        for b in extended() {
            // Compile + validate both variants.
            let p = b.annotated();
            ocelot_ir::validate(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let a = b.atomics_only();
            ocelot_ir::validate(&a).unwrap_or_else(|e| panic!("{} atomics: {e}", b.name));
            // Ocelot transform infers regions and self-checks.
            let c = ocelot_core::ocelot_transform(p.clone())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(c.check.passes(), "{}: {:?}", b.name, c.check.violations);
            assert!(!c.policy_map.is_empty(), "{}: regions inferred", b.name);
            // Manual placement satisfies the checker.
            let report =
                ocelot_core::ocelot_check(&a).unwrap_or_else(|e| panic!("{} atomics: {e}", b.name));
            assert!(report.passes(), "{}: {:?}", b.name, report.violations);
            // Declared constraint kinds match the derived policies.
            let taint = ocelot_analysis::taint::TaintAnalysis::run(&p);
            let ps = ocelot_core::build_policies(&p, &taint);
            let has_fresh = ps.iter().any(|pl| pl.kind == PolicyKind::Fresh);
            let has_con = ps
                .iter()
                .any(|pl| matches!(pl.kind, PolicyKind::Consistent(_)));
            assert_eq!(has_fresh, b.constraints.contains("Fresh"), "{}", b.name);
            assert_eq!(has_con, b.constraints.contains("Con"), "{}", b.name);
            // Environment covers the declared sensors deterministically.
            let env = b.environment(42);
            for s in &p.sensors {
                assert_eq!(env.sample(s, 12_345), env.sample(s, 12_345), "{}", b.name);
            }
        }
    }

    #[test]
    fn effort_counts_match_table4_formulas() {
        // Ocelot LoC = inputs + constrained data (Table 3), reproducing
        // Table 4's Ocelot row exactly.
        let expect = [
            ("activity", 5),
            ("cem", 2),
            ("greenhouse", 7),
            ("photo", 2),
            ("send_photo", 4),
            ("tire", 9),
        ];
        for (name, loc) in expect {
            let b = by_name(name).unwrap();
            let got = b.effort.input_fns + b.effort.fresh_data + b.effort.consistent_data;
            assert_eq!(got, loc, "{name}: Ocelot effort");
        }
    }
}
