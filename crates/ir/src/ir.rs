//! The lowered intermediate representation: functions of basic blocks of
//! labeled instructions.
//!
//! The paper's analyses identify instructions by `(function, label)` pairs
//! and reason over basic-block CFGs with dominator queries — the same shape
//! LLVM IR gave the original implementation. Lowering (see
//! [`mod@crate::lower`]) alpha-renames locals so every variable name is unique
//! within its function, which makes the may-alias set of every location a
//! singleton, exactly the simplification §5.2 of the paper credits to
//! Rust's ownership discipline.

use crate::ast::{Arg, Expr, Ident};
use crate::span::Span;
use std::collections::HashMap;
use std::fmt;

/// Identifies a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifies a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A function-unique instruction label — the paper's `ℓ`.
///
/// Labels are stable across region insertion: inserting `startatom` /
/// `endatom` instructions allocates new labels without renumbering
/// existing ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

/// Identifies an atomic region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// A globally-unique instruction reference — the paper's `(f, ℓ)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrRef {
    /// The containing function.
    pub func: FuncId,
    /// The instruction's label within that function.
    pub label: Label,
}

impl fmt::Display for InstrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(f{}, l{})", self.func.0, self.label.0)
    }
}

/// The kind of a timing annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnnotKind {
    /// `Fresh(x)` — §4.2 freshness constraint.
    Fresh,
    /// `Consistent(x, id)` — §4.2 temporal-consistency constraint; all
    /// variables sharing an id form one consistent set.
    Consistent(u32),
    /// `@bound k` on a `while` loop: a declared trip count for the
    /// forward-progress analysis. Not a timing policy — it names no
    /// variable (the carrier ident is a `$bound` placeholder), declares
    /// nothing to the policy builder, and is skipped by every
    /// taint/liveness consumer. It lives in the loop's header block so
    /// the bound recovery can read it off the natural loop.
    Bound(u64),
}

/// A storage destination for an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Place {
    /// A scalar variable (local or non-volatile global).
    Var(Ident),
    /// An element of a global array, `a[e]`.
    Index(Ident, Expr),
    /// A store through a reference parameter, `*x`.
    Deref(Ident),
}

impl Place {
    /// The variable that names the stored-to location (array base for
    /// indexed stores, the reference itself for deref stores).
    pub fn base(&self) -> &Ident {
        match self {
            Place::Var(x) | Place::Index(x, _) | Place::Deref(x) => x,
        }
    }
}

/// An IR operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// No-op.
    Skip,
    /// Introduce a new local `var` with value `src` (`let x = e`).
    Bind {
        /// The (function-unique) local being introduced.
        var: Ident,
        /// Its initializer.
        src: Expr,
    },
    /// Store `src` into an existing location.
    Assign {
        /// Where to store.
        place: Place,
        /// What to store.
        src: Expr,
    },
    /// Input operation `let var = IN(sensor)` — the paper's `IN()`.
    Input {
        /// The local receiving the sample.
        var: Ident,
        /// The sensor channel sampled.
        sensor: Ident,
    },
    /// Call `dst = callee(args)`; `dst` is `None` for effect-only calls.
    Call {
        /// Local receiving the return value, if any.
        dst: Option<Ident>,
        /// The callee.
        callee: FuncId,
        /// Arguments (by value or by mutable reference).
        args: Vec<Arg>,
    },
    /// Output operation `out(channel, args)`.
    Output {
        /// The output channel (uart, radio, alarm, ...).
        channel: Ident,
        /// Values written.
        args: Vec<Expr>,
    },
    /// A timing annotation on `var`. Annotations are analysis markers:
    /// the transform erases them after building policies (§6.1).
    Annot {
        /// Which constraint.
        kind: AnnotKind,
        /// The constrained variable.
        var: Ident,
    },
    /// `startatom(region, ω)` — enter an atomic region.
    AtomStart {
        /// Region identifier.
        region: RegionId,
    },
    /// `endatom` — leave an atomic region.
    AtomEnd {
        /// Region identifier (matches the corresponding start).
        region: RegionId,
    },
}

impl Op {
    /// The variable defined by this operation, if any.
    pub fn def(&self) -> Option<&Ident> {
        match self {
            Op::Bind { var, .. } | Op::Input { var, .. } => Some(var),
            Op::Assign {
                place: Place::Var(x),
                ..
            } => Some(x),
            Op::Call { dst, .. } => dst.as_ref(),
            _ => None,
        }
    }

    /// True for input operations.
    pub fn is_input(&self) -> bool {
        matches!(self, Op::Input { .. })
    }
}

/// A labeled instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    /// Function-unique label.
    pub label: Label,
    /// The operation.
    pub op: Op,
    /// Source span of the statement this instruction was lowered from.
    /// Synthesized instructions (return-slot init, loop counters,
    /// inferred region markers) carry the span of the construct that
    /// caused them. Programs lowered from parsed source never have an
    /// empty span (see [`crate::validate::validate_spans`]); programs
    /// assembled by [`crate::builder::ProgramBuilder`] or by hand may
    /// use the empty default.
    pub span: Span,
}

impl Inst {
    /// An instruction with no source span (builder/test construction).
    pub fn new(label: Label, op: Op) -> Self {
        Inst {
            label,
            op,
            span: Span::default(),
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch.
    Branch {
        /// Branch condition (a *use* of its variables, relevant to
        /// freshness policies).
        cond: Expr,
        /// Target when `cond` is true.
        then_bb: BlockId,
        /// Target when `cond` is false.
        else_bb: BlockId,
    },
    /// Function return. All `return` statements funnel through the
    /// function's landing-pad block (§6.2), whose terminator this is.
    Ret(Option<Expr>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus a labeled terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block's id (its index in [`Function::blocks`]).
    pub id: BlockId,
    /// Straight-line instructions.
    pub instrs: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
    /// Label of the terminator (terminators use variables, so policies
    /// may reference them).
    pub term_label: Label,
    /// Source span of the terminator (the `if`/`while` statement for
    /// branches, the enclosing statement for fall-through jumps, the
    /// function declaration for the landing-pad return). Empty for
    /// builder-made programs, like [`Inst::span`].
    pub term_span: Span,
}

/// A function parameter in the IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrParam {
    /// Parameter name.
    pub name: Ident,
    /// True for `&x` mutable-reference parameters.
    pub by_ref: bool,
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// This function's id within the program.
    pub id: FuncId,
    /// Source name.
    pub name: Ident,
    /// Parameters.
    pub params: Vec<IrParam>,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Exit (return landing-pad) block; post-dominates every path.
    pub exit: BlockId,
    /// Names of locals introduced by `Bind`/`Input` ops (after renaming).
    pub locals: Vec<Ident>,
    pub(crate) next_label: u32,
}

impl Function {
    /// Allocates a fresh instruction label.
    pub fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// The block with id `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Mutable access to block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.0 as usize]
    }

    /// Finds the location `(block, index)` of the instruction labeled `l`.
    ///
    /// The terminator of a block is addressed with `index ==
    /// block.instrs.len()`.
    pub fn find_label(&self, l: Label) -> Option<(BlockId, usize)> {
        for b in &self.blocks {
            if b.term_label == l {
                return Some((b.id, b.instrs.len()));
            }
            for (i, inst) in b.instrs.iter().enumerate() {
                if inst.label == l {
                    return Some((b.id, i));
                }
            }
        }
        None
    }

    /// Returns the instruction labeled `l`, or `None` if `l` names the
    /// terminator or does not exist.
    pub fn inst(&self, l: Label) -> Option<&Inst> {
        let (b, i) = self.find_label(l)?;
        self.block(b).instrs.get(i)
    }

    /// The source span of the instruction *or terminator* labeled `l`.
    pub fn span_of(&self, l: Label) -> Option<Span> {
        let (b, i) = self.find_label(l)?;
        let blk = self.block(b);
        Some(match blk.instrs.get(i) {
            Some(inst) => inst.span,
            None => blk.term_span,
        })
    }

    /// Iterates over every instruction in the function (excluding
    /// terminators), in block order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (BlockId, &Inst)> {
        self.blocks
            .iter()
            .flat_map(|b| b.instrs.iter().map(move |i| (b.id, i)))
    }

    /// True when `name` is declared by this function — a lowered local
    /// (alpha-renamed, so unique program-wide) or a parameter. Writes to
    /// a declared name stay volatile; anything else is non-volatile.
    /// The compiled execution backend and the WCET analysis both key
    /// their static local/global classification off this.
    pub fn declares(&self, name: &str) -> bool {
        self.locals.iter().any(|l| l == name) || self.params.iter().any(|p| p.name == name)
    }

    /// True when `name` is a by-mutable-reference parameter of this
    /// function (reads and writes go through the caller's binding).
    pub fn is_by_ref_param(&self, name: &str) -> bool {
        self.params.iter().any(|p| p.name == name && p.by_ref)
    }

    /// All `(label, callee)` call sites in this function.
    pub fn call_sites(&self) -> Vec<(Label, FuncId)> {
        let mut out = Vec::new();
        for (_, inst) in self.iter_insts() {
            if let Op::Call { callee, .. } = &inst.op {
                out.push((inst.label, *callee));
            }
        }
        out
    }
}

/// A non-volatile global in the IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrGlobal {
    /// Global name.
    pub name: Ident,
    /// `Some(len)` for arrays.
    pub array_len: Option<usize>,
    /// Initial scalar value (arrays zero-fill).
    pub init: i64,
}

/// A whole lowered program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Non-volatile globals.
    pub globals: Vec<IrGlobal>,
    /// Declared sensor channels.
    pub sensors: Vec<Ident>,
    /// The entry function (`main`).
    pub main: FuncId,
    name_to_id: HashMap<Ident, FuncId>,
    pub(crate) next_region: u32,
}

impl Program {
    /// Assembles a program from lowered parts. Prefer [`fn@crate::lower::lower`] or
    /// [`crate::builder::ProgramBuilder`] over calling this directly.
    pub fn from_parts(
        funcs: Vec<Function>,
        globals: Vec<IrGlobal>,
        sensors: Vec<Ident>,
        main: FuncId,
        next_region: u32,
    ) -> Self {
        let name_to_id = funcs.iter().map(|f| (f.name.clone(), f.id)).collect();
        Program {
            funcs,
            globals,
            sensors,
            main,
            name_to_id,
            next_region,
        }
    }

    /// The function with id `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.0 as usize]
    }

    /// Mutable access to function `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn func_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.funcs[f.0 as usize]
    }

    /// Looks up a function id by source name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.name_to_id.get(name).copied()
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&IrGlobal> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// True if `name` is a declared non-volatile global.
    pub fn is_global(&self, name: &str) -> bool {
        self.global(name).is_some()
    }

    /// Stable slot number of a scalar global: its position among the
    /// *scalar* globals in declaration order. Slot numbering is the
    /// contract between the IR and slot-indexed non-volatile stores
    /// (`ocelot-runtime`'s `NvMem` assigns the same numbers), letting a
    /// compiled backend pre-resolve global accesses to direct indices.
    pub fn scalar_slot(&self, name: &str) -> Option<usize> {
        self.globals
            .iter()
            .filter(|g| g.array_len.is_none())
            .position(|g| g.name == name)
    }

    /// Stable slot number of an array global: its position among the
    /// *array* globals in declaration order (see
    /// [`Program::scalar_slot`] for the numbering contract).
    pub fn array_slot(&self, name: &str) -> Option<usize> {
        self.globals
            .iter()
            .filter(|g| g.array_len.is_some())
            .position(|g| g.name == name)
    }

    /// True if `name` is a declared sensor channel.
    pub fn is_sensor(&self, name: &str) -> bool {
        self.sensors.iter().any(|s| s == name)
    }

    /// Allocates a fresh atomic-region id.
    pub fn fresh_region(&mut self) -> RegionId {
        let r = RegionId(self.next_region);
        self.next_region += 1;
        r
    }

    /// Resolves the instruction behind a global reference.
    pub fn inst(&self, r: InstrRef) -> Option<&Inst> {
        self.funcs.get(r.func.0 as usize)?.inst(r.label)
    }

    /// The source span behind a global instruction reference (works for
    /// terminator labels too).
    pub fn span_of(&self, r: InstrRef) -> Option<Span> {
        self.funcs.get(r.func.0 as usize)?.span_of(r.label)
    }

    /// All annotation instructions in the program, as
    /// `(instr-ref, kind, variable)`.
    pub fn annotations(&self) -> Vec<(InstrRef, AnnotKind, Ident)> {
        let mut out = Vec::new();
        for f in &self.funcs {
            for (_, inst) in f.iter_insts() {
                if let Op::Annot { kind, var } = &inst.op {
                    out.push((
                        InstrRef {
                            func: f.id,
                            label: inst.label,
                        },
                        *kind,
                        var.clone(),
                    ));
                }
            }
        }
        out
    }

    /// All input operations in the program, as `(instr-ref, sensor)`.
    pub fn input_ops(&self) -> Vec<(InstrRef, Ident)> {
        let mut out = Vec::new();
        for f in &self.funcs {
            for (_, inst) in f.iter_insts() {
                if let Op::Input { sensor, .. } = &inst.op {
                    out.push((
                        InstrRef {
                            func: f.id,
                            label: inst.label,
                        },
                        sensor.clone(),
                    ));
                }
            }
        }
        out
    }

    /// Counts instructions (including terminators) across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.instrs.len() + 1).sum::<usize>())
            .sum()
    }

    /// Removes all `Annot` instructions (the transform does this after
    /// building policies, §6.1).
    pub fn erase_annotations(&mut self) {
        for f in &mut self.funcs {
            for b in &mut f.blocks {
                b.instrs.retain(|i| !matches!(i.op, Op::Annot { .. }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_function() -> Function {
        // entry: l0: bind x = 1; term l1: jump exit
        // exit:  term l2: ret x
        Function {
            id: FuncId(0),
            name: "main".into(),
            params: vec![],
            blocks: vec![
                Block {
                    id: BlockId(0),
                    instrs: vec![Inst::new(
                        Label(0),
                        Op::Bind {
                            var: "x".into(),
                            src: Expr::Int(1),
                        },
                    )],
                    term: Terminator::Jump(BlockId(1)),
                    term_label: Label(1),
                    term_span: Span::default(),
                },
                Block {
                    id: BlockId(1),
                    instrs: vec![],
                    term: Terminator::Ret(Some(Expr::Var("x".into()))),
                    term_label: Label(2),
                    term_span: Span::default(),
                },
            ],
            entry: BlockId(0),
            exit: BlockId(1),
            locals: vec!["x".into()],
            next_label: 3,
        }
    }

    #[test]
    fn find_label_locates_instructions_and_terminators() {
        let f = mini_function();
        assert_eq!(f.find_label(Label(0)), Some((BlockId(0), 0)));
        // Terminator of block 0 is addressed one past the instrs.
        assert_eq!(f.find_label(Label(1)), Some((BlockId(0), 1)));
        assert_eq!(f.find_label(Label(2)), Some((BlockId(1), 0)));
        assert_eq!(f.find_label(Label(99)), None);
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut f = mini_function();
        let a = f.fresh_label();
        let b = f.fresh_label();
        assert_ne!(a, b);
        assert!(f.find_label(a).is_none(), "fresh labels are not yet placed");
    }

    #[test]
    fn op_def_reports_definitions() {
        assert_eq!(
            Op::Bind {
                var: "x".into(),
                src: Expr::Int(0)
            }
            .def(),
            Some(&"x".to_string())
        );
        assert_eq!(
            Op::Assign {
                place: Place::Deref("p".into()),
                src: Expr::Int(0)
            }
            .def(),
            None,
            "deref stores do not define a new local"
        );
        assert_eq!(Op::Skip.def(), None);
    }

    #[test]
    fn program_lookup_by_name() {
        let f = mini_function();
        let p = Program::from_parts(vec![f], vec![], vec![], FuncId(0), 0);
        assert_eq!(p.func_by_name("main"), Some(FuncId(0)));
        assert_eq!(p.func_by_name("nope"), None);
        assert_eq!(p.inst_count(), 3); // 1 instr + 2 terminators
    }

    #[test]
    fn declares_and_by_ref_classification() {
        let mut f = mini_function();
        f.params.push(IrParam {
            name: "p".into(),
            by_ref: true,
        });
        f.params.push(IrParam {
            name: "v".into(),
            by_ref: false,
        });
        assert!(f.declares("x"), "lowered local");
        assert!(f.declares("p") && f.declares("v"), "params");
        assert!(!f.declares("g"), "unknown names are non-volatile");
        assert!(f.is_by_ref_param("p"));
        assert!(!f.is_by_ref_param("v"));
        assert!(!f.is_by_ref_param("x"));
    }

    #[test]
    fn global_slots_number_each_kind_in_declaration_order() {
        let globals = vec![
            IrGlobal {
                name: "a".into(),
                array_len: None,
                init: 0,
            },
            IrGlobal {
                name: "arr".into(),
                array_len: Some(4),
                init: 0,
            },
            IrGlobal {
                name: "b".into(),
                array_len: None,
                init: 0,
            },
        ];
        let p = Program::from_parts(vec![mini_function()], globals, vec![], FuncId(0), 0);
        assert_eq!(p.scalar_slot("a"), Some(0));
        assert_eq!(p.scalar_slot("b"), Some(1), "arrays do not shift scalars");
        assert_eq!(p.scalar_slot("arr"), None, "arrays are not scalar slots");
        assert_eq!(p.array_slot("arr"), Some(0));
        assert_eq!(p.array_slot("a"), None);
        assert_eq!(p.scalar_slot("missing"), None);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
        let b = Terminator::Branch {
            cond: Expr::Bool(true),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn erase_annotations_removes_only_annots() {
        let mut f = mini_function();
        let l = f.fresh_label();
        f.block_mut(BlockId(0)).instrs.push(Inst::new(
            l,
            Op::Annot {
                kind: AnnotKind::Fresh,
                var: "x".into(),
            },
        ));
        let mut p = Program::from_parts(vec![f], vec![], vec![], FuncId(0), 0);
        assert_eq!(p.annotations().len(), 1);
        p.erase_annotations();
        assert_eq!(p.annotations().len(), 0);
        assert_eq!(p.func(FuncId(0)).block(BlockId(0)).instrs.len(), 1);
    }
}
