//! Structural validation of lowered programs.
//!
//! Enforces the modeling-language discipline the paper's analyses assume
//! (§3.3, §5.2, Appendix G):
//!
//! * no recursion (direct or mutual);
//! * every `IN()` reads a declared sensor channel;
//! * every variable read resolves to a parameter, local, or global;
//! * dereferences only through by-mutable-reference parameters;
//! * indexed stores/reads only on declared global arrays;
//! * call-site arity and by-ref/by-value shape match the callee, and no
//!   two reference arguments of a call alias the same location (Rust's
//!   unique-mutable-borrow rule);
//! * `startatom`/`endatom` pairs match within each function.

use crate::ast::{Arg, Expr};
use crate::callgraph::CallGraph;
use crate::error::{IrError, Result};
use crate::ir::{Function, Op, Place, Program, RegionId};
use std::collections::{HashMap, HashSet};

/// Validates `p`, returning the first violation found.
///
/// # Errors
///
/// [`IrError::Validate`] describing the violated rule.
pub fn validate(p: &Program) -> Result<()> {
    let cg = CallGraph::new(p);
    cg.topo_callees_first(p)?;
    for f in &p.funcs {
        validate_function(p, f)?;
    }
    Ok(())
}

/// Checks that every instruction and terminator in `p` carries a real
/// (non-empty) source [`Span`](crate::span::Span).
///
/// Lowering threads statement spans onto everything it emits, so any
/// program produced by [`compile`](crate::lower::compile) satisfies
/// this; the diagnostics layer relies on it to anchor findings at
/// source locations. Builder-made programs are exempt (their AST has no
/// source text) and must not be passed here.
///
/// # Errors
///
/// [`IrError::Validate`] naming the first unspanned instruction.
pub fn validate_spans(p: &Program) -> Result<()> {
    for f in &p.funcs {
        for b in &f.blocks {
            for inst in &b.instrs {
                if inst.span.is_empty() {
                    return Err(IrError::validate(format!(
                        "instruction {:?} ({:?}) in `{}` has no source span",
                        inst.label, inst.op, f.name
                    )));
                }
            }
            if b.term_span.is_empty() {
                return Err(IrError::validate(format!(
                    "terminator of block {:?} in `{}` has no source span",
                    b.id, f.name
                )));
            }
        }
    }
    Ok(())
}

fn validate_function(p: &Program, f: &Function) -> Result<()> {
    let locals: HashSet<&String> = f.locals.iter().collect();
    let params: HashMap<&String, bool> = f.params.iter().map(|q| (&q.name, q.by_ref)).collect();

    let known = |name: &String| -> bool {
        locals.contains(name) || params.contains_key(name) || p.is_global(name)
    };

    let check_expr = |e: &Expr, where_: &str| -> Result<()> {
        let mut stack = vec![e];
        while let Some(e) = stack.pop() {
            match e {
                Expr::Int(_) | Expr::Bool(_) => {}
                Expr::Var(x) => {
                    if !known(x) {
                        return Err(IrError::validate(format!(
                            "unknown variable `{x}` in {where_} of `{}`",
                            f.name
                        )));
                    }
                    if let Some(g) = p.global(x) {
                        if g.array_len.is_some() {
                            return Err(IrError::validate(format!(
                                "array `{x}` read without an index in `{}`",
                                f.name
                            )));
                        }
                    }
                }
                Expr::Deref(x) => {
                    if params.get(x) != Some(&true) {
                        return Err(IrError::validate(format!(
                            "`*{x}` in `{}` dereferences a non-reference",
                            f.name
                        )));
                    }
                }
                Expr::Ref(x) => {
                    // `&x` appears only in call arguments; reaching one
                    // inside a general expression is a misuse.
                    return Err(IrError::validate(format!(
                        "`&{x}` used outside a call argument in `{}`",
                        f.name
                    )));
                }
                Expr::Index(a, i) => {
                    match p.global(a) {
                        Some(g) if g.array_len.is_some() => {}
                        _ => {
                            return Err(IrError::validate(format!(
                                "`{a}[..]` in `{}` indexes a non-array",
                                f.name
                            )))
                        }
                    }
                    stack.push(i);
                }
                Expr::Binary(_, l, r) => {
                    stack.push(l);
                    stack.push(r);
                }
                Expr::Unary(_, x) => stack.push(x),
            }
        }
        Ok(())
    };

    for b in &f.blocks {
        for inst in &b.instrs {
            match &inst.op {
                Op::Skip => {}
                Op::Bind { src, .. } => check_expr(src, "binding")?,
                Op::Assign { place, src } => {
                    check_expr(src, "assignment")?;
                    match place {
                        Place::Var(x) => {
                            if !known(x) {
                                return Err(IrError::validate(format!(
                                    "assignment to unknown variable `{x}` in `{}`",
                                    f.name
                                )));
                            }
                            if let Some(g) = p.global(x) {
                                if g.array_len.is_some() {
                                    return Err(IrError::validate(format!(
                                        "array `{x}` assigned without an index in `{}`",
                                        f.name
                                    )));
                                }
                            }
                            if params.get(x) == Some(&true) {
                                return Err(IrError::validate(format!(
                                    "reference parameter `{x}` reassigned in `{}`; store through `*{x}` instead",
                                    f.name
                                )));
                            }
                        }
                        Place::Index(a, i) => {
                            match p.global(a) {
                                Some(g) if g.array_len.is_some() => {}
                                _ => {
                                    return Err(IrError::validate(format!(
                                        "`{a}[..] =` in `{}` stores to a non-array",
                                        f.name
                                    )))
                                }
                            }
                            check_expr(i, "array index")?;
                        }
                        Place::Deref(x) => {
                            if params.get(x) != Some(&true) {
                                return Err(IrError::validate(format!(
                                    "`*{x} =` in `{}` stores through a non-reference",
                                    f.name
                                )));
                            }
                        }
                    }
                }
                Op::Input { sensor, .. } => {
                    if !p.is_sensor(sensor) {
                        return Err(IrError::validate(format!(
                            "input from undeclared sensor `{sensor}` in `{}`",
                            f.name
                        )));
                    }
                }
                Op::Call { callee, args, .. } => {
                    let callee_fn = p.func(*callee);
                    if callee_fn.params.len() != args.len() {
                        return Err(IrError::validate(format!(
                            "call to `{}` in `{}` passes {} args but it takes {}",
                            callee_fn.name,
                            f.name,
                            args.len(),
                            callee_fn.params.len()
                        )));
                    }
                    let mut ref_targets = HashSet::new();
                    for (a, param) in args.iter().zip(&callee_fn.params) {
                        match a {
                            Arg::Value(e) => {
                                if param.by_ref {
                                    return Err(IrError::validate(format!(
                                        "call to `{}` in `{}`: parameter `{}` needs `&`",
                                        callee_fn.name, f.name, param.name
                                    )));
                                }
                                check_expr(e, "call argument")?;
                            }
                            Arg::Ref(x) => {
                                if !param.by_ref {
                                    return Err(IrError::validate(format!(
                                        "call to `{}` in `{}`: parameter `{}` is by-value but got `&{x}`",
                                        callee_fn.name, f.name, param.name
                                    )));
                                }
                                let is_forwarded_ref = params.get(x) == Some(&true);
                                if !known(x) {
                                    return Err(IrError::validate(format!(
                                        "`&{x}` in `{}` references an unknown variable",
                                        f.name
                                    )));
                                }
                                if let Some(g) = p.global(x) {
                                    if g.array_len.is_some() {
                                        return Err(IrError::validate(format!(
                                            "`&{x}` in `{}` references a whole array",
                                            f.name
                                        )));
                                    }
                                }
                                let _ = is_forwarded_ref;
                                if !ref_targets.insert(x.clone()) {
                                    return Err(IrError::validate(format!(
                                        "call to `{}` in `{}` passes `&{x}` twice (aliasing mutable borrows)",
                                        callee_fn.name, f.name
                                    )));
                                }
                            }
                        }
                    }
                }
                Op::Output { args, .. } => {
                    for e in args {
                        check_expr(e, "output argument")?;
                    }
                }
                // Bound annotations carry a placeholder ident, not a
                // variable — there is nothing to resolve.
                Op::Annot {
                    kind: crate::ir::AnnotKind::Bound(_),
                    ..
                } => {}
                Op::Annot { var, .. } => {
                    if !known(var) {
                        return Err(IrError::validate(format!(
                            "annotation on unknown variable `{var}` in `{}`",
                            f.name
                        )));
                    }
                }
                Op::AtomStart { .. } | Op::AtomEnd { .. } => {}
            }
        }
        if let crate::ir::Terminator::Branch { cond, .. } = &b.term {
            check_expr(cond, "branch condition")?;
        }
        if let crate::ir::Terminator::Ret(Some(e)) = &b.term {
            check_expr(e, "return value")?;
        }
    }

    check_region_pairing(f)?;
    Ok(())
}

/// Checks that every region id opened in `f` is also closed in `f`, and
/// vice versa. (Start/end of one region must live in the same function —
/// Algorithm 1 places both in the goal function.)
fn check_region_pairing(f: &Function) -> Result<()> {
    let mut starts: HashMap<RegionId, usize> = HashMap::new();
    let mut ends: HashMap<RegionId, usize> = HashMap::new();
    for (_, inst) in f.iter_insts() {
        match inst.op {
            Op::AtomStart { region } => *starts.entry(region).or_insert(0) += 1,
            Op::AtomEnd { region } => *ends.entry(region).or_insert(0) += 1,
            _ => {}
        }
    }
    for (r, n) in &starts {
        if ends.get(r) != Some(n) {
            return Err(IrError::validate(format!(
                "atomic region {r:?} opened {n} time(s) in `{}` but closed {} time(s)",
                f.name,
                ends.get(r).copied().unwrap_or(0)
            )));
        }
    }
    for r in ends.keys() {
        if !starts.contains_key(r) {
            return Err(IrError::validate(format!(
                "atomic region {r:?} closed in `{}` without a start",
                f.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    fn check(src: &str) -> Result<()> {
        validate(&compile(src)?)
    }

    #[test]
    fn accepts_well_formed_program() {
        check(
            r#"
            sensor temp;
            nv log[8];
            nv count = 0;
            fn norm(v) { return v * 2; }
            fn sense(&dst) {
                let t = in(temp);
                let n = norm(t);
                *dst = n;
            }
            fn main() {
                let x = 0;
                sense(&x);
                log[count] = x;
                count = count + 1;
            }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared_sensor() {
        let err = check("fn main() { let x = in(ghost); }").unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn rejects_unknown_variable_use() {
        let err = check("fn main() { let x = y + 1; }").unwrap_err();
        assert!(err.to_string().contains('y'));
    }

    #[test]
    fn rejects_deref_of_non_reference() {
        let err = check("fn main() { let x = 1; let y = *x; }").unwrap_err();
        assert!(err.to_string().contains("*x"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let err = check("fn f(a, b) {} fn main() { f(1); }").unwrap_err();
        assert!(err.to_string().contains("1 args"));
    }

    #[test]
    fn rejects_missing_ref_marker() {
        let err = check("fn f(&a) {} fn main() { let x = 1; f(x); }").unwrap_err();
        assert!(err.to_string().contains("needs `&`"));
    }

    #[test]
    fn rejects_ref_to_by_value_param() {
        let err = check("fn f(a) {} fn main() { let x = 1; f(&x); }").unwrap_err();
        assert!(err.to_string().contains("by-value"));
    }

    #[test]
    fn rejects_aliasing_mutable_borrows() {
        let err = check("fn f(&a, &b) {} fn main() { let x = 1; f(&x, &x); }").unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn rejects_recursion() {
        let err = check("fn main() { main(); }").unwrap_err();
        assert!(err.to_string().contains("recursi"));
    }

    #[test]
    fn rejects_indexing_scalar() {
        let err = check("nv g = 0; fn main() { let x = g[0]; }").unwrap_err();
        assert!(err.to_string().contains("non-array"));
    }

    #[test]
    fn rejects_whole_array_read() {
        let err = check("nv a[4]; fn main() { let x = a; }").unwrap_err();
        assert!(err.to_string().contains("without an index"));
    }

    #[test]
    fn rejects_store_to_undeclared_array() {
        let err = check("fn main() { a[0] = 1; }").unwrap_err();
        assert!(err.to_string().contains("non-array"));
    }

    #[test]
    fn accepts_manual_atomic_blocks() {
        check("sensor s; fn main() { atomic { let x = in(s); out(log, x); } }").unwrap();
    }

    #[test]
    fn rejects_reassigning_ref_param() {
        let err = check("fn f(&a) { a = 3; } fn main() { let x = 1; f(&x); }").unwrap_err();
        assert!(err.to_string().contains("store through"));
    }

    #[test]
    fn global_scalar_reads_and_writes_ok() {
        check("nv g = 5; fn main() { let x = g; g = x + 1; }").unwrap();
    }
}
