//! Pretty-printing of lowered programs, for debugging and golden tests.

use crate::ast::{Arg, Expr};
use crate::ir::{Function, Op, Place, Program, Terminator};
use std::fmt::Write as _;

/// Renders an expression in surface syntax.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Int(n) => n.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Var(x) => x.clone(),
        Expr::Deref(x) => format!("*{x}"),
        Expr::Ref(x) => format!("&{x}"),
        Expr::Index(a, i) => format!("{a}[{}]", expr_to_string(i)),
        Expr::Binary(op, l, r) => {
            format!("({} {} {})", expr_to_string(l), op, expr_to_string(r))
        }
        Expr::Unary(op, x) => format!("{op}{}", expr_to_string(x)),
    }
}

fn arg_to_string(a: &Arg) -> String {
    match a {
        Arg::Value(e) => expr_to_string(e),
        Arg::Ref(x) => format!("&{x}"),
    }
}

/// Renders one IR operation.
pub fn op_to_string(p: &Program, op: &Op) -> String {
    match op {
        Op::Skip => "skip".into(),
        Op::Bind { var, src } => format!("let {var} = {}", expr_to_string(src)),
        Op::Assign { place, src } => {
            let lhs = match place {
                Place::Var(x) => x.clone(),
                Place::Index(a, i) => format!("{a}[{}]", expr_to_string(i)),
                Place::Deref(x) => format!("*{x}"),
            };
            format!("{lhs} = {}", expr_to_string(src))
        }
        Op::Input { var, sensor } => format!("let {var} = in({sensor})"),
        Op::Call { dst, callee, args } => {
            let args: Vec<_> = args.iter().map(arg_to_string).collect();
            let call = format!("{}({})", p.func(*callee).name, args.join(", "));
            match dst {
                Some(d) => format!("let {d} = {call}"),
                None => call,
            }
        }
        Op::Output { channel, args } => {
            let args: Vec<_> = args.iter().map(expr_to_string).collect();
            if args.is_empty() {
                format!("out({channel})")
            } else {
                format!("out({channel}, {})", args.join(", "))
            }
        }
        Op::Annot { kind, var } => match kind {
            crate::ir::AnnotKind::Fresh => format!("fresh({var})"),
            crate::ir::AnnotKind::Consistent(id) => format!("consistent({var}, {id})"),
            crate::ir::AnnotKind::Bound(k) => format!("@bound({k})"),
        },
        Op::AtomStart { region } => format!("startatom(r{})", region.0),
        Op::AtomEnd { region } => format!("endatom(r{})", region.0),
    }
}

/// Renders one function with block structure and labels.
pub fn function_to_string(p: &Program, f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<_> = f
        .params
        .iter()
        .map(|q| {
            if q.by_ref {
                format!("&{}", q.name)
            } else {
                q.name.clone()
            }
        })
        .collect();
    let _ = writeln!(s, "fn {}({}) {{", f.name, params.join(", "));
    for b in &f.blocks {
        let marks = if b.id == f.entry && b.id == f.exit {
            " (entry, exit)"
        } else if b.id == f.entry {
            " (entry)"
        } else if b.id == f.exit {
            " (exit)"
        } else {
            ""
        };
        let _ = writeln!(s, "  bb{}:{marks}", b.id.0);
        for inst in &b.instrs {
            let _ = writeln!(s, "    l{}: {}", inst.label.0, op_to_string(p, &inst.op));
        }
        let term = match &b.term {
            Terminator::Jump(t) => format!("jump bb{}", t.0),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => format!(
                "br {} ? bb{} : bb{}",
                expr_to_string(cond),
                then_bb.0,
                else_bb.0
            ),
            Terminator::Ret(Some(e)) => format!("ret {}", expr_to_string(e)),
            Terminator::Ret(None) => "ret".into(),
        };
        let _ = writeln!(s, "    l{}: {term}", b.term_label.0);
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders the whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    for sensor in &p.sensors {
        let _ = writeln!(s, "sensor {sensor};");
    }
    for g in &p.globals {
        match g.array_len {
            Some(n) => {
                let _ = writeln!(s, "nv {}[{n}];", g.name);
            }
            None => {
                let _ = writeln!(s, "nv {} = {};", g.name, g.init);
            }
        }
    }
    for f in &p.funcs {
        s.push_str(&function_to_string(p, f));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    #[test]
    fn prints_every_construct() {
        let p = compile(
            r#"
            sensor temp;
            nv hist[4];
            nv n = 0;
            fn norm(v, &o) { *o = v; return v + 1; }
            fn main() {
                let fresh x = 0;
                let t = in(temp);
                let y = norm(t, &x);
                consistent(y, 1);
                if y > 5 { out(alarm, y); }
                hist[n] = y;
                atomic { skip; }
            }
            "#,
        )
        .unwrap();
        let text = program_to_string(&p);
        for needle in [
            "sensor temp;",
            "nv hist[4];",
            "nv n = 0;",
            "let t = in(temp)",
            "norm(t, &x)",
            "consistent(y, 1)",
            "fresh(x)",
            "out(alarm, y)",
            "hist[",
            "startatom(r0)",
            "endatom(r0)",
            "br (y > 5)",
            "(entry)",
            "(exit)",
            "ret",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn expr_rendering_parenthesizes() {
        let p = compile("fn main() { let x = 1 + 2 * 3; }").unwrap();
        let text = program_to_string(&p);
        assert!(text.contains("(1 + (2 * 3))"), "{text}");
    }
}
