//! AST-level transformation passes.
//!
//! * [`unroll_repeats`] — the paper's formal model has no loop
//!   construct: "bound loops can be unrolled to if statements"
//!   (§4.1). This pass performs that unrolling, turning each `repeat n`
//!   into `n` copies of its body. After unrolling, every dynamic input
//!   collection has its own static instruction, which makes the §7.3
//!   bit-vector detector maximally precise and lets region inference
//!   place boundaries between former iterations.
//! * [`fold_constants`] — constant folding over expressions, the usual
//!   compiler hygiene (and it keeps unrolled code from bloating the
//!   cost model with dead arithmetic).

use crate::ast::{Arg, AstProgram, BinOp, Block, Expr, Stmt, UnOp};
use crate::error::{IrError, Result};

/// Replaces every `repeat n { body }` with `n` inlined copies of the
/// body, recursively (inner loops unroll first, so nested repeats
/// multiply). Alpha-renaming during lowering keeps per-copy `let`
/// bindings distinct.
///
/// # Errors
///
/// Returns [`IrError::Lower`] when the total unrolled statement count
/// would exceed `max_stmts` — the same role as the paper's assumption
/// that loops are *bounded*.
pub fn unroll_repeats(ast: &AstProgram, max_stmts: usize) -> Result<AstProgram> {
    let mut out = ast.clone();
    let mut budget = max_stmts;
    for f in &mut out.funcs {
        f.body = unroll_block(&f.body, &mut budget)?;
    }
    Ok(out)
}

fn unroll_block(block: &Block, budget: &mut usize) -> Result<Block> {
    let mut stmts = Vec::new();
    for s in &block.stmts {
        match s {
            Stmt::Repeat(n, body, span) => {
                let inner = unroll_block(body, budget)?;
                let copies = *n as usize;
                let cost = inner.stmts.len().saturating_mul(copies);
                if cost > *budget {
                    return Err(IrError::lower(format!(
                        "unrolling a repeat {n} would exceed the statement budget"
                    )));
                }
                *budget -= cost;
                for _ in 0..copies {
                    stmts.extend(inner.stmts.iter().cloned());
                }
                let _ = span;
            }
            Stmt::If(c, t, e, span) => {
                stmts.push(Stmt::If(
                    c.clone(),
                    unroll_block(t, budget)?,
                    match e {
                        Some(e) => Some(unroll_block(e, budget)?),
                        None => None,
                    },
                    *span,
                ));
            }
            Stmt::Atomic(b, span) => {
                stmts.push(Stmt::Atomic(unroll_block(b, budget)?, *span));
            }
            Stmt::While(..) => {
                // The formal model's unrolling applies to bounded loops
                // only (§4.1); a `while` has no static trip count.
                return Err(IrError::lower(
                    "cannot unroll a `while` loop: no static trip count",
                ));
            }
            other => stmts.push(other.clone()),
        }
    }
    Ok(Block::new(stmts))
}

/// Folds constant sub-expressions throughout the program
/// (`1 + 2 * 3` → `7`, `!false` → `true`, `if true`-style conditions
/// are left to the caller since branches carry control dependence).
pub fn fold_constants(ast: &AstProgram) -> AstProgram {
    let mut out = ast.clone();
    for f in &mut out.funcs {
        f.body = fold_block(&f.body);
    }
    out
}

fn fold_block(block: &Block) -> Block {
    Block::new(block.stmts.iter().map(fold_stmt).collect())
}

fn fold_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Let(x, e, sp) => Stmt::Let(x.clone(), fold_expr(e), *sp),
        Stmt::LetFresh(x, e, sp) => Stmt::LetFresh(x.clone(), fold_expr(e), *sp),
        Stmt::LetConsistent(id, x, e, sp) => Stmt::LetConsistent(*id, x.clone(), fold_expr(e), *sp),
        Stmt::LetCall(x, f, args, sp) => Stmt::LetCall(
            x.clone(),
            f.clone(),
            args.iter().map(fold_arg).collect(),
            *sp,
        ),
        Stmt::CallStmt(f, args, sp) => {
            Stmt::CallStmt(f.clone(), args.iter().map(fold_arg).collect(), *sp)
        }
        Stmt::Assign(x, e, sp) => Stmt::Assign(x.clone(), fold_expr(e), *sp),
        Stmt::AssignIndex(a, i, e, sp) => {
            Stmt::AssignIndex(a.clone(), fold_expr(i), fold_expr(e), *sp)
        }
        Stmt::AssignDeref(x, e, sp) => Stmt::AssignDeref(x.clone(), fold_expr(e), *sp),
        Stmt::If(c, t, e, sp) => {
            Stmt::If(fold_expr(c), fold_block(t), e.as_ref().map(fold_block), *sp)
        }
        Stmt::Repeat(n, b, sp) => Stmt::Repeat(*n, fold_block(b), *sp),
        Stmt::While(c, bound, b, sp) => Stmt::While(fold_expr(c), *bound, fold_block(b), *sp),
        Stmt::Atomic(b, sp) => Stmt::Atomic(fold_block(b), *sp),
        Stmt::Out(ch, args, sp) => Stmt::Out(ch.clone(), args.iter().map(fold_expr).collect(), *sp),
        Stmt::Return(e, sp) => Stmt::Return(e.as_ref().map(fold_expr), *sp),
        other => other.clone(),
    }
}

fn fold_arg(a: &Arg) -> Arg {
    match a {
        Arg::Value(e) => Arg::Value(fold_expr(e)),
        Arg::Ref(x) => Arg::Ref(x.clone()),
    }
}

/// Folds one expression bottom-up.
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Binary(op, l, r) => {
            let l = fold_expr(l);
            let r = fold_expr(r);
            match (&l, &r) {
                (Expr::Int(a), Expr::Int(b)) => fold_int_binop(*op, *a, *b),
                (Expr::Bool(a), Expr::Bool(b)) => match op {
                    BinOp::And => Expr::Bool(*a && *b),
                    BinOp::Or => Expr::Bool(*a || *b),
                    BinOp::Eq => Expr::Bool(a == b),
                    BinOp::Ne => Expr::Bool(a != b),
                    _ => Expr::Binary(*op, Box::new(l), Box::new(r)),
                },
                // Algebraic identities that need no operand knowledge.
                (Expr::Int(0), _) if *op == BinOp::Add => r,
                (_, Expr::Int(0)) if *op == BinOp::Add || *op == BinOp::Sub => l,
                (_, Expr::Int(1)) if *op == BinOp::Mul || *op == BinOp::Div => l,
                (Expr::Int(1), _) if *op == BinOp::Mul => r,
                _ => Expr::Binary(*op, Box::new(l), Box::new(r)),
            }
        }
        Expr::Unary(op, x) => {
            let x = fold_expr(x);
            match (&op, &x) {
                (UnOp::Neg, Expr::Int(n)) => Expr::Int(n.wrapping_neg()),
                (UnOp::Not, Expr::Bool(b)) => Expr::Bool(!b),
                _ => Expr::Unary(*op, Box::new(x)),
            }
        }
        Expr::Index(a, i) => Expr::Index(a.clone(), Box::new(fold_expr(i))),
        other => other.clone(),
    }
}

fn fold_int_binop(op: BinOp, a: i64, b: i64) -> Expr {
    match op {
        BinOp::Add => Expr::Int(a.wrapping_add(b)),
        BinOp::Sub => Expr::Int(a.wrapping_sub(b)),
        BinOp::Mul => Expr::Int(a.wrapping_mul(b)),
        BinOp::Div => Expr::Int(if b == 0 { 0 } else { a.wrapping_div(b) }),
        BinOp::Rem => Expr::Int(if b == 0 { 0 } else { a.wrapping_rem(b) }),
        BinOp::Eq => Expr::Bool(a == b),
        BinOp::Ne => Expr::Bool(a != b),
        BinOp::Lt => Expr::Bool(a < b),
        BinOp::Le => Expr::Bool(a <= b),
        BinOp::Gt => Expr::Bool(a > b),
        BinOp::Ge => Expr::Bool(a >= b),
        BinOp::And => Expr::Bool(a != 0 && b != 0),
        BinOp::Or => Expr::Bool(a != 0 || b != 0),
    }
}

/// Convenience: parse, unroll bounded loops, fold constants, and lower.
///
/// # Errors
///
/// Propagates parse, unroll-budget, and lowering errors.
pub fn compile_unrolled(src: &str, max_stmts: usize) -> Result<crate::ir::Program> {
    let ast = crate::parser::parse(src)?;
    let ast = unroll_repeats(&ast, max_stmts)?;
    let ast = fold_constants(&ast);
    crate::lower::lower(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn unroll_replicates_bodies() {
        let ast =
            parse("sensor s; fn main() { repeat 3 { let v = in(s); out(log, v); } }").unwrap();
        let u = unroll_repeats(&ast, 1000).unwrap();
        let main = u.func("main").unwrap();
        assert_eq!(main.body.stmts.len(), 6, "3 copies × 2 statements");
        assert!(main
            .body
            .stmts
            .iter()
            .all(|s| !matches!(s, Stmt::Repeat(..))));
    }

    #[test]
    fn nested_unroll_multiplies() {
        let ast =
            parse("sensor s; fn main() { repeat 2 { repeat 3 { let v = in(s); } } }").unwrap();
        let u = unroll_repeats(&ast, 1000).unwrap();
        assert_eq!(u.func("main").unwrap().body.stmts.len(), 6);
    }

    #[test]
    fn unroll_budget_is_enforced() {
        let ast = parse("fn main() { repeat 100 { skip; skip; skip; } }").unwrap();
        assert!(unroll_repeats(&ast, 100).is_err());
        assert!(unroll_repeats(&ast, 300).is_ok());
    }

    #[test]
    fn unroll_rejects_while_loops() {
        let ast = parse("nv g = 1; fn main() { while g > 0 { g = g - 1; } }").unwrap();
        let err = unroll_repeats(&ast, 1000).unwrap_err();
        assert!(err.to_string().contains("while"), "{err}");
    }

    #[test]
    fn fold_recurses_into_while() {
        let ast = parse("nv g = 1; fn main() { while g > 0 { g = 1 + 2; } }").unwrap();
        let folded = fold_constants(&ast);
        let main = folded.func("main").unwrap();
        match &main.body.stmts[0] {
            Stmt::While(_, _, body, _) => match &body.stmts[0] {
                Stmt::Assign(_, Expr::Int(3), _) => {}
                other => panic!("not folded: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unrolled_program_executes_identically() {
        // Lower both forms and check the loop math agrees via the count
        // of input instructions.
        let src = "sensor s; fn main() { let sum = 0; repeat 4 { let v = in(s); sum = sum + v; } out(log, sum); }";
        let rolled = crate::lower::compile(src).unwrap();
        let unrolled = compile_unrolled(src, 10_000).unwrap();
        assert_eq!(rolled.input_ops().len(), 1, "one static op in the loop");
        assert_eq!(unrolled.input_ops().len(), 4, "four static ops unrolled");
    }

    #[test]
    fn fold_evaluates_constant_arithmetic() {
        assert_eq!(fold_expr(&parse_expr("1 + 2 * 3")), Expr::Int(7));
        assert_eq!(
            fold_expr(&parse_expr("10 / 0")),
            Expr::Int(0),
            "saturating div"
        );
        assert_eq!(fold_expr(&parse_expr("4 > 3")), Expr::Bool(true));
        assert_eq!(fold_expr(&parse_expr("-(5)")), Expr::Int(-5));
    }

    #[test]
    fn fold_applies_identities() {
        assert_eq!(fold_expr(&parse_expr("x + 0")), Expr::Var("x".into()));
        assert_eq!(fold_expr(&parse_expr("0 + x")), Expr::Var("x".into()));
        assert_eq!(fold_expr(&parse_expr("x * 1")), Expr::Var("x".into()));
        assert_eq!(fold_expr(&parse_expr("x - 0")), Expr::Var("x".into()));
    }

    #[test]
    fn fold_preserves_non_constant_structure() {
        let e = parse_expr("x * 2 + g");
        assert_eq!(fold_expr(&e), e);
    }

    #[test]
    fn fold_descends_into_statements() {
        let ast = parse("fn main() { let x = 2 + 3; if x > 1 + 1 { out(log, x); } }").unwrap();
        let folded = fold_constants(&ast);
        match &folded.func("main").unwrap().body.stmts[0] {
            Stmt::Let(_, Expr::Int(5), _) => {}
            other => panic!("expected folded let, got {other:?}"),
        }
        match &folded.func("main").unwrap().body.stmts[1] {
            Stmt::If(Expr::Binary(BinOp::Gt, _, rhs), ..) => {
                assert_eq!(**rhs, Expr::Int(2));
            }
            other => panic!("expected folded if, got {other:?}"),
        }
    }

    fn parse_expr(src: &str) -> Expr {
        let wrapped = format!("fn main() {{ let tmpvar = {src}; }}");
        let ast = parse(&wrapped).unwrap();
        match &ast.funcs[0].body.stmts[0] {
            Stmt::Let(_, e, _) => e.clone(),
            _ => unreachable!(),
        }
    }
}
