//! Abstract syntax tree of the Ocelot modeling language.
//!
//! This is the language of Appendix A of the paper, extended with the two
//! timing annotations of §4.2 (`let fresh` / `let consistent(n)` and the
//! statement forms `fresh(x)` / `consistent(x, n)`), bounded `repeat`
//! loops, input channels (`sensor` declarations plus `in(chan)`), output
//! operations (`out(chan, e...)`), and explicit `atomic { ... }` regions
//! for programs that place regions manually (§8).

use crate::span::Span;
use std::fmt;

/// An identifier (variable, function, sensor, or channel name).
pub type Ident = String;

/// Binary operators `e1 ⊙ e2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division; division by zero evaluates to 0 in the
    /// interpreter, mirroring a saturating embedded ALU)
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// The surface-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators `⊘ e`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// Expressions `e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// A variable read `x`.
    Var(Ident),
    /// An array element read `a[e]`.
    Index(Ident, Box<Expr>),
    /// A dereference read `*x`.
    Deref(Ident),
    /// Taking a reference `&x` (only valid as a call argument).
    Ref(Ident),
    /// `e1 ⊙ e2`.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `⊘ e`.
    Unary(UnOp, Box<Expr>),
}

impl Expr {
    /// Collects every variable mentioned by the expression into `out`,
    /// including array bases and dereferenced/referenced variables.
    pub fn collect_vars(&self, out: &mut Vec<Ident>) {
        match self {
            Expr::Int(_) | Expr::Bool(_) => {}
            Expr::Var(x) | Expr::Deref(x) | Expr::Ref(x) => out.push(x.clone()),
            Expr::Index(a, i) => {
                out.push(a.clone());
                i.collect_vars(out);
            }
            Expr::Binary(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Expr::Unary(_, e) => e.collect_vars(out),
        }
    }

    /// Returns all variables mentioned by the expression.
    pub fn vars(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }
}

/// A call argument: either an expression passed by value or `&x` passed by
/// mutable reference (the paper's `pbr` parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// Pass-by-value expression.
    Value(Expr),
    /// Pass-by-mutable-reference `&x`.
    Ref(Ident),
}

/// Statements of the surface language.
///
/// Surface statements are block-scoped rather than the formal `let x = e in
/// c` nesting; the two are interconvertible and the block form matches the
/// Rust programs the paper's tool consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `skip;`
    Skip(Span),
    /// `let x = e;`
    Let(Ident, Expr, Span),
    /// `let fresh x = e;` — binds `x` and declares a freshness policy.
    LetFresh(Ident, Expr, Span),
    /// `let consistent(n) x = e;` — binds `x` into consistent set `n`.
    LetConsistent(u32, Ident, Expr, Span),
    /// `let x = f(args);`
    LetCall(Ident, Ident, Vec<Arg>, Span),
    /// `let x = in(chan);` — input operation on sensor channel `chan`.
    LetInput(Ident, Ident, Span),
    /// `x = e;` — assignment to an already-bound variable or global.
    Assign(Ident, Expr, Span),
    /// `a[i] = e;`
    AssignIndex(Ident, Expr, Expr, Span),
    /// `*x = e;` — store through a reference.
    AssignDeref(Ident, Expr, Span),
    /// `fresh(x);` — statement-form freshness annotation on existing `x`.
    FreshAnnot(Ident, Span),
    /// `consistent(x, n);` — statement-form consistency annotation.
    ConsistentAnnot(Ident, u32, Span),
    /// `if e { .. } else { .. }` (else optional).
    If(Expr, Block, Option<Block>, Span),
    /// `repeat n { .. }` — bounded loop with a static trip count.
    Repeat(u64, Block, Span),
    /// `while e { .. }` — loop with a re-evaluated condition. The
    /// paper's formal model presents bounded loops only ("unbounded
    /// loops do not introduce technical difficulties", §4.1); the
    /// toolchain supports them, and the forward-progress analysis
    /// recovers a trip count from monotone-counter shapes or from an
    /// explicit `while e @bound k { .. }` declaration (the `Option`
    /// here), reporting everything else as unbounded.
    While(Expr, Option<u64>, Block, Span),
    /// `atomic { .. }` — a manually-placed atomic region (§8).
    Atomic(Block, Span),
    /// `f(args);` — call for effect, result discarded.
    CallStmt(Ident, Vec<Arg>, Span),
    /// `out(chan, e...);` — output operation.
    Out(Ident, Vec<Expr>, Span),
    /// `return e;` / `return;`
    Return(Option<Expr>, Span),
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Skip(s)
            | Stmt::Let(_, _, s)
            | Stmt::LetFresh(_, _, s)
            | Stmt::LetConsistent(_, _, _, s)
            | Stmt::LetCall(_, _, _, s)
            | Stmt::LetInput(_, _, s)
            | Stmt::Assign(_, _, s)
            | Stmt::AssignIndex(_, _, _, s)
            | Stmt::AssignDeref(_, _, s)
            | Stmt::FreshAnnot(_, s)
            | Stmt::ConsistentAnnot(_, _, s)
            | Stmt::If(_, _, _, s)
            | Stmt::Repeat(_, _, s)
            | Stmt::While(_, _, _, s)
            | Stmt::Atomic(_, s)
            | Stmt::CallStmt(_, _, s)
            | Stmt::Out(_, _, s)
            | Stmt::Return(_, s) => *s,
        }
    }
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }
}

/// A function parameter: by-value or by-mutable-reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: Ident,
    /// True for `&x` reference parameters.
    pub by_ref: bool,
}

/// A function declaration `fn f(params) { body }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunDecl {
    /// Function name.
    pub name: Ident,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Function body.
    pub body: Block,
    /// Source span of the declaration header.
    pub span: Span,
}

/// A non-volatile global declaration `nv g = 0;` or `nv a[16];`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Global name.
    pub name: Ident,
    /// For arrays, the static length; scalars are `None`.
    pub array_len: Option<usize>,
    /// Initial value for scalars (arrays zero-initialize).
    pub init: i64,
    /// Source span.
    pub span: Span,
}

/// A sensor (input channel) declaration `sensor temp;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensorDecl {
    /// Channel name referenced by `in(name)`.
    pub name: Ident,
    /// Source span.
    pub span: Span,
}

/// A complete source program: sensors, globals, and functions (one of
/// which must be `main`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AstProgram {
    /// Declared input channels.
    pub sensors: Vec<SensorDecl>,
    /// Declared non-volatile globals.
    pub globals: Vec<GlobalDecl>,
    /// Declared functions.
    pub funcs: Vec<FunDecl>,
}

impl AstProgram {
    /// Looks up a function declaration by name.
    pub fn func(&self, name: &str) -> Option<&FunDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_vars_collects_all_mentions() {
        // a[i] + *p && !q
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Index("a".into(), Box::new(Expr::Var("i".into())))),
                Box::new(Expr::Deref("p".into())),
            )),
            Box::new(Expr::Unary(UnOp::Not, Box::new(Expr::Var("q".into())))),
        );
        assert_eq!(e.vars(), vec!["a", "i", "p", "q"]);
    }

    #[test]
    fn binop_symbols_are_distinct() {
        use std::collections::HashSet;
        let all = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
        ];
        let set: HashSet<_> = all.iter().map(|o| o.symbol()).collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn stmt_span_accessor_matches() {
        let s = Stmt::Skip(Span::new(3, 8));
        assert_eq!(s.span(), Span::new(3, 8));
    }
}
