//! Surface-syntax printer for the AST: emits source text that re-parses
//! to a structurally identical program (spans aside). Used for program
//! persistence and for parser round-trip testing.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program in surface syntax.
pub fn ast_to_source(p: &AstProgram) -> String {
    let mut s = String::new();
    for sensor in &p.sensors {
        let _ = writeln!(s, "sensor {};", sensor.name);
    }
    for g in &p.globals {
        match g.array_len {
            Some(n) => {
                let _ = writeln!(s, "nv {}[{n}];", g.name);
            }
            None => {
                let _ = writeln!(s, "nv {} = {};", g.name, g.init);
            }
        }
    }
    for f in &p.funcs {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|q| {
                if q.by_ref {
                    format!("&{}", q.name)
                } else {
                    q.name.clone()
                }
            })
            .collect();
        let _ = writeln!(s, "fn {}({}) {{", f.name, params.join(", "));
        write_block(&mut s, &f.body, 1);
        let _ = writeln!(s, "}}");
    }
    s
}

fn indent(s: &mut String, depth: usize) {
    for _ in 0..depth {
        s.push_str("    ");
    }
}

fn write_block(s: &mut String, b: &Block, depth: usize) {
    for stmt in &b.stmts {
        write_stmt(s, stmt, depth);
    }
}

fn write_stmt(s: &mut String, st: &Stmt, depth: usize) {
    indent(s, depth);
    match st {
        Stmt::Skip(_) => s.push_str("skip;\n"),
        Stmt::Let(x, e, _) => {
            let _ = writeln!(s, "let {x} = {};", expr(e));
        }
        Stmt::LetFresh(x, e, _) => {
            let _ = writeln!(s, "let fresh {x} = {};", expr(e));
        }
        Stmt::LetConsistent(id, x, e, _) => {
            let _ = writeln!(s, "let consistent({id}) {x} = {};", expr(e));
        }
        Stmt::LetCall(x, f, args, _) => {
            let _ = writeln!(s, "let {x} = {f}({});", arg_list(args));
        }
        Stmt::LetInput(x, chan, _) => {
            let _ = writeln!(s, "let {x} = in({chan});");
        }
        Stmt::Assign(x, e, _) => {
            let _ = writeln!(s, "{x} = {};", expr(e));
        }
        Stmt::AssignIndex(a, i, e, _) => {
            let _ = writeln!(s, "{a}[{}] = {};", expr(i), expr(e));
        }
        Stmt::AssignDeref(x, e, _) => {
            let _ = writeln!(s, "*{x} = {};", expr(e));
        }
        Stmt::FreshAnnot(x, _) => {
            let _ = writeln!(s, "fresh({x});");
        }
        Stmt::ConsistentAnnot(x, id, _) => {
            let _ = writeln!(s, "consistent({x}, {id});");
        }
        Stmt::If(c, t, e, _) => {
            let _ = writeln!(s, "if {} {{", expr(c));
            write_block(s, t, depth + 1);
            indent(s, depth);
            match e {
                Some(e) => {
                    s.push_str("} else {\n");
                    write_block(s, e, depth + 1);
                    indent(s, depth);
                    s.push_str("}\n");
                }
                None => s.push_str("}\n"),
            }
        }
        Stmt::Repeat(n, b, _) => {
            let _ = writeln!(s, "repeat {n} {{");
            write_block(s, b, depth + 1);
            indent(s, depth);
            s.push_str("}\n");
        }
        Stmt::While(c, bound, b, _) => {
            match bound {
                Some(k) => {
                    let _ = writeln!(s, "while {} @bound {k} {{", expr(c));
                }
                None => {
                    let _ = writeln!(s, "while {} {{", expr(c));
                }
            }
            write_block(s, b, depth + 1);
            indent(s, depth);
            s.push_str("}\n");
        }
        Stmt::Atomic(b, _) => {
            s.push_str("atomic {\n");
            write_block(s, b, depth + 1);
            indent(s, depth);
            s.push_str("}\n");
        }
        Stmt::CallStmt(f, args, _) => {
            let _ = writeln!(s, "{f}({});", arg_list(args));
        }
        Stmt::Out(chan, args, _) => {
            if args.is_empty() {
                let _ = writeln!(s, "out({chan});");
            } else {
                let exprs: Vec<String> = args.iter().map(expr).collect();
                let _ = writeln!(s, "out({chan}, {});", exprs.join(", "));
            }
        }
        Stmt::Return(Some(e), _) => {
            let _ = writeln!(s, "return {};", expr(e));
        }
        Stmt::Return(None, _) => s.push_str("return;\n"),
    }
}

fn arg_list(args: &[Arg]) -> String {
    args.iter()
        .map(|a| match a {
            Arg::Value(e) => expr(e),
            Arg::Ref(x) => format!("&{x}"),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders an expression, parenthesizing every binary operation so
/// re-parsing cannot re-associate (`(a + b) * c` stays itself; the
/// non-associative comparison level re-parses cleanly too).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(n) if *n < 0 => format!("(0 - {})", -(*n as i128)),
        Expr::Int(n) => n.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Var(x) => x.clone(),
        Expr::Index(a, i) => format!("{a}[{}]", expr(i)),
        Expr::Deref(x) => format!("*{x}"),
        Expr::Ref(x) => format!("&{x}"),
        Expr::Binary(op, l, r) => format!("({} {op} {})", expr(l), expr(r)),
        Expr::Unary(op, x) => format!("{op}({})", expr(x)),
    }
}

/// Strips spans so two parses can be compared structurally.
pub fn erase_spans(p: &AstProgram) -> AstProgram {
    use crate::span::Span;
    let z = Span::default();
    let mut out = p.clone();
    for s in &mut out.sensors {
        s.span = z;
    }
    for g in &mut out.globals {
        g.span = z;
    }
    for f in &mut out.funcs {
        f.span = z;
        erase_block(&mut f.body);
    }
    out
}

fn erase_block(b: &mut Block) {
    use crate::span::Span;
    let z = Span::default();
    for s in &mut b.stmts {
        match s {
            Stmt::Skip(sp)
            | Stmt::Let(_, _, sp)
            | Stmt::LetFresh(_, _, sp)
            | Stmt::LetConsistent(_, _, _, sp)
            | Stmt::LetCall(_, _, _, sp)
            | Stmt::LetInput(_, _, sp)
            | Stmt::Assign(_, _, sp)
            | Stmt::AssignIndex(_, _, _, sp)
            | Stmt::AssignDeref(_, _, sp)
            | Stmt::FreshAnnot(_, sp)
            | Stmt::ConsistentAnnot(_, _, sp)
            | Stmt::CallStmt(_, _, sp)
            | Stmt::Out(_, _, sp)
            | Stmt::Return(_, sp) => *sp = z,
            Stmt::If(_, t, e, sp) => {
                *sp = z;
                erase_block(t);
                if let Some(e) = e {
                    erase_block(e);
                }
            }
            Stmt::Repeat(_, b, sp) | Stmt::While(_, _, b, sp) | Stmt::Atomic(b, sp) => {
                *sp = z;
                erase_block(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let a = erase_spans(&parse(src).unwrap());
        let printed = ast_to_source(&a);
        let b = erase_spans(
            &parse(&printed)
                .unwrap_or_else(|e| panic!("printed source failed to parse: {e}\n{printed}")),
        );
        assert_eq!(a, b, "round trip changed the program:\n{printed}");
    }

    #[test]
    fn round_trips_every_construct() {
        round_trip(
            r#"
            sensor temp;
            nv hist[4];
            nv n = 0;
            nv neg = -3;
            fn norm(v, &o) { *o = v; return v + 1; }
            fn main() {
                skip;
                let fresh x = 0;
                let consistent(2) w = 1;
                let t = in(temp);
                let y = norm(t, &x);
                consistent(y, 1);
                fresh(t);
                if y > 5 { out(alarm, y); } else { out(log, y, n); }
                repeat 3 { hist[n % 4] = y; n = n + 1; }
                while n > 9 { n = n - 1; }
                atomic { out(uart, y); }
                y = hist[0] + *x - (2 * 3);
                if !(y == 0) { return y; }
                return 0;
            }
            "#,
        );
    }

    #[test]
    fn round_trips_operator_nesting() {
        round_trip("fn main() { let x = 1 + 2 * 3 - 4 / 5 % 6; let y = x > 2 && x < 9 || false; }");
    }

    #[test]
    fn negative_literals_round_trip() {
        round_trip("nv g = -7; fn main() { let x = g; }");
    }

    #[test]
    fn printed_source_lowers_identically() {
        let src = "sensor s; fn main() { let v = in(s); fresh(v); if v > 2 { out(log, v); } }";
        let a = parse(src).unwrap();
        let printed = ast_to_source(&a);
        let p1 = crate::lower::lower(&a).unwrap();
        let p2 = crate::lower::compile(&printed).unwrap();
        assert_eq!(
            crate::print::program_to_string(&p1),
            crate::print::program_to_string(&p2)
        );
    }
}
