//! # ocelot-ir
//!
//! The program representation layer of the Ocelot reproduction: the
//! modeling language of *Automatically Enforcing Fresh and Consistent
//! Inputs in Intermittent Systems* (PLDI 2021, Appendix A), a textual
//! front-end for it, and a basic-block IR with the structure the paper's
//! analyses need (function-unique instruction labels, a return
//! landing-pad per function, call sites identified by `(function, label)`
//! pairs).
//!
//! ## Pipeline
//!
//! ```text
//! source text ──parse──▶ AstProgram ──lower──▶ Program (CFG IR) ──validate──▶ ok
//!
//! (`compile` = parse + lower; `validate` checks the ownership discipline.)
//! ```
//!
//! ## Examples
//!
//! ```
//! use ocelot_ir::{compile, validate};
//!
//! let program = compile(r#"
//!     sensor temp;
//!     fn main() {
//!         let t = in(temp);
//!         fresh(t);
//!         if t > 30 { out(alarm, t); }
//!     }
//! "#)?;
//! validate(&program)?;
//! assert_eq!(program.sensors, vec!["temp".to_string()]);
//! # Ok::<(), ocelot_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod ast;
pub mod builder;
pub mod callgraph;
pub mod cfg;
pub mod error;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod passes;
pub mod print;
pub mod print_ast;
pub mod span;
pub mod token;
pub mod validate;

pub use ast::AstProgram;
pub use builder::ProgramBuilder;
pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use error::{IrError, Result};
pub use ir::{
    AnnotKind, Block, BlockId, FuncId, Function, Inst, InstrRef, Label, Op, Place, Program,
    RegionId, Terminator,
};
pub use lower::{compile, lower};
pub use parser::parse;
pub use passes::{compile_unrolled, fold_constants, unroll_repeats};
pub use print_ast::ast_to_source;
pub use validate::validate;
