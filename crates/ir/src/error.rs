//! Error types shared across the IR crate.

use crate::span::Span;
use std::fmt;

/// Result alias for fallible IR-crate operations.
pub type Result<T> = std::result::Result<T, IrError>;

/// Errors produced while lexing, parsing, lowering, or validating programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// The lexer encountered malformed input.
    Lex {
        /// Location of the offending text.
        span: Span,
        /// Human-readable description.
        message: String,
    },
    /// The parser encountered an unexpected token.
    Parse {
        /// Location of the offending token.
        span: Span,
        /// Human-readable description.
        message: String,
    },
    /// AST-to-IR lowering failed (e.g. call to an undeclared function).
    Lower {
        /// Human-readable description.
        message: String,
    },
    /// The program violates a structural rule (recursion, mutable-alias
    /// discipline, undeclared sensor, ...).
    Validate {
        /// Human-readable description.
        message: String,
    },
}

impl IrError {
    /// Convenience constructor for lowering errors.
    pub fn lower(message: impl Into<String>) -> Self {
        IrError::Lower {
            message: message.into(),
        }
    }

    /// Convenience constructor for validation errors.
    pub fn validate(message: impl Into<String>) -> Self {
        IrError::Validate {
            message: message.into(),
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Lex { span, message } => write!(f, "lex error at {span}: {message}"),
            IrError::Parse { span, message } => write!(f, "parse error at {span}: {message}"),
            IrError::Lower { message } => write!(f, "lowering error: {message}"),
            IrError::Validate { message } => write!(f, "invalid program: {message}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = IrError::validate("recursion is not supported");
        assert!(e.to_string().contains("recursion is not supported"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
