//! Lowering from the AST to the basic-block IR.
//!
//! Lowering performs:
//!
//! * **alpha-renaming** — every local binding gets a function-unique name
//!   (`x`, `x$1`, `x$2`, ...), so the may-alias set of each location is a
//!   singleton (the Rust-ownership simplification of §5.2);
//! * **CFG construction** — `if` becomes a diamond, `repeat n` becomes a
//!   counted loop with a back edge;
//! * **return landing-pad** — every `return` funnels into one exit block
//!   whose terminator is the function's only `Ret` (§6.2 relies on this
//!   for post-dominance);
//! * **region numbering** — manual `atomic { }` blocks get program-unique
//!   [`RegionId`]s.

use crate::ast::{self, Arg, AstProgram, Block as AstBlock, Expr, Ident, Stmt};
use crate::error::{IrError, Result};
use crate::ir::*;
use crate::span::Span;
use std::collections::HashMap;

/// Name of the synthetic return slot. User identifiers cannot contain `$`.
pub const RET_SLOT: &str = "$ret";

/// Lowers a parsed program to IR.
///
/// # Errors
///
/// Returns [`IrError::Lower`] when the program references undeclared
/// functions or has no `main`.
pub fn lower(ast: &AstProgram) -> Result<Program> {
    let mut name_to_id = HashMap::new();
    for (i, f) in ast.funcs.iter().enumerate() {
        if name_to_id
            .insert(f.name.clone(), FuncId(i as u32))
            .is_some()
        {
            return Err(IrError::lower(format!(
                "function `{}` declared more than once",
                f.name
            )));
        }
    }
    let main = *name_to_id
        .get("main")
        .ok_or_else(|| IrError::lower("program has no `main` function"))?;

    let mut next_region = 0u32;
    let mut funcs = Vec::with_capacity(ast.funcs.len());
    for (i, f) in ast.funcs.iter().enumerate() {
        let mut ctx = FnLower::new(FuncId(i as u32), f, &name_to_id, next_region);
        let lowered = ctx.run()?;
        next_region = ctx.next_region;
        funcs.push(lowered);
    }

    let globals = ast
        .globals
        .iter()
        .map(|g| IrGlobal {
            name: g.name.clone(),
            array_len: g.array_len,
            init: g.init,
        })
        .collect();
    let sensors = ast.sensors.iter().map(|s| s.name.clone()).collect();

    Ok(Program::from_parts(
        funcs,
        globals,
        sensors,
        main,
        next_region,
    ))
}

/// Convenience: parse then lower.
///
/// # Errors
///
/// Propagates lexer, parser, and lowering errors.
pub fn compile(src: &str) -> Result<Program> {
    let _span = ocelot_telemetry::span!("parse");
    let p = lower(&crate::parser::parse(src)?)?;
    // Parsed statements always carry real spans, and lowering threads
    // them onto every instruction — the diagnostics layer depends on
    // this, so enforce it on the parse path (builder-made programs are
    // exempt: their AST legitimately has empty spans).
    debug_assert!(
        crate::validate::validate_spans(&p).is_ok(),
        "lowering dropped a source span: {:?}",
        crate::validate::validate_spans(&p)
    );
    Ok(p)
}

struct FnLower<'a> {
    id: FuncId,
    decl: &'a ast::FunDecl,
    name_to_id: &'a HashMap<Ident, FuncId>,
    next_region: u32,

    blocks: Vec<Block>,
    cur: Vec<Inst>,
    cur_id: BlockId,
    next_label: u32,

    scopes: Vec<HashMap<Ident, Ident>>,
    rename_counts: HashMap<Ident, u32>,
    locals: Vec<Ident>,
    /// Span of the statement currently being lowered; every emitted
    /// instruction and terminator inherits it. Starts at the function
    /// declaration header (covers the synthetic `$ret` init).
    cur_span: Span,
}

impl<'a> FnLower<'a> {
    fn new(
        id: FuncId,
        decl: &'a ast::FunDecl,
        name_to_id: &'a HashMap<Ident, FuncId>,
        next_region: u32,
    ) -> Self {
        FnLower {
            id,
            decl,
            name_to_id,
            next_region,
            blocks: Vec::new(),
            cur: Vec::new(),
            cur_id: BlockId(0),
            next_label: 0,
            scopes: vec![HashMap::new()],
            rename_counts: HashMap::new(),
            locals: Vec::new(),
            cur_span: decl.span,
        }
    }

    fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    fn run(&mut self) -> Result<Function> {
        // Block ids are allocated by a counter; `cur_id` starts at 0.
        let mut alloc = BlockAlloc { next: 1 };

        // Parameters are in scope under their own names.
        for p in &self.decl.params {
            self.scopes[0].insert(p.name.clone(), p.name.clone());
            self.rename_counts.insert(p.name.clone(), 0);
        }
        // Synthetic return slot (carries the declaration-header span).
        let ret_label = self.fresh_label();
        self.cur.push(Inst {
            label: ret_label,
            op: Op::Bind {
                var: RET_SLOT.into(),
                src: Expr::Int(0),
            },
            span: self.decl.span,
        });
        self.locals.push(RET_SLOT.into());
        self.scopes[0].insert(RET_SLOT.into(), RET_SLOT.into());

        let exit = self.lower_block_into(&self.decl.body.clone(), &mut alloc)?;

        let function = Function {
            id: self.id,
            name: self.decl.name.clone(),
            params: self
                .decl
                .params
                .iter()
                .map(|p| IrParam {
                    name: p.name.clone(),
                    by_ref: p.by_ref,
                })
                .collect(),
            blocks: std::mem::take(&mut self.blocks),
            entry: BlockId(0),
            exit,
            locals: std::mem::take(&mut self.locals),
            next_label: self.next_label,
        };
        Ok(prune_unreachable(function))
    }

    /// Lowers the whole function body, then seals with the landing pad.
    /// Returns the exit block id.
    fn lower_block_into(&mut self, body: &AstBlock, alloc: &mut BlockAlloc) -> Result<BlockId> {
        let exit = alloc.fresh();
        self.lower_stmts(&body.stmts, alloc, exit)?;
        // Fall off the end: jump to the landing pad.
        self.seal(Terminator::Jump(exit), alloc);
        // Emit the landing pad itself (spanned to the declaration: the
        // synthetic return belongs to the function as a whole).
        self.cur_id = exit;
        let term_label = self.fresh_label();
        self.blocks.push(Block {
            id: exit,
            instrs: Vec::new(),
            term: Terminator::Ret(Some(Expr::Var(RET_SLOT.into()))),
            term_label,
            term_span: self.decl.span,
        });
        Ok(exit)
    }

    /// Ends the current block with `term` and opens a new one.
    fn seal(&mut self, term: Terminator, alloc: &mut BlockAlloc) {
        let term_label = self.fresh_label();
        self.blocks.push(Block {
            id: self.cur_id,
            instrs: std::mem::take(&mut self.cur),
            term,
            term_label,
            term_span: self.cur_span,
        });
        self.cur_id = alloc.fresh();
    }

    fn push(&mut self, op: Op) {
        let label = self.fresh_label();
        self.cur.push(Inst {
            label,
            op,
            span: self.cur_span,
        });
    }

    // ---- naming --------------------------------------------------------

    fn bind_name(&mut self, name: &Ident) -> Ident {
        let n = self.rename_counts.entry(name.clone()).or_insert(0);
        let unique = if *n == 0 {
            name.clone()
        } else {
            format!("{name}${n}")
        };
        *n += 1;
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name.clone(), unique.clone());
        self.locals.push(unique.clone());
        unique
    }

    fn resolve(&self, name: &Ident) -> Ident {
        for scope in self.scopes.iter().rev() {
            if let Some(u) = scope.get(name) {
                return u.clone();
            }
        }
        // Not a local: global, sensor, or channel — keep as-is
        // (validation reports truly-unknown names).
        name.clone()
    }

    fn rename_expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Int(_) | Expr::Bool(_) => e.clone(),
            Expr::Var(x) => Expr::Var(self.resolve(x)),
            Expr::Deref(x) => Expr::Deref(self.resolve(x)),
            Expr::Ref(x) => Expr::Ref(self.resolve(x)),
            Expr::Index(a, i) => Expr::Index(self.resolve(a), Box::new(self.rename_expr(i))),
            Expr::Binary(op, l, r) => Expr::Binary(
                *op,
                Box::new(self.rename_expr(l)),
                Box::new(self.rename_expr(r)),
            ),
            Expr::Unary(op, x) => Expr::Unary(*op, Box::new(self.rename_expr(x))),
        }
    }

    fn rename_arg(&self, a: &Arg) -> Arg {
        match a {
            Arg::Value(e) => Arg::Value(self.rename_expr(e)),
            Arg::Ref(x) => Arg::Ref(self.resolve(x)),
        }
    }

    // ---- statements ------------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[Stmt], alloc: &mut BlockAlloc, exit: BlockId) -> Result<()> {
        for s in stmts {
            self.lower_stmt(s, alloc, exit)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt, alloc: &mut BlockAlloc, exit: BlockId) -> Result<()> {
        self.cur_span = s.span();
        match s {
            Stmt::Skip(_) => self.push(Op::Skip),
            Stmt::Let(x, e, _) => {
                let src = self.rename_expr(e);
                let var = self.bind_name(x);
                self.push(Op::Bind { var, src });
            }
            Stmt::LetFresh(x, e, _) => {
                let src = self.rename_expr(e);
                let var = self.bind_name(x);
                self.push(Op::Bind {
                    var: var.clone(),
                    src,
                });
                self.push(Op::Annot {
                    kind: AnnotKind::Fresh,
                    var,
                });
            }
            Stmt::LetConsistent(id, x, e, _) => {
                let src = self.rename_expr(e);
                let var = self.bind_name(x);
                self.push(Op::Bind {
                    var: var.clone(),
                    src,
                });
                self.push(Op::Annot {
                    kind: AnnotKind::Consistent(*id),
                    var,
                });
            }
            Stmt::LetInput(x, chan, _) => {
                let var = self.bind_name(x);
                self.push(Op::Input {
                    var,
                    sensor: chan.clone(),
                });
            }
            Stmt::LetCall(x, f, args, _) => {
                let callee = self.lookup_fn(f)?;
                let args = args.iter().map(|a| self.rename_arg(a)).collect();
                let var = self.bind_name(x);
                self.push(Op::Call {
                    dst: Some(var),
                    callee,
                    args,
                });
            }
            Stmt::CallStmt(f, args, _) => {
                let callee = self.lookup_fn(f)?;
                let args = args.iter().map(|a| self.rename_arg(a)).collect();
                self.push(Op::Call {
                    dst: None,
                    callee,
                    args,
                });
            }
            Stmt::Assign(x, e, _) => {
                let src = self.rename_expr(e);
                let place = Place::Var(self.resolve(x));
                self.push(Op::Assign { place, src });
            }
            Stmt::AssignIndex(a, i, e, _) => {
                let idx = self.rename_expr(i);
                let src = self.rename_expr(e);
                self.push(Op::Assign {
                    place: Place::Index(self.resolve(a), idx),
                    src,
                });
            }
            Stmt::AssignDeref(x, e, _) => {
                let src = self.rename_expr(e);
                self.push(Op::Assign {
                    place: Place::Deref(self.resolve(x)),
                    src,
                });
            }
            Stmt::FreshAnnot(x, _) => {
                self.push(Op::Annot {
                    kind: AnnotKind::Fresh,
                    var: self.resolve(x),
                });
            }
            Stmt::ConsistentAnnot(x, id, _) => {
                self.push(Op::Annot {
                    kind: AnnotKind::Consistent(*id),
                    var: self.resolve(x),
                });
            }
            Stmt::Out(chan, args, _) => {
                let args = args.iter().map(|e| self.rename_expr(e)).collect();
                self.push(Op::Output {
                    channel: chan.clone(),
                    args,
                });
            }
            Stmt::Return(e, _) => {
                let src = match e {
                    Some(e) => self.rename_expr(e),
                    None => Expr::Int(0),
                };
                self.push(Op::Assign {
                    place: Place::Var(RET_SLOT.into()),
                    src,
                });
                self.seal(Terminator::Jump(exit), alloc);
                // Statements after a return land in an unreachable block,
                // pruned later.
            }
            Stmt::If(cond, then_b, else_b, _) => {
                let cond = self.rename_expr(cond);
                let then_id = alloc.fresh();
                let else_id = alloc.fresh();
                let join_id = alloc.fresh();
                self.seal_to(
                    Terminator::Branch {
                        cond,
                        then_bb: then_id,
                        else_bb: if else_b.is_some() { else_id } else { join_id },
                    },
                    then_id,
                );
                self.scopes.push(HashMap::new());
                self.lower_stmts(&then_b.stmts, alloc, exit)?;
                self.scopes.pop();
                self.seal_to(Terminator::Jump(join_id), else_id);
                if let Some(else_b) = else_b {
                    self.scopes.push(HashMap::new());
                    self.lower_stmts(&else_b.stmts, alloc, exit)?;
                    self.scopes.pop();
                    self.seal_to(Terminator::Jump(join_id), join_id);
                } else {
                    // `else_id` was never targeted; emit nothing for it and
                    // continue in `join_id`. The reserved id stays unused and
                    // is compacted by pruning.
                    self.cur_id = join_id;
                }
            }
            Stmt::Repeat(n, body, _) => {
                // i = 0; head: if i < n { body; i = i + 1; jump head } after
                let counter = self.bind_name(&format!("$rep{}", self.next_label));
                self.push(Op::Bind {
                    var: counter.clone(),
                    src: Expr::Int(0),
                });
                let head = alloc.fresh();
                let body_id = alloc.fresh();
                let after = alloc.fresh();
                self.seal_to(Terminator::Jump(head), head);
                self.seal_to(
                    Terminator::Branch {
                        cond: Expr::Binary(
                            ast::BinOp::Lt,
                            Box::new(Expr::Var(counter.clone())),
                            Box::new(Expr::Int(*n as i64)),
                        ),
                        then_bb: body_id,
                        else_bb: after,
                    },
                    body_id,
                );
                self.scopes.push(HashMap::new());
                self.lower_stmts(&body.stmts, alloc, exit)?;
                self.scopes.pop();
                self.push(Op::Assign {
                    place: Place::Var(counter.clone()),
                    src: Expr::Binary(
                        ast::BinOp::Add,
                        Box::new(Expr::Var(counter)),
                        Box::new(Expr::Int(1)),
                    ),
                });
                self.seal_to(Terminator::Jump(head), after);
            }
            Stmt::While(cond, bound, body, _) => {
                // head: if cond { body; jump head } after — the condition
                // re-evaluates every iteration (unbounded loop, §4.1).
                let head = alloc.fresh();
                let body_id = alloc.fresh();
                let after = alloc.fresh();
                self.seal_to(Terminator::Jump(head), head);
                if let Some(k) = bound {
                    // The declared trip count rides in the header block
                    // where the bound recovery looks for it.
                    self.push(Op::Annot {
                        kind: AnnotKind::Bound(*k),
                        var: "$bound".into(),
                    });
                }
                let cond = self.rename_expr(cond);
                self.seal_to(
                    Terminator::Branch {
                        cond,
                        then_bb: body_id,
                        else_bb: after,
                    },
                    body_id,
                );
                self.scopes.push(HashMap::new());
                self.lower_stmts(&body.stmts, alloc, exit)?;
                self.scopes.pop();
                self.seal_to(Terminator::Jump(head), after);
            }
            Stmt::Atomic(body, _) => {
                // Regions are instruction markers, not binding scopes:
                // `atomic { let x = ...; } out(log, x);` is legal (the
                // paper's `startatom; c; endatom` does not delimit
                // scope).
                let region = RegionId(self.next_region);
                self.next_region += 1;
                self.push(Op::AtomStart { region });
                self.lower_stmts(&body.stmts, alloc, exit)?;
                self.push(Op::AtomEnd { region });
            }
        }
        Ok(())
    }

    /// Ends the current block with `term`, continuing in `next`.
    fn seal_to(&mut self, term: Terminator, next: BlockId) {
        let term_label = self.fresh_label();
        self.blocks.push(Block {
            id: self.cur_id,
            instrs: std::mem::take(&mut self.cur),
            term,
            term_label,
            term_span: self.cur_span,
        });
        self.cur_id = next;
    }

    fn lookup_fn(&self, name: &str) -> Result<FuncId> {
        self.name_to_id.get(name).copied().ok_or_else(|| {
            IrError::lower(format!(
                "call to undeclared function `{name}` in `{}`",
                self.decl.name
            ))
        })
    }
}

struct BlockAlloc {
    next: u32,
}

impl BlockAlloc {
    fn fresh(&mut self) -> BlockId {
        let b = BlockId(self.next);
        self.next += 1;
        b
    }
}

/// Removes blocks unreachable from the entry and renumbers the rest so
/// that `blocks[i].id == BlockId(i)`.
fn prune_unreachable(mut f: Function) -> Function {
    use std::collections::{BTreeMap, VecDeque};

    let by_id: BTreeMap<u32, Block> = f.blocks.drain(..).map(|b| (b.id.0, b)).collect();
    let mut reachable = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut queue = VecDeque::from([f.entry]);
    // The exit landing pad is always kept so `Function::exit` stays valid
    // even for bodies that loop forever (not expressible here, but cheap
    // to be safe about).
    queue.push_back(f.exit);
    while let Some(b) = queue.pop_front() {
        if !seen.insert(b) {
            continue;
        }
        reachable.push(b);
        if let Some(block) = by_id.get(&b.0) {
            for s in block.term.successors() {
                queue.push_back(s);
            }
        }
    }
    reachable.sort_by_key(|b| b.0);

    let remap: HashMap<u32, u32> = reachable
        .iter()
        .enumerate()
        .map(|(new, old)| (old.0, new as u32))
        .collect();

    let mut blocks = Vec::with_capacity(reachable.len());
    for old in &reachable {
        let mut b = by_id
            .get(&old.0)
            .expect("reachable block must exist")
            .clone();
        b.id = BlockId(remap[&old.0]);
        b.term = match b.term {
            Terminator::Jump(t) => Terminator::Jump(BlockId(remap[&t.0])),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond,
                then_bb: BlockId(remap[&then_bb.0]),
                else_bb: BlockId(remap[&else_bb.0]),
            },
            Terminator::Ret(e) => Terminator::Ret(e),
        };
        blocks.push(b);
    }
    f.entry = BlockId(remap[&f.entry.0]);
    f.exit = BlockId(remap[&f.exit.0]);
    f.blocks = blocks;
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_src(src: &str) -> Program {
        compile(src).unwrap()
    }

    #[test]
    fn straight_line_lowers_to_two_blocks() {
        let p = lower_src("fn main() { let x = 1; let y = x + 1; }");
        let f = p.func(p.main);
        assert_eq!(f.blocks.len(), 2, "body + landing pad");
        assert_eq!(f.entry, BlockId(0));
        assert!(matches!(
            f.block(f.exit).term,
            Terminator::Ret(Some(Expr::Var(_)))
        ));
    }

    #[test]
    fn if_lowers_to_diamond() {
        let p = lower_src(
            "fn main() { let x = 1; if x > 0 { let y = 2; } else { let z = 3; } let w = 4; }",
        );
        let f = p.func(p.main);
        // entry, then, else, join, exit
        assert_eq!(f.blocks.len(), 5);
        let entry = f.block(f.entry);
        match &entry.term {
            Terminator::Branch {
                then_bb, else_bb, ..
            } => assert_ne!(then_bb, else_bb),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn if_without_else_branches_to_join() {
        let p = lower_src("fn main() { let x = 1; if x > 0 { let y = 2; } let w = 4; }");
        let f = p.func(p.main);
        // entry, then, join, exit — unused reserved else block pruned.
        assert_eq!(f.blocks.len(), 4);
    }

    #[test]
    fn repeat_creates_back_edge() {
        let p = lower_src("sensor s; fn main() { repeat 3 { let v = in(s); } }");
        let f = p.func(p.main);
        let mut has_back_edge = false;
        for b in &f.blocks {
            for succ in b.term.successors() {
                if succ.0 <= b.id.0 {
                    has_back_edge = true;
                }
            }
        }
        assert!(has_back_edge, "repeat must lower to a loop");
    }

    #[test]
    fn while_creates_back_edge_with_live_condition() {
        let p = lower_src("nv g = 3; fn main() { while g > 0 { g = g - 1; } out(log, g); }");
        let f = p.func(p.main);
        let mut has_back_edge = false;
        let mut cond_on_g = false;
        for b in &f.blocks {
            for succ in b.term.successors() {
                if succ.0 <= b.id.0 {
                    has_back_edge = true;
                }
            }
            if let Terminator::Branch { cond, .. } = &b.term {
                cond_on_g = cond_on_g || format!("{cond:?}").contains("\"g\"");
            }
        }
        assert!(has_back_edge, "while must lower to a loop");
        assert!(cond_on_g, "the condition re-evaluates `g` each iteration");
    }

    #[test]
    fn while_body_scope_is_popped() {
        // A binding inside the loop body is a different variable from a
        // same-named binding after it.
        let p = lower_src(
            "nv g = 1; fn main() { while g > 0 { let t = 1; g = 0; } let t = 5; out(log, t); }",
        );
        let f = p.func(p.main);
        let binds: Vec<String> = f
            .iter_insts()
            .filter_map(|(_, i)| match &i.op {
                Op::Bind { var, .. } => Some(var.clone()),
                _ => None,
            })
            .filter(|v| v.starts_with('t'))
            .collect();
        assert_eq!(binds.len(), 2);
        assert_ne!(binds[0], binds[1], "loop-body binding must not leak");
    }

    #[test]
    fn shadowed_lets_get_unique_names() {
        let p = lower_src("fn main() { let x = 1; let x = 2; let y = x; }");
        let f = p.func(p.main);
        let binds: Vec<_> = f
            .iter_insts()
            .filter_map(|(_, i)| match &i.op {
                Op::Bind { var, .. } => Some(var.clone()),
                _ => None,
            })
            .collect();
        // $ret, x, x$1, y
        assert_eq!(binds.len(), 4);
        assert!(binds.contains(&"x".to_string()));
        assert!(binds.contains(&"x$1".to_string()));
        // `y`'s initializer must reference the shadowing definition.
        let y_src = f
            .iter_insts()
            .find_map(|(_, i)| match &i.op {
                Op::Bind { var, src } if var == "y" => Some(src.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(y_src, Expr::Var("x$1".into()));
    }

    #[test]
    fn scoped_shadowing_does_not_leak() {
        let p = lower_src("fn main() { let x = 1; if x > 0 { let x = 2; let a = x; } let b = x; }");
        let f = p.func(p.main);
        let b_src = f
            .iter_insts()
            .find_map(|(_, i)| match &i.op {
                Op::Bind { var, src } if var == "b" => Some(src.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(b_src, Expr::Var("x".into()), "outer x visible after if");
        let a_src = f
            .iter_insts()
            .find_map(|(_, i)| match &i.op {
                Op::Bind { var, src } if var == "a" => Some(src.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(a_src, Expr::Var("x$1".into()), "inner x shadows");
    }

    #[test]
    fn return_routes_through_landing_pad() {
        let p = lower_src("fn f() { return 7; } fn main() { let x = f(); }");
        let f = p.func(p.func_by_name("f").unwrap());
        let rets = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Ret(_)))
            .count();
        assert_eq!(rets, 1, "exactly one Ret (the landing pad)");
        // The return value is staged through the $ret slot.
        let has_ret_assign = f.iter_insts().any(|(_, i)| {
            matches!(&i.op, Op::Assign { place: Place::Var(v), src } if v == RET_SLOT && *src == Expr::Int(7))
        });
        assert!(has_ret_assign);
    }

    #[test]
    fn multiple_returns_share_landing_pad() {
        let p = lower_src(
            "fn f(v) { if v > 0 { return 1; } else { return 2; } } fn main() { let x = f(3); }",
        );
        let f = p.func(p.func_by_name("f").unwrap());
        let rets = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Ret(_)))
            .count();
        assert_eq!(rets, 1);
        // Exit must post-dominate: both return paths jump to it.
        let jumps_to_exit = f
            .blocks
            .iter()
            .filter(|b| b.term.successors().contains(&f.exit))
            .count();
        assert!(jumps_to_exit >= 2);
    }

    #[test]
    fn code_after_return_is_pruned() {
        let p = lower_src("fn main() { return 1; let x = 2; }");
        let f = p.func(p.main);
        let has_x = f
            .iter_insts()
            .any(|(_, i)| matches!(&i.op, Op::Bind { var, .. } if var == "x"));
        assert!(!has_x, "unreachable bind must be pruned");
    }

    #[test]
    fn atomic_emits_matched_start_end() {
        let p = lower_src("fn main() { atomic { let x = 1; } atomic { let y = 2; } }");
        let f = p.func(p.main);
        let mut starts = vec![];
        let mut ends = vec![];
        for (_, i) in f.iter_insts() {
            match &i.op {
                Op::AtomStart { region } => starts.push(*region),
                Op::AtomEnd { region } => ends.push(*region),
                _ => {}
            }
        }
        assert_eq!(starts.len(), 2);
        assert_eq!(starts, ends);
        assert_ne!(starts[0], starts[1], "regions get distinct ids");
    }

    #[test]
    fn block_ids_are_dense_after_pruning() {
        let p = lower_src("fn main() { let x = 1; if x > 0 { return 1; } else { return 2; } }");
        let f = p.func(p.main);
        for (i, b) in f.blocks.iter().enumerate() {
            assert_eq!(b.id.0 as usize, i);
        }
    }

    #[test]
    fn labels_are_unique_within_function() {
        let p = lower_src(
            "sensor s; fn main() { let x = in(s); if x > 0 { out(log, x); } repeat 2 { let q = in(s); } }",
        );
        let f = p.func(p.main);
        let mut labels: Vec<u32> = f
            .blocks
            .iter()
            .flat_map(|b| {
                b.instrs
                    .iter()
                    .map(|i| i.label.0)
                    .chain(std::iter::once(b.term_label.0))
            })
            .collect();
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn rejects_unknown_callee() {
        assert!(compile("fn main() { nope(); }").is_err());
    }

    #[test]
    fn rejects_duplicate_function() {
        assert!(compile("fn main() {} fn main() {}").is_err());
    }

    #[test]
    fn rejects_missing_main() {
        assert!(compile("fn helper() {}").is_err());
    }
}
