//! Call-graph construction and queries.
//!
//! The paper's region-inference algorithm walks caller chains
//! (Algorithm 1, lines 8–15) and its formal system rejects recursive
//! functions; both services live here.

use crate::error::{IrError, Result};
use crate::ir::{FuncId, InstrRef, Program};

/// A call edge: `caller` invokes `callee` from the instruction `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallEdge {
    /// Calling function.
    pub caller: FuncId,
    /// Called function.
    pub callee: FuncId,
    /// The call instruction.
    pub site: InstrRef,
}

/// The program call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    edges: Vec<CallEdge>,
    /// `callees[f]` = outgoing edges of `f`.
    callees: Vec<Vec<usize>>,
    /// `callers[f]` = incoming edges of `f`.
    callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the call graph of `p`.
    pub fn new(p: &Program) -> Self {
        let n = p.funcs.len();
        let mut edges = Vec::new();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        for f in &p.funcs {
            for (label, callee) in f.call_sites() {
                let idx = edges.len();
                edges.push(CallEdge {
                    caller: f.id,
                    callee,
                    site: InstrRef { func: f.id, label },
                });
                callees[f.id.0 as usize].push(idx);
                callers[callee.0 as usize].push(idx);
            }
        }
        CallGraph {
            edges,
            callees,
            callers,
        }
    }

    /// All edges leaving `f` (its call sites).
    pub fn callees(&self, f: FuncId) -> impl Iterator<Item = &CallEdge> {
        self.callees[f.0 as usize]
            .iter()
            .map(move |&i| &self.edges[i])
    }

    /// All edges entering `f` (who calls it, from where).
    pub fn callers(&self, f: FuncId) -> impl Iterator<Item = &CallEdge> {
        self.callers[f.0 as usize]
            .iter()
            .map(move |&i| &self.edges[i])
    }

    /// Every call edge in the program.
    pub fn edges(&self) -> &[CallEdge] {
        &self.edges
    }

    /// Functions reachable from `root` (including `root`), in BFS order.
    pub fn reachable_from(&self, root: FuncId) -> Vec<FuncId> {
        let mut seen = vec![false; self.callees.len()];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::from([root]);
        seen[root.0 as usize] = true;
        while let Some(f) = queue.pop_front() {
            order.push(f);
            for e in self.callees(f) {
                if !seen[e.callee.0 as usize] {
                    seen[e.callee.0 as usize] = true;
                    queue.push_back(e.callee);
                }
            }
        }
        order
    }

    /// Returns the functions in reverse topological order (callees before
    /// callers), or an error naming a function on a call cycle.
    ///
    /// # Errors
    ///
    /// [`IrError::Validate`] if the graph has a cycle (direct or mutual
    /// recursion), which the paper's model disallows.
    pub fn topo_callees_first(&self, p: &Program) -> Result<Vec<FuncId>> {
        let n = self.callees.len();
        // Kahn's algorithm over "caller depends on callee" edges.
        let mut out_deg: Vec<usize> = (0..n)
            .map(|f| {
                // Count distinct callees (parallel edges collapse).
                let mut cs: Vec<FuncId> =
                    self.callees(FuncId(f as u32)).map(|e| e.callee).collect();
                cs.sort_unstable();
                cs.dedup();
                cs.retain(|c| c.0 as usize != f); // self loop handled as cycle below
                if self
                    .callees(FuncId(f as u32))
                    .any(|e| e.callee.0 as usize == f)
                {
                    // Force a self-recursive function to never drain.
                    return usize::MAX / 2;
                }
                cs.len()
            })
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<FuncId> = (0..n)
            .filter(|&f| out_deg[f] == 0)
            .map(|f| FuncId(f as u32))
            .collect();
        while let Some(f) = ready.pop() {
            order.push(f);
            let mut seen_callers = std::collections::HashSet::new();
            for e in self.callers(f) {
                if e.caller != f && seen_callers.insert(e.caller) {
                    let d = &mut out_deg[e.caller.0 as usize];
                    *d -= 1;
                    if *d == 0 {
                        ready.push(e.caller);
                    }
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&f| !order.iter().any(|g| g.0 as usize == f))
                .expect("some function must be stuck");
            return Err(IrError::validate(format!(
                "recursive call cycle involving `{}` (recursion is not supported)",
                p.func(FuncId(stuck as u32)).name
            )));
        }
        Ok(order)
    }

    /// True when the call graph is acyclic.
    pub fn is_acyclic(&self, p: &Program) -> bool {
        self.topo_callees_first(p).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    #[test]
    fn edges_record_call_sites() {
        let p = compile("fn leaf() {} fn mid() { leaf(); leaf(); } fn main() { mid(); }").unwrap();
        let cg = CallGraph::new(&p);
        let mid = p.func_by_name("mid").unwrap();
        let leaf = p.func_by_name("leaf").unwrap();
        assert_eq!(cg.callees(mid).count(), 2, "two calls to leaf");
        assert_eq!(cg.callers(leaf).count(), 2);
        assert_eq!(cg.callers(p.main).count(), 0);
    }

    #[test]
    fn reachable_from_main() {
        let p = compile("fn unused() {} fn helper() {} fn main() { helper(); }").unwrap();
        let cg = CallGraph::new(&p);
        let reach = cg.reachable_from(p.main);
        assert!(reach.contains(&p.main));
        assert!(reach.contains(&p.func_by_name("helper").unwrap()));
        assert!(!reach.contains(&p.func_by_name("unused").unwrap()));
    }

    #[test]
    fn topo_orders_callees_first() {
        let p =
            compile("fn a() {} fn b() { a(); } fn c() { b(); a(); } fn main() { c(); }").unwrap();
        let cg = CallGraph::new(&p);
        let order = cg.topo_callees_first(&p).unwrap();
        let pos = |name: &str| {
            let id = p.func_by_name(name).unwrap();
            order.iter().position(|f| *f == id).unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
        assert!(pos("c") < pos("main"));
    }

    #[test]
    fn detects_mutual_recursion() {
        let p =
            compile("fn ping() { pong(); } fn pong() { ping(); } fn main() { ping(); }").unwrap();
        let cg = CallGraph::new(&p);
        assert!(!cg.is_acyclic(&p));
        let err = cg.topo_callees_first(&p).unwrap_err();
        assert!(err.to_string().contains("recursi"));
    }

    #[test]
    fn detects_self_recursion() {
        let p = compile("fn f() { f(); } fn main() { f(); }").unwrap();
        let cg = CallGraph::new(&p);
        assert!(!cg.is_acyclic(&p));
    }

    #[test]
    fn acyclic_graph_is_ok() {
        let p = compile("fn main() { }").unwrap();
        assert!(CallGraph::new(&p).is_acyclic(&p));
    }
}
