//! Fluent, programmatic construction of modeling-language programs.
//!
//! The builder produces an [`AstProgram`] and hands it to the standard
//! lowering pipeline, so programs built here go through exactly the same
//! alpha-renaming, CFG construction, and validation as parsed source.
//!
//! # Examples
//!
//! ```
//! use ocelot_ir::builder::ProgramBuilder;
//!
//! let program = ProgramBuilder::new()
//!     .sensor("temp")
//!     .function("main", &[], |b| {
//!         b.input("t", "temp");
//!         b.fresh("t");
//!         b.if_gt_const("t", 30, |b| {
//!             b.out("alarm", &["t"]);
//!         });
//!     })
//!     .build()
//!     .unwrap();
//! assert_eq!(program.sensors.len(), 1);
//! ```

use crate::ast::*;
use crate::error::Result;
use crate::ir::Program;
use crate::lower;
use crate::span::Span;

/// Builds a whole program declaration by declaration.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ast: AstProgram,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a sensor channel.
    pub fn sensor(mut self, name: &str) -> Self {
        self.ast.sensors.push(SensorDecl {
            name: name.into(),
            span: Span::default(),
        });
        self
    }

    /// Declares a non-volatile scalar global.
    pub fn global(mut self, name: &str, init: i64) -> Self {
        self.ast.globals.push(GlobalDecl {
            name: name.into(),
            array_len: None,
            init,
            span: Span::default(),
        });
        self
    }

    /// Declares a non-volatile global array of `len` zero-initialized cells.
    pub fn global_array(mut self, name: &str, len: usize) -> Self {
        self.ast.globals.push(GlobalDecl {
            name: name.into(),
            array_len: Some(len),
            init: 0,
            span: Span::default(),
        });
        self
    }

    /// Declares a function; `params` entries starting with `&` are
    /// by-mutable-reference. The body is described with a [`BodyBuilder`].
    pub fn function(
        mut self,
        name: &str,
        params: &[&str],
        f: impl FnOnce(&mut BodyBuilder),
    ) -> Self {
        let params = params
            .iter()
            .map(|p| match p.strip_prefix('&') {
                Some(rest) => Param {
                    name: rest.into(),
                    by_ref: true,
                },
                None => Param {
                    name: (*p).into(),
                    by_ref: false,
                },
            })
            .collect();
        let mut body = BodyBuilder::default();
        f(&mut body);
        self.ast.funcs.push(FunDecl {
            name: name.into(),
            params,
            body: Block::new(body.stmts),
            span: Span::default(),
        });
        self
    }

    /// The AST built so far (for tests that want to inspect it).
    pub fn ast(&self) -> &AstProgram {
        &self.ast
    }

    /// Lowers and returns the program.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (e.g. calls to undeclared functions).
    pub fn build(self) -> Result<Program> {
        lower::lower(&self.ast)
    }

    /// Lowers and validates the program.
    ///
    /// # Errors
    ///
    /// Propagates lowering and validation errors.
    pub fn build_validated(self) -> Result<Program> {
        let p = lower::lower(&self.ast)?;
        crate::validate::validate(&p)?;
        Ok(p)
    }
}

/// Builds one function body statement by statement.
#[derive(Debug, Default)]
pub struct BodyBuilder {
    stmts: Vec<Stmt>,
}

impl BodyBuilder {
    fn push(&mut self, s: Stmt) -> &mut Self {
        self.stmts.push(s);
        self
    }

    /// `skip;`
    pub fn skip(&mut self) -> &mut Self {
        self.push(Stmt::Skip(Span::default()))
    }

    /// `let name = expr;` where `expr` is given in surface syntax.
    pub fn let_(&mut self, name: &str, expr: impl IntoExpr) -> &mut Self {
        self.push(Stmt::Let(name.into(), expr.into_expr(), Span::default()))
    }

    /// `let name = in(sensor);`
    pub fn input(&mut self, name: &str, sensor: &str) -> &mut Self {
        self.push(Stmt::LetInput(name.into(), sensor.into(), Span::default()))
    }

    /// `let name = callee(args);`
    pub fn call(&mut self, name: &str, callee: &str, args: &[&str]) -> &mut Self {
        let args = args.iter().map(|a| parse_arg(a)).collect();
        self.push(Stmt::LetCall(
            name.into(),
            callee.into(),
            args,
            Span::default(),
        ))
    }

    /// `callee(args);` for effect.
    pub fn call_void(&mut self, callee: &str, args: &[&str]) -> &mut Self {
        let args = args.iter().map(|a| parse_arg(a)).collect();
        self.push(Stmt::CallStmt(callee.into(), args, Span::default()))
    }

    /// `name = expr;`
    pub fn assign(&mut self, name: &str, expr: impl IntoExpr) -> &mut Self {
        self.push(Stmt::Assign(name.into(), expr.into_expr(), Span::default()))
    }

    /// `array[index] = expr;`
    pub fn assign_index(
        &mut self,
        array: &str,
        index: impl IntoExpr,
        expr: impl IntoExpr,
    ) -> &mut Self {
        self.push(Stmt::AssignIndex(
            array.into(),
            index.into_expr(),
            expr.into_expr(),
            Span::default(),
        ))
    }

    /// `*name = expr;`
    pub fn store(&mut self, name: &str, expr: impl IntoExpr) -> &mut Self {
        self.push(Stmt::AssignDeref(
            name.into(),
            expr.into_expr(),
            Span::default(),
        ))
    }

    /// `fresh(name);`
    pub fn fresh(&mut self, name: &str) -> &mut Self {
        self.push(Stmt::FreshAnnot(name.into(), Span::default()))
    }

    /// `consistent(name, id);`
    pub fn consistent(&mut self, name: &str, id: u32) -> &mut Self {
        self.push(Stmt::ConsistentAnnot(name.into(), id, Span::default()))
    }

    /// `if var > k { then }`
    pub fn if_gt_const(
        &mut self,
        var: &str,
        k: i64,
        then: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        let mut tb = BodyBuilder::default();
        then(&mut tb);
        self.push(Stmt::If(
            Expr::Binary(
                BinOp::Gt,
                Box::new(Expr::Var(var.into())),
                Box::new(Expr::Int(k)),
            ),
            Block::new(tb.stmts),
            None,
            Span::default(),
        ))
    }

    /// `if cond { then } else { else_ }` with an arbitrary condition.
    pub fn if_else(
        &mut self,
        cond: impl IntoExpr,
        then: impl FnOnce(&mut BodyBuilder),
        else_: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        let mut tb = BodyBuilder::default();
        then(&mut tb);
        let mut eb = BodyBuilder::default();
        else_(&mut eb);
        self.push(Stmt::If(
            cond.into_expr(),
            Block::new(tb.stmts),
            Some(Block::new(eb.stmts)),
            Span::default(),
        ))
    }

    /// `if cond { then }` with an arbitrary condition.
    pub fn if_(&mut self, cond: impl IntoExpr, then: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        let mut tb = BodyBuilder::default();
        then(&mut tb);
        self.push(Stmt::If(
            cond.into_expr(),
            Block::new(tb.stmts),
            None,
            Span::default(),
        ))
    }

    /// `repeat n { body }`
    pub fn repeat(&mut self, n: u64, body: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        let mut bb = BodyBuilder::default();
        body(&mut bb);
        self.push(Stmt::Repeat(n, Block::new(bb.stmts), Span::default()))
    }

    /// `while cond { body }` — an unbounded loop.
    pub fn while_(
        &mut self,
        cond: impl IntoExpr,
        body: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        let mut bb = BodyBuilder::default();
        body(&mut bb);
        self.push(Stmt::While(
            cond.into_expr(),
            None,
            Block::new(bb.stmts),
            Span::default(),
        ))
    }

    /// `while cond @bound k { body }` — a loop with a declared trip
    /// count for the forward-progress analysis.
    pub fn while_bounded(
        &mut self,
        cond: impl IntoExpr,
        bound: u64,
        body: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        let mut bb = BodyBuilder::default();
        body(&mut bb);
        self.push(Stmt::While(
            cond.into_expr(),
            Some(bound),
            Block::new(bb.stmts),
            Span::default(),
        ))
    }

    /// `atomic { body }` — a manually placed region.
    pub fn atomic(&mut self, body: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        let mut bb = BodyBuilder::default();
        body(&mut bb);
        self.push(Stmt::Atomic(Block::new(bb.stmts), Span::default()))
    }

    /// `out(channel, vars...);`
    pub fn out(&mut self, channel: &str, vars: &[&str]) -> &mut Self {
        let args = vars.iter().map(|v| v.into_expr()).collect();
        self.push(Stmt::Out(channel.into(), args, Span::default()))
    }

    /// `return expr;`
    pub fn ret(&mut self, expr: impl IntoExpr) -> &mut Self {
        self.push(Stmt::Return(Some(expr.into_expr()), Span::default()))
    }
}

fn parse_arg(a: &str) -> Arg {
    match a.strip_prefix('&') {
        Some(rest) => Arg::Ref(rest.into()),
        None => Arg::Value(rest_expr(a)),
    }
}

fn rest_expr(a: &str) -> Expr {
    a.into_expr()
}

/// Conversion into an [`Expr`] for ergonomic builder calls: integers become
/// literals and `&str` is parsed as a surface-syntax expression.
pub trait IntoExpr {
    /// Performs the conversion.
    fn into_expr(self) -> Expr;
}

impl IntoExpr for Expr {
    fn into_expr(self) -> Expr {
        self
    }
}

impl IntoExpr for i64 {
    fn into_expr(self) -> Expr {
        Expr::Int(self)
    }
}

impl IntoExpr for bool {
    fn into_expr(self) -> Expr {
        Expr::Bool(self)
    }
}

impl IntoExpr for &str {
    /// Parses a surface-syntax expression.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a valid expression; builder inputs are
    /// compile-time program text, so this is a programming error.
    fn into_expr(self) -> Expr {
        parse_expr_str(self).unwrap_or_else(|e| panic!("bad builder expression `{self}`: {e}"))
    }
}

impl IntoExpr for &&str {
    fn into_expr(self) -> Expr {
        (*self).into_expr()
    }
}

/// Parses a standalone expression using the statement parser on a
/// synthetic `let` wrapper.
fn parse_expr_str(src: &str) -> Result<Expr> {
    let wrapped = format!("fn main() {{ let $e = {src}; }}");
    // `$` is not lexable, so use a plain name and fish the initializer out.
    let wrapped = wrapped.replace("$e", "__builder_expr");
    let ast = crate::parser::parse(&wrapped)?;
    match &ast.funcs[0].body.stmts[0] {
        Stmt::Let(_, e, _) => Ok(e.clone()),
        _ => unreachable!("wrapper always parses to a let"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Op;

    #[test]
    fn builder_matches_parsed_equivalent() {
        let built = ProgramBuilder::new()
            .sensor("temp")
            .function("main", &[], |b| {
                b.input("t", "temp");
                b.fresh("t");
                b.if_gt_const("t", 5, |b| {
                    b.out("alarm", &["t"]);
                });
            })
            .build()
            .unwrap();
        let parsed = crate::lower::compile(
            "sensor temp; fn main() { let t = in(temp); fresh(t); if t > 5 { out(alarm, t); } }",
        )
        .unwrap();
        assert_eq!(
            crate::print::program_to_string(&built),
            crate::print::program_to_string(&parsed)
        );
    }

    #[test]
    fn builder_expr_strings_parse() {
        let p = ProgramBuilder::new()
            .global("g", 1)
            .function("main", &[], |b| {
                b.let_("x", "g * 2 + 1");
                b.assign("g", "x");
            })
            .build_validated()
            .unwrap();
        let f = p.func(p.main);
        assert!(f
            .iter_insts()
            .any(|(_, i)| matches!(&i.op, Op::Bind { var, .. } if var == "x")));
    }

    #[test]
    fn builder_ref_args() {
        let p = ProgramBuilder::new()
            .function("store", &["v", "&dst"], |b| {
                b.store("dst", "v");
            })
            .function("main", &[], |b| {
                b.let_("slot", 0);
                b.call_void("store", &["41 + 1", "&slot"]);
            })
            .build_validated()
            .unwrap();
        assert_eq!(p.funcs.len(), 2);
    }

    #[test]
    fn builder_repeat_and_atomic() {
        let p = ProgramBuilder::new()
            .sensor("photo")
            .function("main", &[], |b| {
                b.let_("sum", 0);
                b.repeat(5, |b| {
                    b.input("v", "photo");
                    b.assign("sum", "sum + v");
                });
                b.atomic(|b| {
                    b.out("uart", &["sum"]);
                });
            })
            .build_validated()
            .unwrap();
        let f = p.func(p.main);
        assert!(f
            .iter_insts()
            .any(|(_, i)| matches!(i.op, Op::AtomStart { .. })));
    }

    #[test]
    #[should_panic(expected = "bad builder expression")]
    fn builder_panics_on_bad_expr() {
        let _ = ProgramBuilder::new()
            .function("main", &[], |b| {
                b.let_("x", "1 +");
            })
            .build();
    }
}
