//! Token kinds produced by the [`lexer`](crate::lexer).

use std::fmt;

/// A lexical token of the Ocelot modeling language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers
    /// An integer literal, e.g. `42`.
    Int(i64),
    /// An identifier, e.g. `pressure`.
    Ident(String),
    /// A string literal (used by `out` channels' payloads), e.g. `"storm"`.
    Str(String),

    // Keywords
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `repeat`
    Repeat,
    /// `while`
    While,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `fresh`
    Fresh,
    /// `consistent`
    Consistent,
    /// `atomic`
    Atomic,
    /// `in` (input operation)
    In,
    /// `out` (output operation)
    Out,
    /// `sensor` (input channel declaration)
    Sensor,
    /// `nv` (non-volatile global declaration)
    Nv,
    /// `skip`
    Skip,

    // Punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `@` — introduces a loop annotation (`while e @bound k { .. }`).
    At,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `word`, if it is a keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "repeat" => TokenKind::Repeat,
            "while" => TokenKind::While,
            "return" => TokenKind::Return,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "fresh" => TokenKind::Fresh,
            "consistent" => TokenKind::Consistent,
            "atomic" => TokenKind::Atomic,
            "in" => TokenKind::In,
            "out" => TokenKind::Out,
            "sensor" => TokenKind::Sensor,
            "nv" => TokenKind::Nv,
            "skip" => TokenKind::Skip,
            _ => return None,
        })
    }

    /// A short human-readable name used in diagnostics.
    pub fn describe(&self) -> &'static str {
        match self {
            TokenKind::Int(_) => "integer literal",
            TokenKind::Ident(_) => "identifier",
            TokenKind::Str(_) => "string literal",
            TokenKind::Fn => "`fn`",
            TokenKind::Let => "`let`",
            TokenKind::If => "`if`",
            TokenKind::Else => "`else`",
            TokenKind::Repeat => "`repeat`",
            TokenKind::While => "`while`",
            TokenKind::Return => "`return`",
            TokenKind::True => "`true`",
            TokenKind::False => "`false`",
            TokenKind::Fresh => "`fresh`",
            TokenKind::Consistent => "`consistent`",
            TokenKind::Atomic => "`atomic`",
            TokenKind::In => "`in`",
            TokenKind::Out => "`out`",
            TokenKind::Sensor => "`sensor`",
            TokenKind::Nv => "`nv`",
            TokenKind::Skip => "`skip`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LBracket => "`[`",
            TokenKind::RBracket => "`]`",
            TokenKind::Comma => "`,`",
            TokenKind::Semi => "`;`",
            TokenKind::Eq => "`=`",
            TokenKind::EqEq => "`==`",
            TokenKind::NotEq => "`!=`",
            TokenKind::Lt => "`<`",
            TokenKind::Le => "`<=`",
            TokenKind::Gt => "`>`",
            TokenKind::Ge => "`>=`",
            TokenKind::Plus => "`+`",
            TokenKind::Minus => "`-`",
            TokenKind::Star => "`*`",
            TokenKind::Slash => "`/`",
            TokenKind::Percent => "`%`",
            TokenKind::Bang => "`!`",
            TokenKind::Amp => "`&`",
            TokenKind::AmpAmp => "`&&`",
            TokenKind::PipePipe => "`||`",
            TokenKind::At => "`@`",
            TokenKind::Eof => "end of input",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(n) => write!(f, "{n}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            other => f.write_str(other.describe().trim_matches('`')),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: crate::span::Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for kw in [
            "fn",
            "let",
            "if",
            "else",
            "repeat",
            "while",
            "return",
            "fresh",
            "consistent",
            "atomic",
            "in",
            "out",
            "sensor",
            "nv",
            "skip",
        ] {
            assert!(TokenKind::keyword(kw).is_some(), "{kw} should be a keyword");
        }
        assert_eq!(TokenKind::keyword("pressure"), None);
    }

    #[test]
    fn describe_is_nonempty() {
        assert!(!TokenKind::Eof.describe().is_empty());
        assert!(!TokenKind::Int(3).describe().is_empty());
    }
}
