//! Source spans and line/column mapping for diagnostics.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
///
/// Spans are attached to tokens and AST nodes so that parse and
/// validation errors can point at the offending source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for EOF diagnostics.
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position computed from a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes).
    pub col: usize,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets in a source string to line/column positions.
///
/// Construct one per source file; lookups are `O(log lines)`.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Byte offsets at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<usize>,
    len: usize,
}

impl SourceMap {
    /// Builds the line table for `src`.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceMap {
            line_starts,
            len: src.len(),
        }
    }

    /// Returns the 1-based line/column of byte offset `pos`.
    ///
    /// Offsets past the end of the source are clamped to the final position.
    pub fn line_col(&self, pos: usize) -> LineCol {
        let pos = pos.min(self.len);
        let line = match self.line_starts.binary_search(&pos) {
            Ok(exact) => exact,
            Err(insert) => insert - 1,
        };
        LineCol {
            line: line + 1,
            col: pos - self.line_starts[line] + 1,
        }
    }

    /// Returns line/column of the start of `span`.
    pub fn span_start(&self, span: Span) -> LineCol {
        self.line_col(span.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(8, 10);
        assert_eq!(a.merge(b), Span::new(2, 10));
        assert_eq!(b.merge(a), Span::new(2, 10));
    }

    #[test]
    fn point_is_empty() {
        assert!(Span::point(7).is_empty());
        assert_eq!(Span::point(7).len(), 0);
    }

    #[test]
    fn line_col_basic() {
        let sm = SourceMap::new("ab\ncd\n\nx");
        assert_eq!(sm.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(sm.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(sm.line_col(4), LineCol { line: 2, col: 2 });
        assert_eq!(sm.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(sm.line_col(7), LineCol { line: 4, col: 1 });
    }

    #[test]
    fn line_col_clamps_past_end() {
        let sm = SourceMap::new("ab");
        assert_eq!(sm.line_col(100), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_col_at_newline_belongs_to_line() {
        let sm = SourceMap::new("ab\ncd");
        // The newline byte itself is column 3 of line 1.
        assert_eq!(sm.line_col(2), LineCol { line: 1, col: 3 });
    }
}
