//! Control-flow-graph queries over a lowered [`Function`].

use crate::ir::{BlockId, Function, Terminator};
use std::collections::HashMap;

/// Predecessor/successor tables and traversal orders for one function.
///
/// Build once per function; all queries are O(1) or O(edges).
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `succs[b]` = successor blocks of `b`.
    succs: Vec<Vec<BlockId>>,
    /// `preds[b]` = predecessor blocks of `b`.
    preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse post-order from the entry.
    rpo: Vec<BlockId>,
    /// `rpo_index[b]` = position of `b` in `rpo` (usize::MAX if unreachable).
    rpo_index: Vec<usize>,
    entry: BlockId,
    exit: BlockId,
}

impl Cfg {
    /// Builds the CFG tables for `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in &f.blocks {
            for s in b.term.successors() {
                succs[b.id.0 as usize].push(s);
                preds[s.0 as usize].push(b.id);
            }
        }
        let rpo = reverse_post_order(f.entry, &succs);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
            entry: f.entry,
            exit: f.exit,
        }
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Predecessor blocks of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Blocks in reverse post-order from the entry.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in reverse post-order, or `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.0 as usize];
        (i != usize::MAX).then_some(i)
    }

    /// The function's entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The function's exit (landing-pad) block.
    pub fn exit(&self) -> BlockId {
        self.exit
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the function has no blocks (never the case for lowered
    /// functions, which always have at least entry and exit).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Back edges `(from, to)` where `to` appears no later than `from` in
    /// reverse post-order — i.e. loop edges.
    pub fn back_edges(&self) -> Vec<(BlockId, BlockId)> {
        let mut out = Vec::new();
        for (bi, ss) in self.succs.iter().enumerate() {
            let b = BlockId(bi as u32);
            let (Some(bidx), ss) = (self.rpo_index(b), ss) else {
                continue;
            };
            for &s in ss {
                if let Some(sidx) = self.rpo_index(s) {
                    if sidx <= bidx {
                        out.push((b, s));
                    }
                }
            }
        }
        out
    }
}

/// Computes reverse post-order from `entry` given a successor table.
fn reverse_post_order(entry: BlockId, succs: &[Vec<BlockId>]) -> Vec<BlockId> {
    let n = succs.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    visited[entry.0 as usize] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let ss = &succs[b.0 as usize];
        if *i < ss.len() {
            let s = ss[*i];
            *i += 1;
            if !visited[s.0 as usize] {
                visited[s.0 as usize] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// A reverse view of the CFG (edges flipped, exit as entry), used by
/// post-dominator construction.
#[derive(Debug, Clone)]
pub struct ReverseCfg {
    /// Successors in the reversed graph (= predecessors in the original).
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors in the reversed graph (= successors in the original).
    pub preds: Vec<Vec<BlockId>>,
    /// RPO of the reversed graph starting from the original exit.
    pub rpo: Vec<BlockId>,
    /// Entry of the reversed graph (= original exit).
    pub entry: BlockId,
}

impl ReverseCfg {
    /// Builds the reversed CFG for `f`.
    ///
    /// Lowered functions always funnel returns through the landing pad, so
    /// the reversed graph has a single entry (the original exit).
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in 0..n {
            let id = BlockId(b as u32);
            succs[b] = cfg.preds(id).to_vec();
            preds[b] = cfg.succs(id).to_vec();
        }
        let rpo = reverse_post_order(f.exit, &succs);
        ReverseCfg {
            succs,
            preds,
            rpo,
            entry: f.exit,
        }
    }
}

/// Maps every `(block, terminator-kind)` pair for quick structural tests.
pub fn terminator_kinds(f: &Function) -> HashMap<BlockId, &'static str> {
    f.blocks
        .iter()
        .map(|b| {
            let k = match b.term {
                Terminator::Jump(_) => "jump",
                Terminator::Branch { .. } => "branch",
                Terminator::Ret(_) => "ret",
            };
            (b.id, k)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    #[test]
    fn diamond_has_expected_edges() {
        let p = compile(
            "fn main() { let x = 1; if x > 0 { let a = 1; } else { let b = 2; } let c = 3; }",
        )
        .unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let entry = f.entry;
        assert_eq!(cfg.succs(entry).len(), 2);
        let join_preds: Vec<_> = (0..cfg.len())
            .map(|i| BlockId(i as u32))
            .filter(|b| cfg.preds(*b).len() == 2)
            .collect();
        assert_eq!(join_preds.len(), 1, "exactly one join block");
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let p = compile("fn main() { let x = 1; if x > 0 { let a = 1; } let c = 3; }").unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        assert_eq!(cfg.rpo()[0], f.entry);
        // Every non-back edge goes forward in RPO.
        for b in cfg.rpo() {
            for s in cfg.succs(*b) {
                let bi = cfg.rpo_index(*b).unwrap();
                let si = cfg.rpo_index(*s).unwrap();
                assert!(si > bi || cfg.back_edges().contains(&(*b, *s)));
            }
        }
    }

    #[test]
    fn loop_produces_back_edge() {
        let p = compile("sensor s; fn main() { repeat 4 { let v = in(s); } }").unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        assert_eq!(cfg.back_edges().len(), 1);
    }

    #[test]
    fn straight_line_has_no_back_edges() {
        let p = compile("fn main() { let x = 1; let y = 2; }").unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        assert!(cfg.back_edges().is_empty());
    }

    #[test]
    fn reverse_cfg_entry_is_exit() {
        let p = compile("fn main() { let x = 1; if x > 0 { return 1; } let y = 2; }").unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        let rcfg = ReverseCfg::new(f, &cfg);
        assert_eq!(rcfg.entry, f.exit);
        assert_eq!(rcfg.rpo[0], f.exit);
        // Reversed graph reaches every block (single landing pad).
        assert_eq!(rcfg.rpo.len(), f.blocks.len());
    }

    #[test]
    fn exit_has_no_successors() {
        let p = compile("fn main() { let x = 1; }").unwrap();
        let f = p.func(p.main);
        let cfg = Cfg::new(f);
        assert!(cfg.succs(f.exit).is_empty());
    }
}
