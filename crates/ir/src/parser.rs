//! Recursive-descent parser for the Ocelot modeling language.
//!
//! Grammar (see [`crate::ast`] for node meanings):
//!
//! ```text
//! program   := (sensor | global | function)*
//! sensor    := "sensor" IDENT ";"
//! global    := "nv" IDENT ("[" INT "]")? ("=" INT)? ";"
//! function  := "fn" IDENT "(" params? ")" block
//! params    := param ("," param)*       param := "&"? IDENT
//! block     := "{" stmt* "}"
//! stmt      := "skip" ";"
//!            | "let" "fresh" IDENT "=" expr ";"
//!            | "let" "consistent" "(" INT ")" IDENT "=" expr ";"
//!            | "let" IDENT "=" "in" "(" IDENT ")" ";"
//!            | "let" IDENT "=" IDENT "(" args? ")" ";"
//!            | "let" IDENT "=" expr ";"
//!            | "fresh" "(" IDENT ")" ";"
//!            | "consistent" "(" IDENT "," INT ")" ";"
//!            | "if" expr block ("else" block)?
//!            | "repeat" INT block
//!            | "while" expr block
//!            | "atomic" block
//!            | "out" "(" IDENT ("," expr)* ")" ";"
//!            | "return" expr? ";"
//!            | "*" IDENT "=" expr ";"
//!            | IDENT "[" expr "]" "=" expr ";"
//!            | IDENT "=" expr ";"
//!            | IDENT "(" args? ")" ";"
//! args      := arg ("," arg)*           arg := "&" IDENT | expr
//! expr      := or
//! or        := and ("||" and)*
//! and       := cmp ("&&" cmp)*
//! cmp       := add (("=="|"!="|"<"|"<="|">"|">=") add)?
//! add       := mul (("+"|"-") mul)*
//! mul       := unary (("*"|"/"|"%") unary)*
//! unary     := ("-"|"!") unary | primary
//! primary   := INT | "true" | "false" | IDENT ("[" expr "]")?
//!            | "*" IDENT | "&" IDENT | "(" expr ")"
//! ```

use crate::ast::*;
use crate::error::{IrError, Result};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete source program.
///
/// # Errors
///
/// Returns [`IrError::Lex`] or [`IrError::Parse`] describing the first
/// malformed construct.
///
/// # Examples
///
/// ```
/// let src = r#"
///     sensor temp;
///     fn main() {
///         let fresh x = 0;
///         let t = in(temp);
///     }
/// "#;
/// let ast = ocelot_ir::parse(src).unwrap();
/// assert_eq!(ast.funcs.len(), 1);
/// assert_eq!(ast.sensors.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<AstProgram> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(kind.describe()))
        }
    }

    fn unexpected(&self, wanted: &str) -> IrError {
        IrError::Parse {
            span: self.span(),
            message: format!("expected {wanted}, found {}", self.peek().describe()),
        }
    }

    fn ident(&mut self) -> Result<Ident> {
        match self.peek() {
            TokenKind::Ident(_) => match self.bump().kind {
                TokenKind::Ident(name) => Ok(name),
                _ => unreachable!(),
            },
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn int(&mut self) -> Result<i64> {
        match self.peek() {
            TokenKind::Int(_) => match self.bump().kind {
                TokenKind::Int(n) => Ok(n),
                _ => unreachable!(),
            },
            _ => Err(self.unexpected("integer literal")),
        }
    }

    // ---- top level ----------------------------------------------------

    fn program(&mut self) -> Result<AstProgram> {
        let mut prog = AstProgram::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Sensor => {
                    let start = self.span();
                    self.bump();
                    let name = self.ident()?;
                    let end = self.span();
                    self.expect(TokenKind::Semi)?;
                    prog.sensors.push(SensorDecl {
                        name,
                        span: start.merge(end),
                    });
                }
                TokenKind::Nv => {
                    let start = self.span();
                    self.bump();
                    let name = self.ident()?;
                    let array_len = if self.eat(&TokenKind::LBracket) {
                        let n = self.int()?;
                        self.expect(TokenKind::RBracket)?;
                        if n < 0 {
                            return Err(IrError::Parse {
                                span: start,
                                message: "array length must be non-negative".into(),
                            });
                        }
                        Some(n as usize)
                    } else {
                        None
                    };
                    let init = if self.eat(&TokenKind::Eq) {
                        let neg = self.eat(&TokenKind::Minus);
                        let n = self.int()?;
                        if neg {
                            -n
                        } else {
                            n
                        }
                    } else {
                        0
                    };
                    let end = self.span();
                    self.expect(TokenKind::Semi)?;
                    prog.globals.push(GlobalDecl {
                        name,
                        array_len,
                        init,
                        span: start.merge(end),
                    });
                }
                TokenKind::Fn => prog.funcs.push(self.function()?),
                _ => return Err(self.unexpected("`sensor`, `nv`, or `fn`")),
            }
        }
        Ok(prog)
    }

    fn function(&mut self) -> Result<FunDecl> {
        let start = self.span();
        self.expect(TokenKind::Fn)?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let by_ref = self.eat(&TokenKind::Amp);
                let pname = self.ident()?;
                params.push(Param {
                    name: pname,
                    by_ref,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let hdr_end = self.span();
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(FunDecl {
            name,
            params,
            body,
            span: start.merge(hdr_end),
        })
    }

    fn block(&mut self) -> Result<Block> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Block::new(stmts))
    }

    // ---- statements ---------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Skip => {
                self.bump();
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Skip(start.merge(end)))
            }
            TokenKind::Let => self.let_stmt(start),
            TokenKind::Fresh => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let x = self.ident()?;
                self.expect(TokenKind::RParen)?;
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::FreshAnnot(x, start.merge(end)))
            }
            TokenKind::Consistent => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let x = self.ident()?;
                self.expect(TokenKind::Comma)?;
                let id = self.int()?;
                self.expect(TokenKind::RParen)?;
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::ConsistentAnnot(x, id as u32, start.merge(end)))
            }
            TokenKind::If => {
                self.bump();
                let cond = self.expr()?;
                let then_b = self.block()?;
                let else_b = if self.eat(&TokenKind::Else) {
                    Some(self.block()?)
                } else {
                    None
                };
                Ok(Stmt::If(cond, then_b, else_b, start))
            }
            TokenKind::Repeat => {
                self.bump();
                let n = self.int()?;
                if n < 0 {
                    return Err(IrError::Parse {
                        span: start,
                        message: "repeat count must be non-negative".into(),
                    });
                }
                let body = self.block()?;
                Ok(Stmt::Repeat(n as u64, body, start))
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                // `while e @bound k { .. }` declares the loop's trip
                // count for the forward-progress analysis; the runtime
                // semantics are unchanged.
                let bound = if self.eat(&TokenKind::At) {
                    let word = self.ident()?;
                    if word != "bound" {
                        return Err(IrError::Parse {
                            span: start,
                            message: format!(
                                "unknown loop annotation `@{word}` (only `@bound k` is supported)"
                            ),
                        });
                    }
                    // The lexer only produces non-negative literals, so
                    // `@bound -1` fails in `int()` on the `-`.
                    Some(self.int()? as u64)
                } else {
                    None
                };
                let body = self.block()?;
                Ok(Stmt::While(cond, bound, body, start))
            }
            TokenKind::Atomic => {
                self.bump();
                let body = self.block()?;
                Ok(Stmt::Atomic(body, start))
            }
            TokenKind::Out => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let chan = self.ident()?;
                let mut args = Vec::new();
                while self.eat(&TokenKind::Comma) {
                    // String payloads are modeled as their length: the
                    // runtime only needs a value with an output cost.
                    if let TokenKind::Str(_) = self.peek() {
                        if let TokenKind::Str(s) = self.bump().kind {
                            args.push(Expr::Int(s.len() as i64));
                        }
                    } else {
                        args.push(self.expr()?);
                    }
                }
                self.expect(TokenKind::RParen)?;
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Out(chan, args, start.merge(end)))
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return(value, start.merge(end)))
            }
            TokenKind::Star => {
                self.bump();
                let x = self.ident()?;
                self.expect(TokenKind::Eq)?;
                let e = self.expr()?;
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::AssignDeref(x, e, start.merge(end)))
            }
            TokenKind::Ident(_) => self.ident_stmt(start),
            _ => Err(self.unexpected("statement")),
        }
    }

    fn let_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.expect(TokenKind::Let)?;
        match self.peek().clone() {
            TokenKind::Fresh => {
                self.bump();
                let x = self.ident()?;
                self.expect(TokenKind::Eq)?;
                let e = self.expr()?;
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::LetFresh(x, e, start.merge(end)))
            }
            TokenKind::Consistent => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let id = self.int()?;
                self.expect(TokenKind::RParen)?;
                let x = self.ident()?;
                self.expect(TokenKind::Eq)?;
                let e = self.expr()?;
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::LetConsistent(id as u32, x, e, start.merge(end)))
            }
            TokenKind::Ident(_) => {
                let x = self.ident()?;
                self.expect(TokenKind::Eq)?;
                match (self.peek().clone(), self.peek2().clone()) {
                    (TokenKind::In, TokenKind::LParen) => {
                        self.bump();
                        self.bump();
                        let chan = self.ident()?;
                        self.expect(TokenKind::RParen)?;
                        let end = self.span();
                        self.expect(TokenKind::Semi)?;
                        Ok(Stmt::LetInput(x, chan, start.merge(end)))
                    }
                    (TokenKind::Ident(f), TokenKind::LParen) => {
                        self.bump();
                        self.bump();
                        let args = self.args()?;
                        self.expect(TokenKind::RParen)?;
                        let end = self.span();
                        self.expect(TokenKind::Semi)?;
                        Ok(Stmt::LetCall(x, f, args, start.merge(end)))
                    }
                    _ => {
                        let e = self.expr()?;
                        let end = self.span();
                        self.expect(TokenKind::Semi)?;
                        Ok(Stmt::Let(x, e, start.merge(end)))
                    }
                }
            }
            _ => Err(self.unexpected("`fresh`, `consistent`, or identifier after `let`")),
        }
    }

    fn ident_stmt(&mut self, start: Span) -> Result<Stmt> {
        let name = self.ident()?;
        match self.peek().clone() {
            TokenKind::Eq => {
                self.bump();
                let e = self.expr()?;
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assign(name, e, start.merge(end)))
            }
            TokenKind::LBracket => {
                self.bump();
                let idx = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                self.expect(TokenKind::Eq)?;
                let e = self.expr()?;
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::AssignIndex(name, idx, e, start.merge(end)))
            }
            TokenKind::LParen => {
                self.bump();
                let args = self.args()?;
                self.expect(TokenKind::RParen)?;
                let end = self.span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::CallStmt(name, args, start.merge(end)))
            }
            _ => Err(self.unexpected("`=`, `[`, or `(` after identifier")),
        }
    }

    fn args(&mut self) -> Result<Vec<Arg>> {
        let mut args = Vec::new();
        if self.peek() == &TokenKind::RParen {
            return Ok(args);
        }
        loop {
            if self.peek() == &TokenKind::Amp {
                self.bump();
                let x = self.ident()?;
                args.push(Arg::Ref(x));
            } else {
                args.push(Arg::Value(self.expr()?));
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(args)
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::PipePipe) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AmpAmp) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            TokenKind::Star => {
                self.bump();
                Ok(Expr::Deref(self.ident()?))
            }
            TokenKind::Amp => {
                self.bump();
                Ok(Expr::Ref(self.ident()?))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(_) => {
                let name = self.ident()?;
                if self.eat(&TokenKind::LBracket) {
                    let idx = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2_program() {
        // The motivating example from Figure 2 of the paper.
        let src = r#"
            sensor tmp;
            sensor pres;
            sensor hum;
            fn main() {
                let x = in(tmp);
                fresh(x);
                if x > 5 {
                    out(alarm, x);
                }
                let y = in(pres);
                consistent(y, 1);
                let z = in(hum);
                consistent(z, 1);
                out(log, y, z);
            }
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(ast.sensors.len(), 3);
        let main = ast.func("main").unwrap();
        assert_eq!(main.body.stmts.len(), 8);
        assert!(matches!(main.body.stmts[1], Stmt::FreshAnnot(..)));
        assert!(matches!(main.body.stmts[4], Stmt::ConsistentAnnot(_, 1, _)));
    }

    #[test]
    fn parses_let_forms() {
        let src = r#"
            sensor s;
            fn main() {
                let fresh a = 1;
                let consistent(2) b = 2;
                let c = in(s);
                let d = helper(c, &b);
                let e = c + d;
            }
            fn helper(v, &r) { return v; }
        "#;
        let ast = parse(src).unwrap();
        let main = ast.func("main").unwrap();
        assert!(matches!(main.body.stmts[0], Stmt::LetFresh(..)));
        assert!(matches!(main.body.stmts[1], Stmt::LetConsistent(2, ..)));
        assert!(matches!(main.body.stmts[2], Stmt::LetInput(..)));
        match &main.body.stmts[3] {
            Stmt::LetCall(x, f, args, _) => {
                assert_eq!(x, "d");
                assert_eq!(f, "helper");
                assert_eq!(args.len(), 2);
                assert!(matches!(args[1], Arg::Ref(_)));
            }
            other => panic!("expected LetCall, got {other:?}"),
        }
        let helper = ast.func("helper").unwrap();
        assert!(helper.params[1].by_ref);
        assert!(!helper.params[0].by_ref);
    }

    #[test]
    fn parses_operator_precedence() {
        let src = "fn main() { let x = 1 + 2 * 3; }";
        let ast = parse(src).unwrap();
        match &ast.func("main").unwrap().body.stmts[0] {
            Stmt::Let(_, Expr::Binary(BinOp::Add, l, r), _) => {
                assert_eq!(**l, Expr::Int(1));
                assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let src = "fn main() { let x = a || b && c; }";
        let ast = parse(src).unwrap();
        match &ast.func("main").unwrap().body.stmts[0] {
            Stmt::Let(_, Expr::Binary(BinOp::Or, _, r), _) => {
                assert!(matches!(**r, Expr::Binary(BinOp::And, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_repeat_and_atomic() {
        let src = r#"
            sensor photo;
            fn main() {
                repeat 5 {
                    let v = in(photo);
                }
                atomic {
                    skip;
                }
            }
        "#;
        let ast = parse(src).unwrap();
        let main = ast.func("main").unwrap();
        assert!(matches!(main.body.stmts[0], Stmt::Repeat(5, ..)));
        assert!(matches!(main.body.stmts[1], Stmt::Atomic(..)));
    }

    #[test]
    fn parses_while_with_condition() {
        let src = "nv g = 3; fn main() { while g > 0 { g = g - 1; } }";
        let ast = parse(src).unwrap();
        let main = ast.func("main").unwrap();
        match &main.body.stmts[0] {
            Stmt::While(cond, bound, body, _) => {
                assert!(matches!(cond, Expr::Binary(BinOp::Gt, _, _)));
                assert_eq!(*bound, None);
                assert_eq!(body.stmts.len(), 1);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn while_requires_a_block() {
        assert!(parse("fn main() { while 1 skip; }").is_err());
    }

    #[test]
    fn parses_while_with_bound_annotation() {
        let src = "nv g = 3; fn main() { while g > 0 @bound 12 { g = g - 1; } }";
        let ast = parse(src).unwrap();
        let main = ast.func("main").unwrap();
        match &main.body.stmts[0] {
            Stmt::While(_, bound, body, _) => {
                assert_eq!(*bound, Some(12));
                assert_eq!(body.stmts.len(), 1);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn bound_annotation_rejects_bad_forms() {
        // A negative count is meaningless (literals are non-negative).
        let err =
            parse("nv g = 1; fn main() { while g > 0 @bound -1 { g = g - 1; } }").unwrap_err();
        assert!(err.to_string().contains("integer literal"), "{err}");
        // Only `bound` is a known loop annotation.
        let err = parse("nv g = 1; fn main() { while g > 0 @fuel 3 { g = g - 1; } }").unwrap_err();
        assert!(err.to_string().contains("unknown loop annotation"), "{err}");
        // The count is mandatory.
        assert!(parse("nv g = 1; fn main() { while g > 0 @bound { g = g - 1; } }").is_err());
    }

    #[test]
    fn parses_array_and_deref_stores() {
        let src = r#"
            nv buf[8];
            fn main(&p) {
                buf[2] = 7;
                *p = buf[2] + *p;
            }
        "#;
        let ast = parse(src).unwrap();
        let main = ast.func("main").unwrap();
        assert!(matches!(main.body.stmts[0], Stmt::AssignIndex(..)));
        assert!(matches!(main.body.stmts[1], Stmt::AssignDeref(..)));
    }

    #[test]
    fn parses_globals_with_init() {
        let src = "nv count = 3; nv neg = -4; nv arr[16];";
        let ast = parse(src).unwrap();
        assert_eq!(ast.globals[0].init, 3);
        assert_eq!(ast.globals[1].init, -4);
        assert_eq!(ast.globals[2].array_len, Some(16));
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse("fn main() { let x = 1 }").is_err());
    }

    #[test]
    fn rejects_garbage_at_top_level() {
        assert!(parse("let x = 1;").is_err());
    }

    #[test]
    fn rejects_unclosed_block() {
        assert!(parse("fn main() { skip;").is_err());
    }

    #[test]
    fn rejects_negative_repeat() {
        assert!(parse("fn main() { repeat -1 { skip; } }").is_err());
    }

    #[test]
    fn string_payloads_become_lengths() {
        let src = r#"fn main() { out(uart, "abc"); }"#;
        let ast = parse(src).unwrap();
        match &ast.func("main").unwrap().body.stmts[0] {
            Stmt::Out(_, args, _) => assert_eq!(args[0], Expr::Int(3)),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn comparison_is_non_associative() {
        // `a < b < c` should fail to parse a second comparison cleanly:
        // the grammar permits only one comparison per level, so the
        // trailing `< c` is a parse error.
        assert!(parse("fn main() { let x = a < b < c; }").is_err());
    }
}
