//! Hand-written lexer for the Ocelot modeling language.

use crate::error::{IrError, Result};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenizes `src` into a vector of tokens ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns [`IrError::Lex`] on unrecognized characters, unterminated string
/// literals, or integer literals that do not fit in `i64`.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'0'..=b'9' => self.number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'"' => self.string(start)?,
                _ => self.punct(start)?,
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span::point(self.src.len()),
        });
        Ok(self.tokens)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start, self.pos),
        });
    }

    fn number(&mut self, start: usize) -> Result<()> {
        while matches!(self.peek(0), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let value: i64 = text.parse().map_err(|_| IrError::Lex {
            span: Span::new(start, self.pos),
            message: format!("integer literal `{text}` does not fit in i64"),
        })?;
        self.push(TokenKind::Int(value), start);
        Ok(())
    }

    fn ident(&mut self, start: usize) {
        while matches!(
            self.peek(0),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let kind = match text {
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            _ => TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned())),
        };
        self.push(kind, start);
    }

    fn string(&mut self, start: usize) -> Result<()> {
        self.pos += 1; // opening quote
        let content_start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let text = self.src[content_start..self.pos].to_owned();
                self.pos += 1; // closing quote
                self.push(TokenKind::Str(text), start);
                return Ok(());
            }
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        Err(IrError::Lex {
            span: Span::new(start, self.pos),
            message: "unterminated string literal".to_owned(),
        })
    }

    fn punct(&mut self, start: usize) -> Result<()> {
        let b = self.bytes[self.pos];
        let two = |l: &Lexer<'_>| l.peek(1);
        let (kind, len) = match b {
            b'(' => (TokenKind::LParen, 1),
            b')' => (TokenKind::RParen, 1),
            b'{' => (TokenKind::LBrace, 1),
            b'}' => (TokenKind::RBrace, 1),
            b'[' => (TokenKind::LBracket, 1),
            b']' => (TokenKind::RBracket, 1),
            b',' => (TokenKind::Comma, 1),
            b';' => (TokenKind::Semi, 1),
            b'+' => (TokenKind::Plus, 1),
            b'-' => (TokenKind::Minus, 1),
            b'*' => (TokenKind::Star, 1),
            b'/' => (TokenKind::Slash, 1),
            b'%' => (TokenKind::Percent, 1),
            b'@' => (TokenKind::At, 1),
            b'=' if two(self) == Some(b'=') => (TokenKind::EqEq, 2),
            b'=' => (TokenKind::Eq, 1),
            b'!' if two(self) == Some(b'=') => (TokenKind::NotEq, 2),
            b'!' => (TokenKind::Bang, 1),
            b'<' if two(self) == Some(b'=') => (TokenKind::Le, 2),
            b'<' => (TokenKind::Lt, 1),
            b'>' if two(self) == Some(b'=') => (TokenKind::Ge, 2),
            b'>' => (TokenKind::Gt, 1),
            b'&' if two(self) == Some(b'&') => (TokenKind::AmpAmp, 2),
            b'&' => (TokenKind::Amp, 1),
            b'|' if two(self) == Some(b'|') => (TokenKind::PipePipe, 2),
            _ => {
                return Err(IrError::Lex {
                    span: Span::new(start, start + 1),
                    message: format!(
                        "unrecognized character `{}`",
                        self.src[start..].chars().next().unwrap_or('?')
                    ),
                })
            }
        };
        self.pos += len;
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 42;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Int(42),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && ||"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AmpAmp,
                TokenKind::PipePipe,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_amp_from_ampamp() {
        assert_eq!(
            kinds("&x && y"),
            vec![
                TokenKind::Amp,
                TokenKind::Ident("x".into()),
                TokenKind::AmpAmp,
                TokenKind::Ident("y".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(
            kinds("x // the variable\n= 1;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Int(1),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        assert_eq!(
            kinds("fn fresh freshx in input"),
            vec![
                TokenKind::Fn,
                TokenKind::Fresh,
                TokenKind::Ident("freshx".into()),
                TokenKind::In,
                TokenKind::Ident("input".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_literals() {
        assert_eq!(
            kinds(r#"out(uart, "storm");"#),
            vec![
                TokenKind::Out,
                TokenKind::LParen,
                TokenKind::Ident("uart".into()),
                TokenKind::Comma,
                TokenKind::Str("storm".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("x = #;").is_err());
    }

    #[test]
    fn rejects_huge_integer() {
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn spans_point_at_source() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn bools_lex_as_keywords() {
        assert_eq!(
            kinds("true false"),
            vec![TokenKind::True, TokenKind::False, TokenKind::Eof]
        );
    }
}
