//! # ocelot-lint — static policy-feasibility and check-placement analysis
//!
//! The paper enforces freshness and consistency *dynamically*: checks at
//! uses, mitigations on violation. A whole class of defects is decidable
//! *statically*, before a device ever runs. An expiry window smaller
//! than the minimum collect-to-use path cost means every execution
//! either violates or livelocks in a mitigation storm — exactly the
//! non-termination risk §7 calls out, and the obligation-style reasoning
//! of the formal-foundations line of work. This crate is that decision
//! procedure, surfaced as `ocelotc lint`:
//!
//! * **OC001/OC002** — infeasible (or best-case-only) freshness windows,
//!   from minimum/worst-case interprocedural path costs
//!   ([`ocelot_progress::FeasAnalysis`] / [`ocelot_progress::WcetAnalysis`]);
//! * **OC003** — dead policies no realizable call stack feeds;
//! * **OC004** — dynamic checks the `--opt 2` middle-end elides, named
//!   with their dominating collection sites (one shared witness function
//!   guarantees the lint report *equals* the elision set);
//! * **OC005** — freshness obligations dischargeable only through loops
//!   the progress analysis cannot bound;
//! * **OC006/OC007** — atomic regions that can never (or may not) fit
//!   the energy buffer, so their consistent sets cannot be collected.
//!
//! Findings flow through a structured diagnostics layer ([`Report`],
//! [`Finding`], [`Label`]) with stable codes, severities, and primary +
//! related source [`Span`](ocelot_ir::span::Span)s, rendered as
//! rustc-style text here and as byte-stable JSON by the bench crate's
//! encoder.
//!
//! ```
//! use ocelot_lint::{lint_source, LintOptions};
//!
//! let opts = LintOptions { window_us: Some(10), ..LintOptions::default() };
//! let report = lint_source(
//!     "sensor s; fn main() { let x = in(s); fresh(x); out(log, x); out(alarm, x); }",
//!     &opts,
//! ).unwrap();
//! // The cheapest path to the second use crosses a 100µs output: a
//! // 10µs window can never be met — flagged before any sweep is burned.
//! assert!(!report.is_error_free());
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod diag;
pub mod passes;

pub use diag::{Code, Finding, Label, Report, Severity, ALL_CODES};
pub use passes::{lint_compiled, lint_source, LintError, LintOptions};

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_hw::energy::CostModel;

    fn lint(src: &str, opts: &LintOptions) -> Report {
        lint_source(src, opts).expect("source lints")
    }

    fn codes(r: &Report) -> Vec<Code> {
        r.findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn clean_program_stays_clean() {
        // Straight-line collect-then-use: the only finding allowed is
        // the note that the check is elided (which --opt 2 indeed does);
        // nothing reaches warning or error severity.
        let r = lint(
            "sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }",
            &LintOptions::default(),
        );
        assert!(
            r.findings.iter().all(|f| f.severity == Severity::Note),
            "unexpected findings: {:?}",
            r.findings
        );
    }

    #[test]
    fn infeasible_window_is_an_error_with_spans() {
        // Default costs: one output is 800 cycles = 100µs; a 10µs
        // window cannot survive even the cheapest path to the use.
        let src = "sensor s;\nfn main() { let x = in(s); fresh(x); out(log, x); out(alarm, x); }\n";
        let opts = LintOptions {
            window_us: Some(10),
            ..LintOptions::default()
        };
        let r = lint(src, &opts);
        assert!(codes(&r).contains(&Code::InfeasibleWindow), "{r:?}");
        assert!(!r.is_error_free());
        let f = r
            .findings
            .iter()
            .find(|f| f.code == Code::InfeasibleWindow)
            .unwrap();
        assert!(!f.primary.span.is_empty(), "finding must be spanned");
        assert!(f.primary.line >= 1 && f.primary.col >= 1);
        assert!(
            f.related.iter().any(|l| !l.span.is_empty()),
            "collecting input should be named"
        );
    }

    #[test]
    fn generous_window_stays_quiet() {
        let src = "sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }";
        let opts = LintOptions {
            window_us: Some(1_000_000),
            ..LintOptions::default()
        };
        let r = lint(src, &opts);
        assert!(
            !codes(&r).contains(&Code::InfeasibleWindow)
                && !codes(&r).contains(&Code::BestCaseWindow),
            "{r:?}"
        );
    }

    #[test]
    fn best_case_only_window_warns() {
        // Cheap arm: skip. Expensive arm: two outputs (200µs). A window
        // between the two costs is feasible only on the cheap path. The
        // branch steers on an unconstrained sensor so the fresh value's
        // only uses sit at the join, where min < window < max.
        let src = r#"
            sensor s; sensor t;
            fn main() {
                let y = in(t);
                let x = in(s);
                fresh(x);
                if y > 0 { skip; } else { out(log, y); out(log, y); }
                out(alarm, x);
            }
        "#;
        let opts = LintOptions {
            window_us: Some(150),
            ..LintOptions::default()
        };
        let r = lint(src, &opts);
        assert!(codes(&r).contains(&Code::BestCaseWindow), "{r:?}");
        assert!(r.is_error_free(), "warning, not error: {r:?}");
    }

    #[test]
    fn dead_fresh_policy_warns() {
        // `x` never depends on a sensor input.
        let src = "sensor s; fn main() { let x = 1; fresh(x); out(log, x); }";
        let r = lint(src, &LintOptions::default());
        assert!(codes(&r).contains(&Code::DeadPolicy), "{r:?}");
    }

    #[test]
    fn dead_consistent_without_inputs_warns() {
        // No sensor ever feeds the set (a lone sensed chain is NOT dead:
        // inside a loop it yields many dynamic samples to relate).
        let src = "sensor s; fn main() { let x = 1; consistent(x, 1); out(log, x); }";
        let r = lint(src, &LintOptions::default());
        assert!(codes(&r).contains(&Code::DeadPolicy), "{r:?}");
    }

    #[test]
    fn redundant_check_is_noted_with_dominating_site() {
        // Straight-line collect-then-use: the bit is always set, the O2
        // middle-end elides the probe, lint says so.
        let src = "sensor s; fn main() { let x = in(s); fresh(x); out(alarm, x); }";
        let opts = LintOptions::default();
        let r = lint_source(src, &opts).unwrap();
        // The clean-program test above expects zero findings; redundancy
        // notes only appear when a check exists AND is provably covered.
        // This program's one check is exactly that, but we keep apps
        // clean by reporting elisions at note severity only.
        let notes: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.code == Code::RedundantCheck)
            .collect();
        // Either the site is elidable (note present, spanned, with a
        // dominating witness) or the detector emitted no check at all.
        for n in &notes {
            assert_eq!(n.severity, Severity::Note);
            assert!(!n.primary.span.is_empty());
        }
    }

    #[test]
    fn energy_infeasible_region_errors() {
        // Two inputs at 4000 cycles each inside one region: ≥ 8000 nJ
        // at the default 1 nJ/cycle. A 100 nJ buffer can never finish.
        let src = r#"
            sensor a; sensor b;
            fn main() {
                let x = in(a);
                let y = in(b);
                consistent(x, 2);
                consistent(y, 2);
                out(log, x + y);
            }
        "#;
        let opts = LintOptions {
            capacity_nj: Some(100.0),
            ..LintOptions::default()
        };
        let r = lint(src, &opts);
        assert!(codes(&r).contains(&Code::RegionNeverFits), "{r:?}");
        assert!(!r.is_error_free());
        let f = r
            .findings
            .iter()
            .find(|f| f.code == Code::RegionNeverFits)
            .unwrap();
        assert!(!f.primary.span.is_empty(), "region start is spanned");
    }

    #[test]
    fn ample_buffer_stays_quiet() {
        let src = r#"
            sensor a; sensor b;
            fn main() {
                let x = in(a);
                let y = in(b);
                consistent(x, 2);
                consistent(y, 2);
                out(log, x + y);
            }
        "#;
        let opts = LintOptions {
            capacity_nj: Some(1e9),
            ..LintOptions::default()
        };
        let r = lint(src, &opts);
        assert!(
            !codes(&r).contains(&Code::RegionNeverFits)
                && !codes(&r).contains(&Code::RegionMayExceed),
            "{r:?}"
        );
    }

    #[test]
    fn unbounded_loop_blocking_obligation_warns() {
        // The use precedes the collect inside a `while` the bounds
        // analysis cannot bound (`go` never advances toward an exit):
        // reaching the use after collecting requires the back edge. The
        // by-ref helper keeps `x` a single variable across iterations.
        let src = r#"
            sensor s;
            nv go = 1;
            fn sense(&r) { let v = in(s); *r = v; }
            fn main() {
                let x = 0;
                while go > 0 {
                    out(alarm, x);
                    sense(&x);
                    fresh(x);
                }
            }
        "#;
        let r = lint(src, &LintOptions::default());
        assert!(codes(&r).contains(&Code::UnboundedObligation), "{r:?}");
    }

    #[test]
    fn bounded_repeat_does_not_trip_oc005() {
        // Same shape, but the loop has an exact bound: the obligation
        // discharges through a bounded back edge, so no OC005.
        let src = r#"
            sensor s;
            fn sense(&r) { let v = in(s); *r = v; }
            fn main() {
                let x = 0;
                repeat 5 {
                    out(alarm, x);
                    sense(&x);
                    fresh(x);
                }
            }
        "#;
        let r = lint(src, &LintOptions::default());
        assert!(!codes(&r).contains(&Code::UnboundedObligation), "{r:?}");
    }

    #[test]
    fn compile_failure_is_an_error_not_a_report() {
        assert!(lint_source("fn main() { let x = ; }", &LintOptions::default()).is_err());
        assert!(lint_source("fn main() { main(); }", &LintOptions::default()).is_err());
    }

    #[test]
    fn report_is_deterministic_across_runs() {
        let src = r#"
            sensor s;
            fn main() {
                let dead = 1;
                fresh(dead);
                let x = in(s);
                fresh(x);
                out(log, x);
                out(alarm, x + dead);
            }
        "#;
        let opts = LintOptions {
            window_us: Some(50),
            capacity_nj: Some(50_000.0),
            costs: CostModel::default(),
            context_cap: 512,
        };
        let a = lint(src, &opts);
        let b = lint(src, &opts);
        assert_eq!(a, b);
        assert_eq!(
            a.render_text("p.oc", Some(src)),
            b.render_text("p.oc", Some(src))
        );
    }
}
