//! The structured diagnostics layer: stable codes, severities, spanned
//! labels, and a deterministic human renderer.
//!
//! Every finding carries a primary [`Label`] (a source span with its
//! precomputed 1-based line/column) plus any number of related labels
//! naming the other program points the verdict rests on (the collecting
//! input, the dominating check site, the region markers). Line/column
//! are resolved once at lint time so a [`Report`] renders without the
//! source at hand — the serve cache and the JSON encoder both depend on
//! that self-containment.

use ocelot_ir::span::{SourceMap, Span};
use std::fmt;

/// Diagnostic severity, ordered least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — nothing is wrong, but the runtime will behave
    /// differently than the source suggests (e.g. an elided check).
    Note,
    /// The program runs, but some executions violate or waste work.
    Warning,
    /// Every execution misbehaves: violation, livelock, or a region
    /// that can never commit.
    Error,
}

impl Severity {
    /// The lowercase name used in both renderers (`error`, `warning`,
    /// `note`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes — the `OC0xx` registry (see `docs/lint.md`).
///
/// Codes are append-only: a released code never changes meaning or
/// default severity, so downstream tooling can match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// OC001 — a freshness expiry window smaller than the *minimum*
    /// collect-to-use path cost: every execution trips the expiry
    /// check and the mitigation restarts livelock.
    InfeasibleWindow,
    /// OC002 — the window is met only on the cheapest path; the
    /// worst-case path exceeds it, so some executions mitigate.
    BestCaseWindow,
    /// OC003 — a dead policy: no realizable call stack collects an
    /// input the policy constrains (or a consistent set relates fewer
    /// than two inputs).
    DeadPolicy,
    /// OC004 — a dynamic staleness check that is statically redundant;
    /// the `--opt 2` middle-end elides it (the dominating collection
    /// site is named in a related label).
    RedundantCheck,
    /// OC005 — a fresh use reachable from its collection only through
    /// a loop the progress analysis cannot bound: the freshness
    /// obligation has no bounded discharge.
    UnboundedObligation,
    /// OC006 — an atomic region whose *cheapest* body already exceeds
    /// the energy buffer: it can never commit, and its consistent set
    /// can never be collected atomically.
    RegionNeverFits,
    /// OC007 — a region whose worst-case attempt exceeds the buffer;
    /// some attempts die mid-region and retry.
    RegionMayExceed,
}

/// Every code, in registry order.
pub const ALL_CODES: [Code; 7] = [
    Code::InfeasibleWindow,
    Code::BestCaseWindow,
    Code::DeadPolicy,
    Code::RedundantCheck,
    Code::UnboundedObligation,
    Code::RegionNeverFits,
    Code::RegionMayExceed,
];

impl Code {
    /// The stable `OC0xx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::InfeasibleWindow => "OC001",
            Code::BestCaseWindow => "OC002",
            Code::DeadPolicy => "OC003",
            Code::RedundantCheck => "OC004",
            Code::UnboundedObligation => "OC005",
            Code::RegionNeverFits => "OC006",
            Code::RegionMayExceed => "OC007",
        }
    }

    /// Parses a stable code string back into the enum (the strict JSON
    /// reader uses this to reject unknown codes).
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES.into_iter().find(|c| c.as_str() == s)
    }

    /// The severity every finding with this code carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::InfeasibleWindow | Code::RegionNeverFits => Severity::Error,
            Code::BestCaseWindow
            | Code::DeadPolicy
            | Code::UnboundedObligation
            | Code::RegionMayExceed => Severity::Warning,
            Code::RedundantCheck => Severity::Note,
        }
    }

    /// One-line registry description.
    pub fn title(self) -> &'static str {
        match self {
            Code::InfeasibleWindow => "freshness window can never be met",
            Code::BestCaseWindow => "freshness window met only in the best case",
            Code::DeadPolicy => "policy constrains nothing",
            Code::RedundantCheck => "dynamic check is statically redundant",
            Code::UnboundedObligation => "freshness obligation blocked by an unbounded loop",
            Code::RegionNeverFits => "atomic region can never fit the energy buffer",
            Code::RegionMayExceed => "atomic region may exceed the energy buffer",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A source span with resolved position and an explanatory message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Byte range into the linted source.
    pub span: Span,
    /// 1-based line of `span.start`.
    pub line: usize,
    /// 1-based column (bytes) of `span.start`.
    pub col: usize,
    /// What this program point contributes to the finding.
    pub message: String,
}

impl Label {
    /// Builds a label, resolving line/column through `sm`.
    pub fn new(span: Span, sm: &SourceMap, message: impl Into<String>) -> Self {
        let lc = sm.span_start(span);
        Label {
            span,
            line: lc.line,
            col: lc.col,
            message: message.into(),
        }
    }
}

/// One diagnostic: a coded, severity-tagged message anchored at a
/// primary span, with related spans for the supporting evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The stable registry code.
    pub code: Code,
    /// Severity (always `code.severity()` for findings this crate
    /// produces; carried explicitly so reports round-trip).
    pub severity: Severity,
    /// The headline message.
    pub message: String,
    /// Where the problem is.
    pub primary: Label,
    /// Supporting program points, in evidence order.
    pub related: Vec<Label>,
}

/// The result of linting one program: findings in source order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, sorted by (primary span start, code, message) so
    /// reports are byte-stable across runs and thread counts.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Sorts findings into the canonical deterministic order.
    pub fn normalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.primary.span.start, a.code, &a.message).cmp(&(
                b.primary.span.start,
                b.code,
                &b.message,
            ))
        });
        self.findings.dedup();
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity findings.
    pub fn note_count(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, s: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == s).count()
    }

    /// True when no finding reaches error severity.
    pub fn is_error_free(&self) -> bool {
        self.error_count() == 0
    }

    /// Renders the report for humans. `path` names the source in
    /// `-->` location lines; `src`, when available, supplies the
    /// underlined source excerpts.
    pub fn render_text(&self, path: &str, src: Option<&str>) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}[{}]: {}\n  --> {}:{}:{}\n",
                f.severity,
                f.code.as_str(),
                f.message,
                path,
                f.primary.line,
                f.primary.col
            ));
            if let Some(src) = src {
                render_excerpt(&mut out, src, &f.primary);
            }
            for r in &f.related {
                out.push_str(&format!(
                    "  = {} ({}:{}:{})\n",
                    r.message, path, r.line, r.col
                ));
            }
        }
        out.push_str(&format!(
            "summary: {} error(s), {} warning(s), {} note(s)\n",
            self.error_count(),
            self.warning_count(),
            self.note_count()
        ));
        out
    }
}

/// Appends the `|`-gutter source excerpt for `label`, underlining the
/// spanned bytes on its first line.
fn render_excerpt(out: &mut String, src: &str, label: &Label) {
    let Some(line_text) = src.lines().nth(label.line.saturating_sub(1)) else {
        return;
    };
    let gutter = label.line.to_string();
    let pad = " ".repeat(gutter.len());
    let underline_len = label
        .span
        .len()
        .max(1)
        .min(line_text.len().saturating_sub(label.col - 1).max(1));
    out.push_str(&format!("{pad} |\n{gutter} | {line_text}\n"));
    out.push_str(&format!(
        "{pad} | {}{}\n",
        " ".repeat(label.col - 1),
        "^".repeat(underline_len)
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_stay_ordered() {
        for c in ALL_CODES {
            assert_eq!(Code::parse(c.as_str()), Some(c));
        }
        assert_eq!(Code::parse("OC999"), None);
        assert!(Severity::Note < Severity::Warning && Severity::Warning < Severity::Error);
    }

    #[test]
    fn normalize_orders_and_dedups() {
        let sm = SourceMap::new("ab\ncd\n");
        let mk = |start: usize, code: Code| Finding {
            code,
            severity: code.severity(),
            message: "m".into(),
            primary: Label::new(Span::new(start, start + 1), &sm, "p"),
            related: vec![],
        };
        let mut r = Report {
            findings: vec![
                mk(3, Code::DeadPolicy),
                mk(0, Code::RedundantCheck),
                mk(0, Code::RedundantCheck),
            ],
        };
        r.normalize();
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.findings[0].primary.span.start, 0);
        assert_eq!(r.note_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.is_error_free());
    }

    #[test]
    fn text_rendering_points_and_underlines() {
        let src = "sensor s;\nfn main() { let v = in(s); }\n";
        let sm = SourceMap::new(src);
        let span = Span::new(src.find("let").unwrap(), src.find("in(s)").unwrap() + 5);
        let f = Finding {
            code: Code::InfeasibleWindow,
            severity: Severity::Error,
            message: "window too small".into(),
            primary: Label::new(span, &sm, "the use"),
            related: vec![Label::new(Span::new(0, 6), &sm, "input collected here")],
        };
        let r = Report { findings: vec![f] };
        let text = r.render_text("x.oc", Some(src));
        assert!(text.contains("error[OC001]: window too small"), "{text}");
        assert!(text.contains("--> x.oc:2:13"), "{text}");
        assert!(text.contains("^^^^"), "{text}");
        assert!(text.contains("input collected here (x.oc:1:1)"), "{text}");
        assert!(text.contains("summary: 1 error(s), 0 warning(s), 0 note(s)"));
    }
}
