//! The whole-program lint passes.
//!
//! Every pass runs over the *transformed* program (regions inserted,
//! annotations erased) so the costs it reasons about are exactly the
//! ones the runtime charges; spans for erased annotation sites are
//! recovered from the pre-erasure program. The five passes:
//!
//! 1. **Infeasible freshness windows** (OC001/OC002) — the minimum
//!    collect-to-use path cost, over every calling context and across
//!    run boundaries, against a concrete expiry window. The per-op
//!    minima lower-bound the runtime's charges, and the runtime's
//!    cycle→µs conversion rounds up per charge, so `min > window`
//!    proves every execution trips the check and restarts — the
//!    mitigation livelock §7 of the paper warns about.
//! 2. **Dead policies** (OC003) — policies no realizable call stack
//!    gives anything to enforce.
//! 3. **Redundant dynamic checks** (OC004) — the dominated
//!    must-collected condition the `--opt 2` middle-end elides,
//!    reported with the dominating collection named. Lint and backend
//!    share one witness function, so the two sets cannot drift.
//! 4. **Unbounded-loop-blocked obligations** (OC005) — a fresh use
//!    whose every same-run path from its collection crosses the back
//!    edge of a loop the progress analysis cannot bound.
//! 5. **Energy-infeasible regions** (OC006/OC007) — an atomic region
//!    whose cheapest body exceeds the buffer can never commit, so its
//!    consistent set can never be collected atomically.

use crate::diag::{Code, Finding, Label, Report};
use ocelot_analysis::chains::{all_contexts, unique_contexts};
use ocelot_analysis::dom::Point;
use ocelot_core::{Compiled, PolicyKind};
use ocelot_hw::energy::CostModel;
use ocelot_ir::span::{SourceMap, Span};
use ocelot_ir::{InstrRef, Program};
use ocelot_progress::{EdgeSet, FeasAnalysis, WcetAnalysis};
use ocelot_runtime::detect::DetectorConfig;
use ocelot_runtime::elision_witnesses;
use ocelot_runtime::ViolationKind;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Tuning knobs and the optional deployment facts passes check against.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Freshness expiry window in µs; `None` disables OC001/OC002.
    pub window_us: Option<u64>,
    /// Energy buffer capacity in nJ; `None` disables OC006/OC007.
    pub capacity_nj: Option<f64>,
    /// The cost model paths are priced with.
    pub costs: CostModel,
    /// Per-function calling-context enumeration cap; beyond it the
    /// window passes degrade to unique-context sites only.
    pub context_cap: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            window_us: None,
            capacity_nj: None,
            costs: CostModel::default(),
            context_cap: 512,
        }
    }
}

/// A failure *of* the linter (as opposed to findings *from* it): the
/// program did not compile, or an analysis prerequisite failed.
#[derive(Debug, Clone)]
pub struct LintError(pub String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for LintError {}

/// Lints `src`, returning findings in deterministic source order.
///
/// # Errors
///
/// [`LintError`] when `src` does not compile or the transform fails —
/// the program never had a runnable form, so there is nothing to lint.
pub fn lint_source(src: &str, opts: &LintOptions) -> Result<Report, LintError> {
    let _span = ocelot_telemetry::span!("lint");
    let p0 = ocelot_ir::compile(src).map_err(|e| LintError(e.to_string()))?;
    let compiled =
        ocelot_core::ocelot_transform(p0.clone()).map_err(|e| LintError(e.to_string()))?;
    lint_compiled(&p0, &compiled, src, opts)
}

/// Lints an already-transformed program; `p0` is the pre-erasure form
/// (spans for annotation sites live only there).
pub fn lint_compiled(
    p0: &Program,
    compiled: &Compiled,
    src: &str,
    opts: &LintOptions,
) -> Result<Report, LintError> {
    let p = &compiled.program;
    let sm = SourceMap::new(src);
    let det = DetectorConfig::from_policies(&compiled.policies);
    let feas = FeasAnalysis::new(p, &opts.costs).map_err(|e| LintError(e.to_string()))?;
    let mut wcet = WcetAnalysis::new(p, &opts.costs, &compiled.regions);

    let span_of = |r: InstrRef| -> Span {
        p.span_of(r)
            .filter(|s| !s.is_empty())
            .or_else(|| p0.span_of(r))
            .unwrap_or_default()
    };
    let label = |r: InstrRef, msg: String| Label::new(span_of(r), &sm, msg);

    let mut report = Report::default();

    dead_policies(compiled, &label, &mut report);
    freshness_windows(
        p,
        compiled,
        &det,
        &feas,
        &mut wcet,
        opts,
        &label,
        &mut report,
    );
    redundant_checks(p, compiled, &det, &label, &mut report);
    energy_regions(compiled, &feas, &mut wcet, opts, &label, &mut report);

    report.normalize();
    Ok(report)
}

/// OC003: policies with nothing realizable to enforce.
fn dead_policies(
    compiled: &Compiled,
    label: &impl Fn(InstrRef, String) -> Label,
    out: &mut Report,
) {
    for pol in compiled.policies.iter() {
        if !pol.is_vacuous() {
            continue;
        }
        let Some(first) = pol.decls.first() else {
            continue;
        };
        let message = match pol.kind {
            PolicyKind::Fresh => format!(
                "freshness policy on `{}` is dead: no realizable call stack \
                 collects a sensor input into it",
                display_var(&first.var)
            ),
            PolicyKind::Consistent(_) => format!(
                "consistency policy on `{}` is dead: no realizable call stack \
                 collects a sensor input into the set, so there is nothing to \
                 relate",
                display_var(&first.var)
            ),
        };
        let related = pol
            .decls
            .iter()
            .skip(1)
            .map(|d| label(d.at, format!("`{}` declared here", display_var(&d.var))))
            .collect();
        out.findings.push(Finding {
            code: Code::DeadPolicy,
            severity: Code::DeadPolicy.severity(),
            message,
            primary: label(first.at, "policy declared here".into()),
            related,
        });
    }
}

/// OC001/OC002/OC005: expiry windows against min/max collect-to-use
/// path costs, and obligations blocked behind unbounded loops.
#[allow(clippy::too_many_arguments)]
fn freshness_windows(
    p: &Program,
    compiled: &Compiled,
    det: &DetectorConfig,
    feas: &FeasAnalysis<'_>,
    wcet: &mut WcetAnalysis<'_>,
    opts: &LintOptions,
    label: &impl Fn(InstrRef, String) -> Label,
    out: &mut Report,
) {
    // Calling contexts of each use site's function; when enumeration
    // blows the cap, degrade to unique-context functions only.
    let enumerated = all_contexts(p, opts.context_cap);
    let unique = unique_contexts(p);
    let ctxs_of = |f: ocelot_ir::FuncId| -> Vec<Vec<InstrRef>> {
        match &enumerated {
            Some(all) => all[f.0 as usize].clone(),
            None => unique[f.0 as usize].clone().into_iter().collect(),
        }
    };

    // Aggregate one finding per (code, site): the strongest chain wins.
    let mut worst: BTreeMap<(Code, InstrRef), (u64, Finding)> = BTreeMap::new();

    for (site, checks) in &det.use_checks {
        let uctxs = ctxs_of(site.func);
        if uctxs.is_empty() {
            continue; // unreachable from main (or context blow-up)
        }
        for check in checks {
            if check.kind != ViolationKind::Freshness {
                continue;
            }
            for ch in &check.requires {
                if !det.bit_of.contains_key(ch) {
                    continue; // chain never reports; nothing to expire
                }
                let Some(&input) = ch.last() else { continue };

                let mut min_cycles: Option<u64> = None;
                let mut max_cycles: Option<u64> = None;
                let mut any_same_run = false;
                let mut any_bounded = false;
                for uctx in &uctxs {
                    for c in [
                        feas.min_chain_to_use(ch, uctx, *site, EdgeSet::All),
                        feas.min_chain_to_use_cross_run(ch, uctx, *site),
                    ]
                    .into_iter()
                    .flatten()
                    {
                        min_cycles = Some(min_cycles.map_or(c, |m: u64| m.min(c)));
                    }
                    if feas
                        .min_chain_to_use(ch, uctx, *site, EdgeSet::All)
                        .is_some()
                    {
                        any_same_run = true;
                        if let Some(c) = max_chain_to_use(wcet, &opts.costs, ch, uctx, *site) {
                            max_cycles = Some(max_cycles.map_or(c, |m: u64| m.max(c)));
                        }
                    }
                    if feas
                        .min_chain_to_use(ch, uctx, *site, EdgeSet::BoundedOnly)
                        .is_some()
                    {
                        any_bounded = true;
                    }
                }

                // OC005: a same-run path exists, but never a bounded one.
                if any_same_run && !any_bounded {
                    let f = Finding {
                        code: Code::UnboundedObligation,
                        severity: Code::UnboundedObligation.severity(),
                        message: "every path from this input to its fresh use crosses \
                                  the back edge of a loop with no recoverable bound; \
                                  the freshness obligation cannot be discharged by any \
                                  progress argument"
                            .into(),
                        primary: label(*site, "fresh use here".into()),
                        related: vec![label(input, "input collected here".into())],
                    };
                    keep_worst(&mut worst, (Code::UnboundedObligation, *site), 0, f);
                }

                let Some(window) = opts.window_us else {
                    continue;
                };
                let Some(minc) = min_cycles else { continue };
                let min_us = opts.costs.cycles_to_us(minc);
                if min_us > window {
                    let f = Finding {
                        code: Code::InfeasibleWindow,
                        severity: Code::InfeasibleWindow.severity(),
                        message: format!(
                            "freshness window of {window}\u{b5}s can never be met: the \
                             cheapest path from the collecting input to this use takes \
                             at least {min_us}\u{b5}s; every execution trips the expiry \
                             check and restarts"
                        ),
                        primary: label(*site, "stale by the time control arrives here".into()),
                        related: vec![label(input, "input collected here".into())],
                    };
                    keep_worst(&mut worst, (Code::InfeasibleWindow, *site), min_us, f);
                } else if let Some(maxc) = max_cycles {
                    let max_us = opts.costs.cycles_to_us(maxc);
                    if max_us > window {
                        let f = Finding {
                            code: Code::BestCaseWindow,
                            severity: Code::BestCaseWindow.severity(),
                            message: format!(
                                "freshness window of {window}\u{b5}s is met only on the \
                                 cheapest path ({min_us}\u{b5}s); the worst-case path \
                                 takes {max_us}\u{b5}s, so some executions mitigate"
                            ),
                            primary: label(*site, "use may see an expired input".into()),
                            related: vec![label(input, "input collected here".into())],
                        };
                        keep_worst(&mut worst, (Code::BestCaseWindow, *site), max_us, f);
                    }
                }
            }
        }
    }
    let _ = compiled;
    out.findings.extend(worst.into_values().map(|(_, f)| f));
}

fn keep_worst(
    worst: &mut BTreeMap<(Code, InstrRef), (u64, Finding)>,
    key: (Code, InstrRef),
    weight: u64,
    f: Finding,
) {
    match worst.get(&key) {
        Some((w, _)) if *w >= weight => {}
        _ => {
            worst.insert(key, (weight, f));
        }
    }
}

/// Worst-case same-run collect-to-use cycles, composed from WCET path
/// segments along the chain's ascent and the use context's descent.
/// `None` when any segment has no single-attempt bound (unbounded loop,
/// endpoints straddling a loop nest) — the OC002 warning is then
/// silently skipped rather than guessed at.
fn max_chain_to_use(
    wcet: &mut WcetAnalysis<'_>,
    costs: &CostModel,
    chain: &[InstrRef],
    uctx: &[InstrRef],
    use_at: InstrRef,
) -> Option<u64> {
    let calls = &chain[..chain.len() - 1];
    let d = calls
        .iter()
        .zip(uctx.iter())
        .take_while(|(a, b)| a == b)
        .count();
    let mut total = 0u64;
    for site in chain.iter().skip(d + 1).rev() {
        let after = wcet_after(wcet, *site)?;
        let exit = wcet.exit_point(site.func);
        total = total.saturating_add(wcet.between(site.func, after, exit).ok()?);
    }
    let mut func = chain[d].func;
    let mut cur = wcet_after(wcet, chain[d])?;
    for site in &uctx[d..] {
        if site.func != func {
            return None;
        }
        let before = wcet_point(wcet, *site)?;
        total = total
            .saturating_add(wcet.between(func, cur, before).ok()?)
            .saturating_add(costs.call);
        func = callee_of(wcet.program(), *site)?;
        let entry = wcet.program().func(func).entry;
        cur = Point::new(entry, 0);
    }
    if use_at.func != func {
        return None;
    }
    let before = wcet_point(wcet, use_at)?;
    Some(total.saturating_add(wcet.between(func, cur, before).ok()?))
}

fn wcet_point(w: &WcetAnalysis<'_>, at: InstrRef) -> Option<Point> {
    let f = w.program().func(at.func);
    f.find_label(at.label).map(|(b, i)| Point::new(b, i))
}

fn wcet_after(w: &WcetAnalysis<'_>, at: InstrRef) -> Option<Point> {
    let f = w.program().func(at.func);
    f.find_label(at.label).map(|(b, i)| Point::new(b, i + 1))
}

fn callee_of(p: &Program, site: InstrRef) -> Option<ocelot_ir::FuncId> {
    let f = p.func(site.func);
    let (b, i) = f.find_label(site.label)?;
    match &f.block(b).instrs.get(i)?.op {
        ocelot_ir::Op::Call { callee, .. } => Some(*callee),
        _ => None,
    }
}

/// OC004: dynamic checks the O2 middle-end elides, with the dominating
/// collection sites named. Uses the same witness function as the
/// runtime, so the reported set *is* the elision set.
fn redundant_checks(
    p: &Program,
    compiled: &Compiled,
    det: &DetectorConfig,
    label: &impl Fn(InstrRef, String) -> Label,
    out: &mut Report,
) {
    // Mirror the runtime's site universe: checked sites plus fresh-use
    // trace-logging sites (see `MachineCore` construction).
    let mut sites: BTreeSet<InstrRef> = det.use_checks.keys().copied().collect();
    for pol in compiled.policies.iter() {
        if pol.kind == PolicyKind::Fresh && !pol.is_vacuous() {
            sites.extend(pol.uses.iter().copied());
        }
    }
    for (site, witnesses) in elision_witnesses(p, det, sites.into_iter()) {
        // Logging-only sites carry no dynamic check to report on.
        let has_check = det.use_checks.get(&site).is_some_and(|cs| !cs.is_empty());
        if !has_check {
            continue;
        }
        let message = if witnesses.is_empty() {
            "dynamic staleness check is statically redundant (elided at --opt 2): \
             no required chain can ever report stale"
                .to_string()
        } else {
            "dynamic staleness check is statically redundant (elided at --opt 2): \
             every required input is already collected on all paths here"
                .to_string()
        };
        let related = witnesses
            .iter()
            .map(|w| label(*w, "collection guaranteed by this dominating site".into()))
            .collect();
        out.findings.push(Finding {
            code: Code::RedundantCheck,
            severity: Code::RedundantCheck.severity(),
            message,
            primary: label(site, "checked use here".into()),
            related,
        });
    }
}

/// OC006/OC007: atomic-region energy feasibility against the buffer.
fn energy_regions(
    compiled: &Compiled,
    feas: &FeasAnalysis<'_>,
    wcet: &mut WcetAnalysis<'_>,
    opts: &LintOptions,
    label: &impl Fn(InstrRef, String) -> Label,
    out: &mut Report,
) {
    let Some(capacity) = opts.capacity_nj else {
        return;
    };
    for r in &compiled.regions {
        let Some(start) = feas.point_of(r.start) else {
            continue;
        };
        let Some(end) = feas.point_of(r.end) else {
            continue;
        };
        let body_from = Point::new(start.block, start.index + 1);
        let body_to = Point::new(end.block, end.index + 1);
        let Some(min_body) = feas.min_between(r.func, body_from, body_to, EdgeSet::All) else {
            continue;
        };
        let min_nj = opts.costs.cycles_to_nj(min_body);
        let related = region_policy_labels(compiled, r, label);
        if min_nj > capacity {
            out.findings.push(Finding {
                code: Code::RegionNeverFits,
                severity: Code::RegionNeverFits.severity(),
                message: format!(
                    "atomic region can never commit: even its cheapest body costs \
                     {min_nj:.0} nJ but the energy buffer stores only {capacity:.0} nJ; \
                     its consistent set can never be collected in one attempt"
                ),
                primary: label(r.start, "region starts here".into()),
                related,
            });
        } else if let Ok(body) = wcet.region_body_wcet(r) {
            let worst_cycles = body.saturating_add(wcet.region_entry_cycles(r));
            let worst_nj = opts.costs.cycles_to_nj(worst_cycles);
            if worst_nj > capacity {
                out.findings.push(Finding {
                    code: Code::RegionMayExceed,
                    severity: Code::RegionMayExceed.severity(),
                    message: format!(
                        "atomic region may exceed the energy buffer: the worst-case \
                         attempt costs {worst_nj:.0} nJ against a {capacity:.0} nJ \
                         buffer; harvesting pauses will force retries"
                    ),
                    primary: label(r.start, "region starts here".into()),
                    related,
                });
            }
        }
    }
}

fn region_policy_labels(
    compiled: &Compiled,
    r: &ocelot_core::RegionInfo,
    label: &impl Fn(InstrRef, String) -> Label,
) -> Vec<Label> {
    let mut out = Vec::new();
    for pid in compiled.policy_map.get(&r.id).into_iter().flatten() {
        let pol = compiled.policies.policy(*pid);
        if let Some(d) = pol.decls.first() {
            let kind = match pol.kind {
                PolicyKind::Fresh => "freshness",
                PolicyKind::Consistent(_) => "consistency",
            };
            out.push(label(
                d.at,
                format!("{kind} policy on `{}` declared here", display_var(&d.var)),
            ));
        }
    }
    out
}

/// Strips SSA-style rename suffixes (`x.1` → `x`) for messages.
fn display_var(v: &str) -> &str {
    v.split('.').next().unwrap_or(v)
}
