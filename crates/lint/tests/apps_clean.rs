//! The nine shipped apps are the lint's false-positive regression set:
//! every one of them runs correctly under sweep, so any warning or
//! error the linter raises on them would be a false alarm. Notes
//! (elided checks) are fine — they describe an optimization, not a
//! defect.

use ocelot_lint::{lint_source, LintOptions, Severity};

#[test]
fn all_apps_lint_clean_at_defaults() {
    for b in ocelot_apps::all_with_extensions() {
        let report = lint_source(b.annotated_src, &LintOptions::default())
            .unwrap_or_else(|e| panic!("{}: failed to lint: {e}", b.name));
        let noisy: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.severity > Severity::Note)
            .collect();
        assert!(
            noisy.is_empty(),
            "{}: false positives:\n{}",
            b.name,
            report.render_text(b.name, Some(b.annotated_src))
        );
    }
}

#[test]
fn app_reports_render_and_stay_deterministic() {
    for b in ocelot_apps::all_with_extensions() {
        let opts = LintOptions::default();
        let a = lint_source(b.annotated_src, &opts).unwrap();
        let c = lint_source(b.annotated_src, &opts).unwrap();
        assert_eq!(a, c, "{}: report drifted between runs", b.name);
        let text = a.render_text(b.name, Some(b.annotated_src));
        assert!(
            text.ends_with("note(s)\n"),
            "{}: summary line missing",
            b.name
        );
    }
}
