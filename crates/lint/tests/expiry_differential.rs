//! Differential validation of OC001 against the runtime: a program the
//! linter proves *infeasible* for a freshness window W must actually
//! misbehave when executed under a TICS-style expiry of the same W —
//! the expiry check trips on every attempt, the mitigation handler
//! restarts until its cap, and the run gives up on a stale value. A
//! program the linter passes at W must run trip-free. Together these
//! pin OC001 to an operational meaning instead of a plausible-looking
//! cost inequality.

use ocelot_hw::power::ContinuousPower;
use ocelot_hw::sensors::{Environment, Signal};
use ocelot_hw::CostModel;
use ocelot_lint::{lint_source, Code, LintOptions};
use ocelot_runtime::{Machine, RunOutcome};

/// Figure-2-shaped program whose fastest collect→use path is one
/// 100 µs output long: statically infeasible for any window below
/// that, comfortably feasible above it.
const SRC: &str = "sensor s;\n\
                   fn main() {\n\
                       let x = in(s);\n\
                       fresh(x);\n\
                       out(log, x);\n\
                       out(alarm, x);\n\
                   }\n";

fn run_under_window(window_us: u64) -> ocelot_runtime::Stats {
    let p0 = ocelot_ir::compile(SRC).expect("source compiles");
    let compiled = ocelot_core::ocelot_transform(p0).expect("transform succeeds");
    let mut m = Machine::new(
        &compiled.program,
        &compiled.regions,
        compiled.policies.clone(),
        Environment::new().with("s", Signal::Constant(5)),
        CostModel::default(),
        Box::new(ContinuousPower),
    )
    .with_expiry_window(window_us);
    let out = m.run_once(1_000_000);
    assert!(
        matches!(out, RunOutcome::Completed { .. }),
        "expiry runs terminate (give-up path): {out:?}"
    );
    m.stats().clone()
}

fn lint_at(window_us: u64) -> ocelot_lint::Report {
    let opts = LintOptions {
        window_us: Some(window_us),
        ..LintOptions::default()
    };
    lint_source(SRC, &opts).expect("lints")
}

/// The window the linter rejects (OC001: even the *cheapest* path
/// overshoots) really is unachievable: the machine trips the expiry on
/// the first attempt and on every handler-driven retry, then gives up
/// on a stale value — the dynamic shadow of the static verdict.
#[test]
fn lint_infeasible_window_trips_and_gives_up_at_runtime() {
    let report = lint_at(10);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == Code::InfeasibleWindow),
        "precondition: the linter flags OC001 at 10 µs:\n{}",
        report.render_text("expiry_differential", Some(SRC))
    );

    let stats = run_under_window(10);
    assert!(
        stats.expiry_trips > 0,
        "statically infeasible window never tripped at runtime: {stats:?}"
    );
    assert!(
        stats.expiry_giveups > 0,
        "every retry re-trips, so the handler must eventually give up: {stats:?}"
    );
}

/// The converse direction: a window the linter accepts runs clean — no
/// trips, no handler restarts, no give-ups. OC001's absence is as
/// meaningful as its presence.
#[test]
fn lint_feasible_window_runs_trip_free() {
    let report = lint_at(1_000);
    assert!(
        !report
            .findings
            .iter()
            .any(|f| matches!(f.code, Code::InfeasibleWindow | Code::BestCaseWindow)),
        "precondition: 1 ms clears both window passes:\n{}",
        report.render_text("expiry_differential", Some(SRC))
    );

    let stats = run_under_window(1_000);
    assert_eq!(stats.expiry_trips, 0, "feasible window tripped: {stats:?}");
    assert_eq!(stats.expiry_giveups, 0);
}
