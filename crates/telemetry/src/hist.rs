//! The workspace's shared log₂-bucket [`Histogram`] and the
//! nearest-rank [`percentile`] accessor.
//!
//! The histogram began life as `fleet::Histogram` (per-device reboot /
//! freshness-failure distributions); it is generalized here so fleet
//! aggregation, metric latency histograms, and drivers all share one
//! quantile implementation instead of re-deriving them ad hoc. The
//! bucket layout is load-bearing for fleet artifacts (schema v1 stores
//! the raw bucket array), so it is frozen: bucket 0 holds zeros, bucket
//! `b ≥ 1` holds `[2^(b-1), 2^b)`.

/// Number of buckets in a [`Histogram`]: bucket 0 holds zeros, bucket
/// `b ≥ 1` holds values in `[2^(b-1), 2^b)`.
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucket histogram of `u64` samples. Exact-merge friendly:
/// bucket counts are plain `u64` sums, so merging partial histograms in
/// any grouping gives identical results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// The bucket index `v` lands in.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The largest value bucket `b` can hold (`0` for bucket 0).
    pub fn bucket_max(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// A histogram from raw bucket counts.
    ///
    /// # Panics
    ///
    /// When `buckets` is not exactly [`HIST_BUCKETS`] long.
    pub fn from_buckets(buckets: Vec<u64>) -> Histogram {
        assert_eq!(buckets.len(), HIST_BUCKETS, "histogram bucket count");
        Histogram { buckets }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = &mut self.buckets[Self::bucket_of(v)];
        *b = b.saturating_add(1);
    }

    /// Adds every bucket of `other` into `self`. Bucket counts saturate
    /// rather than wrap: a pinned count misstates only how far past
    /// `u64::MAX` the sweep went, while a wrapped one would silently
    /// reorder every percentile derived from it.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, v) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*v);
        }
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The bucket counts, zeros first then doubling ranges.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The upper bound of the bucket containing the `p`-th percentile
    /// (`p` in `[0, 100]`) of recorded values, or 0 for an empty
    /// histogram. Bucketed percentiles are what the fleet table
    /// renders: exact enough for tail shapes, mergeable without
    /// per-sample state.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Self::bucket_max(b);
            }
        }
        Self::bucket_max(HIST_BUCKETS - 1)
    }

    /// The median bucket's upper bound.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// The 90th-percentile bucket's upper bound.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// The 99th-percentile bucket's upper bound.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

/// The p-th percentile (nearest-rank) of a non-empty sorted sample —
/// the exact-quantile companion to [`Histogram::percentile`], shared by
/// the verify session and the serve driver.
///
/// # Panics
///
/// On an empty sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_hits_bucket_upper_bounds_exactly_at_edges() {
        // One sample per power of two: 0, 1, 2, 4, … 2^63. Sample i
        // (0-based) lives alone in bucket i, so the p-th percentile
        // lands exactly on a bucket edge for every rank.
        let mut h = Histogram::default();
        h.record(0);
        for b in 0..=63u32 {
            h.record(1u64 << b);
        }
        assert_eq!(h.total(), 65);
        assert_eq!(h.percentile(0.0), 0, "rank clamps to the first sample");
        // Rank r (1-based) selects bucket r-1, whose max is 2^(r-1)-1.
        let rank_to_p = |r: u64| (r as f64) * 100.0 / 65.0;
        assert_eq!(h.percentile(rank_to_p(1)), Histogram::bucket_max(0));
        assert_eq!(h.percentile(rank_to_p(2)), Histogram::bucket_max(1));
        assert_eq!(h.percentile(rank_to_p(33)), Histogram::bucket_max(32));
        assert_eq!(h.percentile(rank_to_p(64)), Histogram::bucket_max(63));
        assert_eq!(h.percentile(100.0), u64::MAX, "top bucket is saturated");
    }

    #[test]
    fn percentile_helpers_match_the_general_accessor() {
        let mut h = Histogram::default();
        for v in [1, 2, 3, 5, 9, 17, 33, 65, 129, 1025] {
            h.record(v);
        }
        assert_eq!(h.p50(), h.percentile(50.0));
        assert_eq!(h.p90(), h.percentile(90.0));
        assert_eq!(h.p99(), h.percentile(99.0));
        // Ten samples in buckets 1..=11: p50 is rank 5 (value 9 →
        // bucket 4, max 15); p99 is rank 10 (value 1025 → bucket 11).
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p99(), Histogram::bucket_max(11));
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn nearest_rank_percentile_at_sample_boundaries() {
        let xs = [10, 20, 30, 40];
        assert_eq!(percentile(&xs, 0.0), 10);
        assert_eq!(percentile(&xs, 25.0), 10);
        assert_eq!(percentile(&xs, 25.1), 20);
        assert_eq!(percentile(&xs, 50.0), 20);
        assert_eq!(percentile(&xs, 75.0), 30);
        assert_eq!(percentile(&xs, 100.0), 40);
        assert_eq!(percentile(&[7], 50.0), 7);
    }

    #[test]
    fn from_buckets_round_trips() {
        let mut h = Histogram::default();
        h.record(5);
        h.record(1 << 40);
        let h2 = Histogram::from_buckets(h.buckets().to_vec());
        assert_eq!(h, h2);
    }

    #[test]
    #[should_panic(expected = "histogram bucket count")]
    fn from_buckets_rejects_wrong_lengths() {
        let _ = Histogram::from_buckets(vec![0; 3]);
    }
}
