//! # ocelot-telemetry
//!
//! A hand-rolled, std-only observability layer for the whole workspace:
//! no vendored deps, no macros beyond [`span!`], nothing the paper's
//! artifacts can observe.
//!
//! Two pillars:
//!
//! * **Tracing** ([`trace`]): `let _s = span!("transform");` records an
//!   RAII span into a per-thread buffer. [`trace::drain_spans`] hands
//!   the buffers to an exporter (the Chrome `trace_event` renderer
//!   lives in `ocelot-bench`, which owns the JSON layer).
//! * **Metrics** ([`metrics`]): a fixed registry of per-worker-sharded
//!   atomic counters, high-watermark gauges, and log₂ latency
//!   histograms, snapshotted with sorted keys and stable rendering.
//!
//! Both pillars are **off by default** and cost one relaxed atomic load
//! per probe while off. Nothing here ever feeds back into schema-v1
//! artifacts: wall-clock readings exist only in trace/metrics *output*,
//! so every byte-identity determinism suite passes with telemetry
//! enabled (held by tests in the bench and serve crates).
//!
//! This crate is a dependency leaf — `ir`, `analysis`, `core`,
//! `runtime`, `bench`, and `serve` all probe into it, so it can depend
//! on none of them.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod hist;
pub mod metrics;
pub mod trace;

pub use hist::{percentile, Histogram, HIST_BUCKETS};
pub use trace::{
    drain_spans, dropped_spans, metrics_on, set_metrics, set_tracing, tracing_on, SpanGuard,
    SpanRec,
};

/// Opens an RAII span: `let _s = span!("transform");` times the
/// enclosing scope. An optional second argument sets the Chrome-trace
/// category (defaults to `"pipeline"`). The guard must be bound to a
/// name — `let _ = span!(..)` drops it immediately and records an empty
/// span.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name, "pipeline")
    };
    ($name:expr, $cat:expr) => {
        $crate::trace::SpanGuard::enter($name, $cat)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mode bits are process-global, so tests that flip them share one
    /// lock (other crates' telemetry tests do the same).
    pub(crate) fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_record_only_while_tracing_is_on() {
        let _guard = serial();
        set_tracing(false);
        drop(drain_spans());
        {
            let _s = span!("off");
        }
        assert!(drain_spans().is_empty());
        set_tracing(true);
        {
            let _s = span!("parse");
            let _t = span!("execute", "device");
        }
        set_tracing(false);
        let spans = drain_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"parse"), "{names:?}");
        assert!(names.contains(&"execute"), "{names:?}");
        let exec = spans.iter().find(|s| s.name == "execute").unwrap();
        assert_eq!(exec.cat, "device");
        assert!(drain_spans().is_empty(), "drain empties the buffers");
    }

    #[test]
    fn spans_nest_within_their_parent() {
        let _guard = serial();
        set_tracing(true);
        drop(drain_spans());
        {
            let _outer = span!("outer");
            let _inner = span!("inner");
        }
        set_tracing(false);
        let spans = drain_spans();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.start_ns + outer.dur_ns >= inner.start_ns + inner.dur_ns);
        assert_eq!(outer.tid, inner.tid);
    }

    #[test]
    fn counters_count_only_while_metrics_are_on() {
        let _guard = serial();
        set_metrics(false);
        metrics::reset_metrics();
        metrics::POOL_STEALS.add(7);
        assert_eq!(metrics::POOL_STEALS.value(), 0);
        set_metrics(true);
        metrics::POOL_STEALS.add(7);
        metrics::POOL_STEALS.incr();
        set_metrics(false);
        assert_eq!(metrics::POOL_STEALS.value(), 8);
        metrics::reset_metrics();
        assert_eq!(metrics::POOL_STEALS.value(), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let _guard = serial();
        metrics::reset_metrics();
        set_metrics(true);
        metrics::CHECKS_EXECUTED.add(3);
        metrics::CHECKS_ELIDED.add(2);
        set_metrics(false);
        let snap = metrics::snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "snapshot keys are sorted");
        let text = metrics::render_snapshot();
        assert!(text.contains("runtime.checks.executed 3"), "{text}");
        assert!(text.contains("runtime.checks.elided 2"), "{text}");
        metrics::reset_metrics();
    }

    #[test]
    fn sharded_counters_sum_across_threads() {
        let _guard = serial();
        metrics::reset_metrics();
        set_metrics(true);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        metrics::REBOOTS.incr();
                    }
                });
            }
        });
        set_metrics(false);
        assert_eq!(metrics::REBOOTS.value(), 8000);
        metrics::reset_metrics();
    }
}
