//! The metric registry: per-worker-sharded counters, high-watermark
//! gauges, and atomic log₂ latency histograms.
//!
//! Metrics are a **fixed, explicitly enumerated** set of statics —
//! there is no dynamic registration, so a snapshot cannot miss a
//! late-registered metric, names are compile-time constants, and the
//! whole registry is auditable in one screen (the name registry table
//! in `docs/observability.md` mirrors this file). Every probe is gated
//! on [`crate::metrics_on`]: one relaxed load while off, one sharded
//! relaxed `fetch_add` while on.
//!
//! Snapshots ([`snapshot`] / [`render_snapshot`]) enumerate every
//! metric in sorted-name order with stable rendering, so `--metrics`
//! output diffs cleanly across runs. Snapshot values are *monotonic
//! process totals* (modulo [`reset_metrics`], which tests and overhead
//! harnesses use to scope a measurement).

use crate::hist::Histogram;
use crate::trace::{metrics_on, thread_ord};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shards per counter: enough that a pool of workers rarely collides
/// on one cache line, small enough that summing stays trivial.
const SHARDS: usize = 16;

#[inline]
fn shard_idx() -> usize {
    (thread_ord() as usize) % SHARDS
}

/// A monotonically increasing event count, sharded per worker thread.
pub struct Counter {
    name: &'static str,
    shards: [AtomicU64; SHARDS],
}

impl Counter {
    const fn new(name: &'static str) -> Counter {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Counter {
            name,
            shards: [ZERO; SHARDS],
        }
    }

    /// The metric's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events (a no-op while metrics are off).
    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_on() {
            self.shards[shard_idx()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event (a no-op while metrics are off).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The summed count across every shard.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.load(Ordering::Relaxed)))
    }

    fn reset(&self) {
        for s in &self.shards {
            s.store(0, Ordering::Relaxed);
        }
    }
}

/// A high-watermark gauge: `observe` keeps the maximum value seen.
pub struct Gauge {
    name: &'static str,
    max: AtomicU64,
}

impl Gauge {
    const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            max: AtomicU64::new(0),
        }
    }

    /// The metric's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Raises the watermark to `v` if higher (a no-op while metrics
    /// are off).
    #[inline]
    pub fn observe(&self, v: u64) {
        if metrics_on() {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The highest value observed.
    pub fn value(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A lock-free log₂ latency histogram (same bucket layout as
/// [`Histogram`]); snapshots convert to the mergeable form for
/// percentile helpers.
pub struct AtomicHist {
    name: &'static str,
    buckets: [AtomicU64; crate::HIST_BUCKETS],
}

impl AtomicHist {
    const fn new(name: &'static str) -> AtomicHist {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        AtomicHist {
            name,
            buckets: [ZERO; crate::HIST_BUCKETS],
        }
    }

    /// The metric's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample (a no-op while metrics are off).
    #[inline]
    pub fn record(&self, v: u64) {
        if metrics_on() {
            self.buckets[Histogram::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current contents as a mergeable [`Histogram`].
    pub fn load(&self) -> Histogram {
        Histogram::from_buckets(
            self.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        )
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// The registry. Every metric in the workspace lives here; the doc table
// in docs/observability.md mirrors this list.
// ---------------------------------------------------------------------

/// Dynamic freshness/consistency checks actually probed at runtime.
pub static CHECKS_EXECUTED: Counter = Counter::new("runtime.checks.executed");
/// Check sites skipped because `-O2` proved them elidable.
pub static CHECKS_ELIDED: Counter = Counter::new("runtime.checks.elided");
/// Power-failure reboots across every simulated device.
pub static REBOOTS: Counter = Counter::new("runtime.reboots");
/// Expiry-mitigation restarts (re-runs forced by stale inputs).
pub static MITIGATION_RESTARTS: Counter = Counter::new("runtime.mitigation_restarts");
/// Input chains rebuilt dynamically instead of served from the
/// interned chain table.
pub static CHAIN_REBUILDS: Counter = Counter::new("runtime.chains.dynamic_rebuilds");
/// Jobs that ran on a worker other than the one seeded with them.
pub static POOL_STEALS: Counter = Counter::new("pool.steals");
/// Deepest per-worker queue observed while seeding/stealing.
pub static POOL_QUEUE_DEPTH: Gauge = Gauge::new("pool.queue_depth.max");
/// Serve program-cache submissions answered from cache.
pub static SERVE_PROGRAMS_HIT: Counter = Counter::new("serve.cache.programs.hits");
/// Serve program-cache submissions that compiled fresh.
pub static SERVE_PROGRAMS_MISS: Counter = Counter::new("serve.cache.programs.misses");
/// Serve per-scenario machine cores served from cache.
pub static SERVE_CORES_HIT: Counter = Counter::new("serve.cache.cores.hits");
/// Serve per-scenario machine cores built fresh.
pub static SERVE_CORES_MISS: Counter = Counter::new("serve.cache.cores.misses");
/// Serve verify-session documents found already cached.
pub static SERVE_DOCS_HIT: Counter = Counter::new("serve.cache.docs.hits");
/// Serve verify-session documents analyzed fresh.
pub static SERVE_DOCS_MISS: Counter = Counter::new("serve.cache.docs.misses");
/// Serve lint reports answered from the report cache.
pub static SERVE_LINTS_HIT: Counter = Counter::new("serve.cache.lints.hits");
/// Serve lint reports computed fresh.
pub static SERVE_LINTS_MISS: Counter = Counter::new("serve.cache.lints.misses");
/// Requests the serve protocol dispatched.
pub static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
/// Incremental (session/cache-backed) verifications performed.
pub static VERIFY_INCREMENTAL: Counter = Counter::new("verify.incremental");
/// Full from-scratch verifications performed.
pub static VERIFY_FULL: Counter = Counter::new("verify.full");
/// Serve request handling latency, nanoseconds.
pub static SERVE_REQUEST_NS: AtomicHist = AtomicHist::new("serve.request_ns");

static COUNTERS: &[&Counter] = &[
    &CHECKS_EXECUTED,
    &CHECKS_ELIDED,
    &REBOOTS,
    &MITIGATION_RESTARTS,
    &CHAIN_REBUILDS,
    &POOL_STEALS,
    &SERVE_PROGRAMS_HIT,
    &SERVE_PROGRAMS_MISS,
    &SERVE_CORES_HIT,
    &SERVE_CORES_MISS,
    &SERVE_DOCS_HIT,
    &SERVE_DOCS_MISS,
    &SERVE_LINTS_HIT,
    &SERVE_LINTS_MISS,
    &SERVE_REQUESTS,
    &VERIFY_INCREMENTAL,
    &VERIFY_FULL,
];

static GAUGES: &[&Gauge] = &[&POOL_QUEUE_DEPTH];

static HISTS: &[&AtomicHist] = &[&SERVE_REQUEST_NS];

/// Every metric's (name, value), sorted by name. Histograms contribute
/// `<name>.count`, `.p50`, `.p90`, `.p99` entries.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = Vec::new();
    for c in COUNTERS {
        out.push((c.name, c.value()));
    }
    for g in GAUGES {
        out.push((g.name, g.value()));
    }
    let mut hist_rows: Vec<(String, u64)> = Vec::new();
    for h in HISTS {
        let loaded = h.load();
        hist_rows.push((format!("{}.count", h.name), loaded.total()));
        hist_rows.push((format!("{}.p50", h.name), loaded.p50()));
        hist_rows.push((format!("{}.p90", h.name), loaded.p90()));
        hist_rows.push((format!("{}.p99", h.name), loaded.p99()));
    }
    // Histogram row names are derived strings; leak them once so the
    // snapshot row type stays a simple (&str, u64). The set is fixed
    // (4 rows per registered histogram), so this leaks a bounded,
    // deduplicated handful of strings per process.
    for (name, v) in hist_rows {
        out.push((leak_name(name), v));
    }
    out.sort_by_key(|&(name, _)| name);
    out
}

/// Interns a derived metric-row name, returning the same `&'static`
/// for the same string every time.
fn leak_name(name: String) -> &'static str {
    use std::collections::HashMap;
    use std::sync::Mutex;
    static INTERNED: Mutex<Option<HashMap<String, &'static str>>> = Mutex::new(None);
    let mut guard = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(&s) = map.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    map.insert(name, leaked);
    leaked
}

/// The snapshot as stable `name value` lines (one per metric, sorted).
pub fn render_snapshot() -> String {
    let mut out = String::new();
    for (name, v) in snapshot() {
        out.push_str(name);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

/// Zeroes every metric (tests and overhead harnesses scope their
/// measurements with this).
pub fn reset_metrics() {
    for c in COUNTERS {
        c.reset();
    }
    for g in GAUGES {
        g.reset();
    }
    for h in HISTS {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_metrics;

    #[test]
    fn gauge_keeps_the_high_watermark() {
        let _guard = crate::tests::serial();
        reset_metrics();
        set_metrics(true);
        POOL_QUEUE_DEPTH.observe(3);
        POOL_QUEUE_DEPTH.observe(9);
        POOL_QUEUE_DEPTH.observe(4);
        set_metrics(false);
        assert_eq!(POOL_QUEUE_DEPTH.value(), 9);
        reset_metrics();
    }

    #[test]
    fn atomic_histogram_snapshots_percentiles() {
        let _guard = crate::tests::serial();
        reset_metrics();
        set_metrics(true);
        for v in [100, 200, 400, 100_000] {
            SERVE_REQUEST_NS.record(v);
        }
        set_metrics(false);
        let snap = snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| *n == k).map(|&(_, v)| v);
        assert_eq!(get("serve.request_ns.count"), Some(4));
        assert_eq!(
            get("serve.request_ns.p99"),
            Some(Histogram::bucket_max(Histogram::bucket_of(100_000)))
        );
        reset_metrics();
    }

    #[test]
    fn every_registry_name_is_unique() {
        let snap = snapshot();
        let mut names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate metric names");
    }
}
