//! RAII tracing spans into per-thread buffers, plus the process-global
//! mode bits both telemetry pillars gate on.
//!
//! A probe site does `let _s = span!("compile");` and pays one relaxed
//! atomic load while tracing is off. While on, entering a span reads
//! the monotonic clock once; dropping it reads the clock again and
//! pushes one [`SpanRec`] onto the calling thread's buffer (a mutex the
//! owning thread almost always acquires uncontended — the only other
//! taker is [`drain_spans`]). Buffers are capacity-capped: past
//! [`BUF_CAP`] records a thread drops new spans and counts them in
//! [`dropped_spans`] instead of growing without bound.
//!
//! Timestamps are nanoseconds since a process-wide epoch (first probe
//! wins), which is exactly the shape the Chrome `trace_event` exporter
//! in `ocelot-bench` wants. Wall-clock readings never travel anywhere
//! except trace output files.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Mode bit: tracing spans are recorded.
const TRACE: u8 = 1;
/// Mode bit: metric probes count.
const METRICS: u8 = 2;

/// The process-global telemetry mode. One relaxed load decides every
/// probe; both bits start cleared.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Turns span recording on or off (process-global).
pub fn set_tracing(on: bool) {
    if on {
        MODE.fetch_or(TRACE, Ordering::Relaxed);
    } else {
        MODE.fetch_and(!TRACE, Ordering::Relaxed);
    }
}

/// Turns metric counting on or off (process-global).
pub fn set_metrics(on: bool) {
    if on {
        MODE.fetch_or(METRICS, Ordering::Relaxed);
    } else {
        MODE.fetch_and(!METRICS, Ordering::Relaxed);
    }
}

/// Whether spans are currently recorded.
#[inline]
pub fn tracing_on() -> bool {
    MODE.load(Ordering::Relaxed) & TRACE != 0
}

/// Whether metric probes currently count.
#[inline]
pub fn metrics_on() -> bool {
    MODE.load(Ordering::Relaxed) & METRICS != 0
}

/// Nanoseconds since the process-wide trace epoch (the first probe).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A small, dense per-thread ordinal (1, 2, …) used as the Chrome-trace
/// `tid` and as the metric shard index — `std::thread::ThreadId` is
/// neither small nor dense.
pub fn thread_ord() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORD: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORD.with(|t| *t)
}

/// One completed span, ready for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name (a pipeline stage: `"parse"`, `"execute"`, …).
    pub name: &'static str,
    /// Chrome-trace category (`"pipeline"`, `"pool"`, `"serve"`, …).
    pub cat: &'static str,
    /// Recording thread's ordinal (Chrome-trace `tid`).
    pub tid: u64,
    /// Start, in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Most spans one thread buffers before dropping the excess (counted,
/// not silently lost): ~64k spans ≈ a few MB per busy thread.
pub const BUF_CAP: usize = 1 << 16;

/// Every thread's span buffer, for [`drain_spans`]. Buffers are pushed
/// once per thread and never removed — a dead thread's spans still
/// belong in the trace.
static REGISTRY: Mutex<Vec<Arc<Mutex<Vec<SpanRec>>>>> = Mutex::new(Vec::new());

/// Spans dropped because a thread's buffer was full.
static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static BUF: Arc<Mutex<Vec<SpanRec>>> = {
        let buf = Arc::new(Mutex::new(Vec::new()));
        REGISTRY
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&buf));
        buf
    };
}

fn record(rec: SpanRec) {
    BUF.with(|b| {
        let mut v = b.lock().unwrap_or_else(|e| e.into_inner());
        if v.len() >= BUF_CAP {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        } else {
            v.push(rec);
        }
    });
}

/// Takes every buffered span out of every thread's buffer, ordered by
/// (thread, start, longest-first) so nested spans follow their parents.
pub fn drain_spans() -> Vec<SpanRec> {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    for buf in registry.iter() {
        out.append(&mut buf.lock().unwrap_or_else(|e| e.into_inner()));
    }
    out.sort_by(|a, b| {
        (a.tid, a.start_ns, std::cmp::Reverse(a.dur_ns), a.name).cmp(&(
            b.tid,
            b.start_ns,
            std::cmp::Reverse(b.dur_ns),
            b.name,
        ))
    });
    out
}

/// How many spans were dropped on full buffers since process start.
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// The RAII guard [`crate::span!`] returns: entering reads the clock if
/// tracing is on; dropping records the completed span.
pub struct SpanGuard {
    live: Option<(&'static str, &'static str, u64)>,
}

impl SpanGuard {
    /// Opens a span (a no-op carrying `None` while tracing is off).
    #[inline]
    pub fn enter(name: &'static str, cat: &'static str) -> SpanGuard {
        SpanGuard {
            live: tracing_on().then(|| (name, cat, now_ns())),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, cat, start_ns)) = self.live.take() {
            record(SpanRec {
                name,
                cat,
                tid: thread_ord(),
                start_ns,
                dur_ns: now_ns().saturating_sub(start_ns),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ordinals_are_distinct_and_stable() {
        let here = thread_ord();
        assert_eq!(here, thread_ord(), "stable within a thread");
        let other = std::thread::spawn(thread_ord).join().unwrap();
        assert_ne!(here, other, "distinct across threads");
    }

    #[test]
    fn the_clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
