//! Property tests for the compiler analyses on arbitrary generated
//! programs: dominator-tree invariants, taint-chain well-formedness,
//! and region-inference placement guarantees.

mod common;

use common::arb_program;
use ocelot::analysis::dom::DomTree;
use ocelot::analysis::taint::TaintAnalysis;
use ocelot::core::{build_policies, collect_regions};
use ocelot::ir::{compile, validate, Cfg};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dominator-tree invariants on every function of every generated
    /// program: the entry dominates everything, immediate dominators
    /// dominate their children, and the exit post-dominates everything.
    #[test]
    fn dominator_invariants(p in arb_program()) {
        let prog = compile(&p.source).unwrap();
        for f in &prog.funcs {
            let cfg = Cfg::new(f);
            let dom = DomTree::dominators(f, &cfg);
            let pdom = DomTree::post_dominators(f, &cfg);
            for b in &f.blocks {
                prop_assert!(dom.dominates(f.entry, b.id));
                prop_assert!(pdom.dominates(f.exit, b.id));
                if let Some(idom) = dom.idom(b.id) {
                    prop_assert!(dom.strictly_dominates(idom, b.id));
                }
                // Any common dominator is an ancestor of both inputs.
                for other in &f.blocks {
                    if let Some(c) = dom.common(b.id, other.id) {
                        prop_assert!(dom.dominates(c, b.id));
                        prop_assert!(dom.dominates(c, other.id));
                    }
                }
            }
        }
    }

    /// Taint chains are well-formed: they start in `main`, descend
    /// through call sites (each element is a call instruction except the
    /// last), and end at an input operation.
    #[test]
    fn taint_chains_are_well_formed(p in arb_program()) {
        let prog = compile(&p.source).unwrap();
        validate(&prog).unwrap();
        let taint = TaintAnalysis::run(&prog);
        let policies = build_policies(&prog, &taint);
        for pol in policies.iter() {
            for chain in &pol.inputs {
                prop_assert!(!chain.is_empty());
                prop_assert_eq!(chain[0].func, prog.main, "chains start in main");
                for (i, link) in chain.iter().enumerate() {
                    let inst = prog.inst(*link);
                    prop_assert!(inst.is_some(), "chain link resolves");
                    let op = &inst.unwrap().op;
                    if i + 1 == chain.len() {
                        prop_assert!(op.is_input(), "chains end at inputs");
                    } else {
                        // Interior links are call sites whose callee
                        // hosts the next element.
                        match op {
                            ocelot::ir::Op::Call { callee, .. } => {
                                prop_assert_eq!(*callee, chain[i + 1].func);
                            }
                            other => prop_assert!(false, "interior link {:?}", other),
                        }
                    }
                }
            }
        }
    }

    /// Inferred regions are structurally sound: start and end resolve,
    /// the end post-dominates the start, and region ids are unique.
    #[test]
    fn inferred_regions_are_well_placed(p in arb_program()) {
        let prog = compile(&p.source).unwrap();
        let compiled = ocelot::core::ocelot_transform(prog).unwrap();
        let regions = collect_regions(&compiled.program).unwrap();
        let mut ids: Vec<u32> = regions.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), regions.len(), "unique region ids");
        // collect_regions itself verifies post-dominance; reaching here
        // means every region is well-formed. Also check starts precede
        // ends in straight-line blocks.
        for r in &regions {
            let f = compiled.program.func(r.func);
            let (sb, si) = f.find_label(r.start.label).unwrap();
            let (eb, ei) = f.find_label(r.end.label).unwrap();
            if sb == eb {
                prop_assert!(si < ei);
            }
        }
    }

    /// The printer/parser round-trip: pretty-printing a lowered program
    /// and recompiling preserves instruction counts per function.
    #[test]
    fn policies_are_deterministic(p in arb_program()) {
        let a = {
            let prog = compile(&p.source).unwrap();
            let t = TaintAnalysis::run(&prog);
            format!("{:?}", build_policies(&prog, &t).policies)
        };
        let b = {
            let prog = compile(&p.source).unwrap();
            let t = TaintAnalysis::run(&prog);
            format!("{:?}", build_policies(&prog, &t).policies)
        };
        prop_assert_eq!(a, b);
    }

    /// The Cooper–Harvey–Kennedy dominator tree agrees with a naive
    /// iterate-to-fixpoint dominance computation — an independent oracle
    /// for the analysis Algorithm 1 rests on.
    #[test]
    fn dominators_match_naive_fixpoint(p in arb_program()) {
        let prog = compile(&p.source).unwrap();
        for f in &prog.funcs {
            let cfg = Cfg::new(f);
            let dom = DomTree::dominators(f, &cfg);
            let naive = naive_dominators(f, &cfg);
            for b in &f.blocks {
                for a in &f.blocks {
                    let fast = dom.dominates(a.id, b.id);
                    let slow = naive[b.id.0 as usize].contains(&a.id);
                    prop_assert_eq!(
                        fast, slow,
                        "{}: does {:?} dominate {:?}?", f.name, a.id, b.id
                    );
                }
            }
        }
    }

    /// Region effect invariants: ω is exactly WAR ∪ EMW, the two parts
    /// are disjoint, and its word size is at least the location count.
    #[test]
    fn region_effects_partition_omega(p in arb_program()) {
        let prog = compile(&p.source).unwrap();
        let compiled = ocelot::core::ocelot_transform(prog).unwrap();
        for r in &compiled.regions {
            let war = &r.effects.war;
            let emw = &r.effects.emw;
            prop_assert!(war.is_disjoint(emw), "WAR and EMW partition the writes");
            let omega = r.effects.omega();
            prop_assert_eq!(omega.len(), war.len() + emw.len());
            prop_assert!(r.omega_words >= omega.len(), "arrays cost at least one word");
            // Everything in ω is a real global of the program.
            for g in &omega {
                prop_assert!(compiled.program.is_global(g), "ω names a global: {g}");
            }
        }
    }

    /// Every region hosted in `main` has effects bounded by treating all
    /// of `main` as one region (monotonicity of the effect analysis).
    #[test]
    fn region_effects_bounded_by_whole_function(p in arb_program()) {
        let prog = compile(&p.source).unwrap();
        let compiled = ocelot::core::ocelot_transform(prog).unwrap();
        let whole = ocelot::analysis::war::whole_function_effects(
            &compiled.program,
            compiled.program.main,
        );
        for r in &compiled.regions {
            if r.func != compiled.program.main {
                continue;
            }
            prop_assert!(r.effects.war.is_subset(&whole.omega()) ||
                         r.effects.war.is_subset(&whole.war),
                         "region WAR within whole-main writes");
            prop_assert!(r.effects.omega().is_subset(&whole.omega()));
        }
    }
}

/// Naive quadratic dominance: iterate `dom(b) = {b} ∪ ⋂ dom(preds)` to a
/// fixpoint from ⊤.
fn naive_dominators(
    f: &ocelot::ir::Function,
    cfg: &Cfg,
) -> Vec<std::collections::BTreeSet<ocelot::ir::BlockId>> {
    use std::collections::BTreeSet;
    let n = f.blocks.len();
    let all: BTreeSet<ocelot::ir::BlockId> = f.blocks.iter().map(|b| b.id).collect();
    let mut dom: Vec<BTreeSet<ocelot::ir::BlockId>> = vec![all.clone(); n];
    dom[f.entry.0 as usize] = BTreeSet::from([f.entry]);
    // Unreachable blocks keep ⊤; restrict the fixpoint to reachable ones.
    let mut reachable = BTreeSet::from([f.entry]);
    let mut stack = vec![f.entry];
    while let Some(b) = stack.pop() {
        for &s in cfg.succs(b) {
            if reachable.insert(s) {
                stack.push(s);
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for b in &f.blocks {
            if b.id == f.entry || !reachable.contains(&b.id) {
                continue;
            }
            let mut inter: Option<BTreeSet<ocelot::ir::BlockId>> = None;
            for &p in cfg.preds(b.id) {
                if !reachable.contains(&p) {
                    continue;
                }
                let pd = &dom[p.0 as usize];
                inter = Some(match inter {
                    None => pd.clone(),
                    Some(acc) => acc.intersection(pd).copied().collect(),
                });
            }
            let mut new = inter.unwrap_or_default();
            new.insert(b.id);
            if new != dom[b.id.0 as usize] {
                dom[b.id.0 as usize] = new;
                changed = true;
            }
        }
    }
    // Match DomTree semantics: unreachable blocks dominate nothing and
    // are dominated by nothing except themselves.
    for b in &f.blocks {
        if !reachable.contains(&b.id) {
            dom[b.id.0 as usize] = BTreeSet::new();
        }
    }
    dom
}
