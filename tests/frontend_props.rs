//! Front-end property tests: parser totality on arbitrary input, AST
//! print/parse round trips on generated programs, and the unrolling
//! pass's semantic preservation.

mod common;

use common::arb_program;
use ocelot::ir::print_ast::{ast_to_source, erase_spans};
use ocelot::ir::{compile, parse};
use ocelot::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer/parser never panic, whatever bytes arrive — they
    /// return structured errors instead.
    #[test]
    fn parser_is_total_on_arbitrary_strings(src in "\\PC{0,200}") {
        let _ = parse(&src); // must not panic
    }

    /// ... including near-miss program-shaped inputs.
    #[test]
    fn parser_is_total_on_program_shaped_noise(
        words in proptest::collection::vec(
            prop_oneof![
                Just("fn".to_string()),
                Just("let".to_string()),
                Just("atomic".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("in".to_string()),
                Just("fresh".to_string()),
                Just("repeat".to_string()),
                Just("9".to_string()),
                Just("x".to_string()),
            ],
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = parse(&src); // must not panic
    }

    /// Printing a parsed program and re-parsing yields the same AST.
    #[test]
    fn print_parse_round_trip(p in arb_program()) {
        let a = erase_spans(&parse(&p.source).unwrap());
        let printed = ast_to_source(&a);
        let b = erase_spans(&parse(&printed).unwrap());
        prop_assert_eq!(a, b);
    }

    /// Unrolling bounded loops preserves observable behavior: the
    /// rolled and unrolled programs commit identical outputs on
    /// continuous power. (`while` loops cannot be unrolled — the pass
    /// must reject them, which is its own assertion.)
    #[test]
    fn unrolling_preserves_outputs(p in arb_program(), seed in 0u64..100) {
        if p.has_while {
            let err = ocelot::ir::compile_unrolled(&p.source, 100_000).unwrap_err();
            prop_assert!(err.to_string().contains("while"));
            return Ok(());
        }
        use ocelot::runtime::obs::Obs;
        let outputs = |prog: ocelot::ir::Program| -> Vec<(String, Vec<i64>)> {
            let built = build(prog, ExecModel::Jit).unwrap();
            let mut m = Machine::new(
                &built.program,
                &built.regions,
                built.policies.clone(),
                common::gen_environment_constant(seed),
                CostModel::default(),
                Box::new(ContinuousPower),
            );
            m.run_once(2_000_000);
            m.take_trace()
                .into_iter()
                .filter_map(|o| match o {
                    Obs::Output { channel, values, .. } => Some((channel.to_string(), values)),
                    _ => None,
                })
                .collect()
        };
        let rolled = compile(&p.source).unwrap();
        let unrolled = ocelot::ir::compile_unrolled(&p.source, 100_000).unwrap();
        // Unrolling changes instruction *timing*, so the environment
        // must be time-invariant for output equality to be the right
        // spec; continuous power keeps eras identical.
        prop_assert_eq!(outputs(rolled), outputs(unrolled));
    }
}
