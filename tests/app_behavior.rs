//! Behavioral tests for the benchmark applications: beyond being
//! violation-free, each app must do its *job* in its scenario — the
//! tire monitor must raise the burst alarm during a blowout, the
//! greenhouse must mist when hot and dry, the classifier must track
//! motion, the compression logger must actually compress.

use ocelot::prelude::*;
use ocelot::runtime::obs::Obs;

fn run_app(
    name: &str,
    model: ExecModel,
    runs: u64,
    seed: u64,
) -> (Vec<Obs>, ocelot::runtime::Stats) {
    let b = ocelot::apps::by_name(name).expect("benchmark exists");
    let program = match model {
        ExecModel::AtomicsOnly => b.atomics_only(),
        _ => b.annotated(),
    };
    let built = build(program, model).unwrap();
    let mut m = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        b.environment(seed),
        CostModel::default(),
        Box::new(HarvestedPower::capybara_noisy(seed).with_boot_jitter(seed, 0.4)),
    );
    for _ in 0..runs {
        let out = m.run_once(5_000_000);
        assert!(matches!(out, RunOutcome::Completed { .. }), "{name}");
    }
    let stats = m.stats().clone();
    (m.take_trace(), stats)
}

fn channel_outputs(trace: &[Obs], chan: &str) -> Vec<Vec<i64>> {
    trace
        .iter()
        .filter_map(|o| match o {
            Obs::Output {
                channel, values, ..
            } if &**channel == chan => Some(values.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn tire_raises_burst_alarm_during_blowout() {
    // The burst hits at t = 0.8 s; pressure collapses within 150 ms
    // while the wheel spins. Enough monitoring rounds must cross it.
    let (trace, stats) = run_app("tire", ExecModel::Ocelot, 90, 2);
    let alarms = channel_outputs(&trace, "radio");
    assert!(
        !alarms.is_empty(),
        "a collapsing tire on a moving wheel must trigger the urgent burst alarm"
    );
    // Alarm payloads are (avgdiff, currmotion): both must be above the
    // program's thresholds.
    for a in &alarms {
        assert!(a[0] > 25, "avgdiff threshold: {a:?}");
        assert!(a[1] > 30, "motion threshold: {a:?}");
    }
    assert_eq!(stats.violations, 0);
}

#[test]
fn tire_slow_leak_counter_rises_after_puncture() {
    let (trace, _) = run_app("tire", ExecModel::Ocelot, 90, 2);
    // The uart heartbeat reports (urgentcount, leakcount, crc).
    let reports = channel_outputs(&trace, "uart");
    let first = reports.first().expect("heartbeats exist");
    let last = reports.last().expect("heartbeats exist");
    assert!(
        last[1] > first[1],
        "leak detections must accumulate across the blowout: {first:?} → {last:?}"
    );
}

#[test]
fn greenhouse_mists_when_hot_and_dry() {
    // Late in the greenhouse scenario the temperature ramp exceeds 30
    // while the humidity square wave spends time low.
    let (trace, stats) = run_app("greenhouse", ExecModel::Ocelot, 220, 4);
    let mists = channel_outputs(&trace, "mist");
    assert!(!mists.is_empty(), "hot+dry stretches must trigger misting");
    for m in &mists {
        assert!(m[0] > 30 && m[1] < 40, "mist condition: {m:?}");
    }
    assert_eq!(stats.violations, 0);
}

#[test]
fn activity_classifier_tracks_motion_episodes() {
    let (trace, _) = run_app("activity", ExecModel::Ocelot, 80, 6);
    let reports = channel_outputs(&trace, "uart");
    let last = reports.last().expect("reports exist");
    let (movec, stillc) = (last[0], last[1]);
    assert_eq!(movec + stillc, 80, "every run classifies once");
    // The motion scenario alternates 50% bursts / 50% stillness: both
    // classes must appear in quantity.
    assert!(movec >= 10, "motion episodes classified: {movec}");
    assert!(stillc >= 10, "still episodes classified: {stillc}");
}

#[test]
fn cem_dictionary_compresses_repeated_values() {
    // The temperature ramp is slow and quantized: repeated keys must hit
    // the dictionary, so misses grow strictly slower than samples.
    let (trace, _) = run_app("cem", ExecModel::Ocelot, 120, 8);
    let reports = channel_outputs(&trace, "uart");
    let last = reports.last().expect("reports exist");
    let (logn, misses) = (last[0], last[1]);
    assert_eq!(logn, 120);
    assert!(
        misses < logn / 2,
        "most samples re-hit dictionary entries: {misses}/{logn}"
    );
    assert!(misses > 0, "a moving ramp inserts new entries");
}

#[test]
fn send_photo_transmits_in_bright_phases_only() {
    let (trace, _) = run_app("send_photo", ExecModel::Ocelot, 120, 10);
    let sends = channel_outputs(&trace, "radio");
    assert!(!sends.is_empty(), "bright phases must transmit");
    for s in &sends {
        assert!(s[0] > 60, "transmitted level above threshold: {s:?}");
        let crc = s[1];
        assert!((0..255).contains(&crc), "crc in range: {s:?}");
    }
    let reports = channel_outputs(&trace, "uart");
    let last = reports.last().expect("heartbeats");
    assert!(last[1] > 0, "dark phases must be skipped too: {last:?}");
}

#[test]
fn photo_average_stays_within_signal_bounds() {
    let (trace, _) = run_app("photo", ExecModel::Ocelot, 60, 12);
    for avg in channel_outputs(&trace, "uart") {
        // light_steps: lo 10, hi 90, noise ±3.
        assert!(
            (7..=93).contains(&avg[0]),
            "five-sample average within signal bounds: {avg:?}"
        );
    }
}

#[test]
fn consistent_photo_average_is_unimodal_per_run() {
    // With the region enforcing consistency, each 5-sample average comes
    // from one lamp phase, so it sits near 10 or near 90 — never near
    // the impossible mid-band a split window would produce. (The lamp
    // period is 250 ms; one run's reads span ~2 ms, so a run cannot
    // straddle more than one edge; mid-band means a *failure* split.)
    let (trace, stats) = run_app("photo", ExecModel::Ocelot, 150, 14);
    assert_eq!(stats.violations, 0);
    let mut mid_band = 0;
    let mut total = 0;
    for avg in channel_outputs(&trace, "uart") {
        total += 1;
        if (30..=70).contains(&avg[0]) {
            mid_band += 1;
        }
    }
    // Edge-straddling runs (lamp toggles mid-window while powered!) are
    // legitimate continuous behavior, but rare: the window is ~2 ms of a
    // 250 ms period (~1.6% by geometry, at most a few percent measured).
    assert!(
        mid_band * 20 <= total,
        "mid-band averages must be rare under consistency: {mid_band}/{total}"
    );
}
