//! Integration tests for the `ocelotc` command-line toolchain, driven
//! against the sample programs in `examples/programs/`.

use std::process::Command;

fn ocelotc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ocelotc"))
        .args(args)
        .output()
        .expect("ocelotc runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn compile_weather_prints_regions() {
    let (ok, stdout, stderr) = ocelotc(&["compile", "examples/programs/weather.oc"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("inferred 2 region(s)"), "{stderr}");
    assert!(stdout.contains("startatom"), "{stdout}");
    assert!(stdout.contains("endatom"));
}

#[test]
fn compile_confirm_places_region_in_confirm() {
    let (ok, _, stderr) = ocelotc(&["compile", "examples/programs/confirm.oc"]);
    assert!(ok, "{stderr}");
    assert!(
        stderr.contains("region r0 in `confirm`"),
        "Figure 6(b): deepest covering function wins: {stderr}"
    );
}

#[test]
fn check_flags_undersized_manual_region() {
    let (ok, _, stderr) = ocelotc(&["check", "examples/programs/manual_regions.oc"]);
    assert!(!ok, "the escaped use must fail the checker");
    assert!(stderr.contains("violation"), "{stderr}");
}

#[test]
fn check_accepts_compiled_weather() {
    // The annotated program has no regions yet → check fails…
    let (ok, _, _) = ocelotc(&["check", "examples/programs/weather.oc"]);
    assert!(!ok);
    // …compile it, write it out, and the result passes checker mode.
    let (ok, transformed, _) = ocelotc(&["compile", "examples/programs/weather.oc"]);
    assert!(ok);
    let tmp = std::env::temp_dir().join("ocelot_cli_weather_compiled.oc");
    // The IR printer output is not surface syntax; instead re-compile the
    // original and round-trip via the AST printer with manual regions.
    // For the CLI test it suffices to check a manually-regioned fix:
    let fixed = r#"
        sensor tmp; sensor pres; sensor hum;
        fn main() {
            atomic {
                let x = in(tmp);
                fresh(x);
                if x > 5 { out(alarm, x); }
            }
            atomic {
                let y = in(pres);
                consistent(y, 1);
                let z = in(hum);
                consistent(z, 1);
            }
            out(log, y, z);
        }
    "#;
    std::fs::write(&tmp, fixed).unwrap();
    let (ok, stdout, stderr) = ocelotc(&["check", tmp.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("enforced by region"));
    let _ = transformed;
}

#[test]
fn run_reports_violations_under_jit() {
    let (ok, _, stderr) = ocelotc(&[
        "run",
        "examples/programs/weather.oc",
        "--jit",
        "--runs",
        "80",
        "--seed",
        "5",
    ]);
    assert!(!ok, "JIT over 80 harvested runs should violate: {stderr}");
    assert!(stderr.contains("violation"));
}

#[test]
fn run_is_clean_under_ocelot() {
    let (ok, _, stderr) = ocelotc(&[
        "run",
        "examples/programs/weather.oc",
        "--runs",
        "80",
        "--seed",
        "5",
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("0 violation(s)"), "{stderr}");
}

#[test]
fn run_with_fixed_sensors_is_deterministic() {
    let args = [
        "run",
        "examples/programs/weather.oc",
        "--continuous",
        "--runs",
        "2",
        "--sensor",
        "tmp=9",
        "--sensor",
        "pres=80",
        "--sensor",
        "hum=30",
    ];
    let (ok, out1, _) = ocelotc(&args);
    assert!(ok);
    let (_, out2, _) = ocelotc(&args);
    assert_eq!(out1, out2);
    assert!(out1.contains("out(alarm) [9]"), "{out1}");
    assert!(out1.contains("out(log) [80, 30]"), "{out1}");
}

#[test]
fn policies_lists_chains_and_uses() {
    let (ok, stdout, _) = ocelotc(&["policies", "examples/programs/confirm.oc"]);
    assert!(ok);
    assert!(stdout.contains("Consistent(1)"));
    assert!(stdout.contains("input chain"));
}

#[test]
fn while_program_compiles_and_runs_clean() {
    let (ok, _, stderr) = ocelotc(&["compile", "examples/programs/drain_monitor.oc"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("inferred"), "{stderr}");
    // The level signal must eventually hit zero for termination; a
    // decaying default isn't guaranteed, so pin the sensors.
    let (ok, stdout, stderr) = ocelotc(&[
        "run",
        "examples/programs/drain_monitor.oc",
        "--continuous",
        "--runs",
        "1",
        "--sensor",
        "level=0",
        "--sensor",
        "pressure=90",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("out(log) [0]"), "{stdout}");
    assert!(stderr.contains("0 violation(s)"), "{stderr}");
}

#[test]
fn while_program_progress_reports_unbounded() {
    let (ok, _, stderr) = ocelotc(&["progress", "examples/programs/drain_monitor.oc"]);
    assert!(!ok, "an unbounded region cannot be sized");
    assert!(stderr.contains("unbounded loop"), "{stderr}");
}

#[test]
fn run_with_tics_window_reports_mitigations() {
    let (_, _, stderr) = ocelotc(&[
        "run",
        "examples/programs/weather.oc",
        "--tics",
        "10000",
        "--runs",
        "40",
        "--seed",
        "5",
    ]);
    assert!(stderr.contains("TICS:"), "{stderr}");
    assert!(stderr.contains("expiry trip"), "{stderr}");
}

#[test]
fn summaries_render_figure5_vocabulary() {
    let (ok, stdout, stderr) = ocelotc(&["summaries", "examples/programs/confirm.oc"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("local: ret"), "{stdout}");
    assert!(stdout.contains("retBy("), "{stdout}");
    assert!(stdout.contains("fromTp"), "{stdout}");
}

#[test]
fn progress_reports_feasible_on_default_buffer() {
    let (ok, stdout, stderr) = ocelotc(&["progress", "examples/programs/weather.oc"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("feasible"), "{stdout}");
    assert!(stdout.contains("minimum buffer"), "{stdout}");
    assert!(stdout.contains("worst JIT checkpoint"), "{stdout}");
}

#[test]
fn progress_flags_infeasible_region_on_tiny_buffer() {
    let (ok, stdout, _) = ocelotc(&[
        "progress",
        "examples/programs/weather.oc",
        "--capacity",
        "9000",
        "--trigger",
        "4000",
    ]);
    assert!(!ok, "an undersized buffer must fail the verdict");
    assert!(stdout.contains("INFEASIBLE"), "{stdout}");
    assert!(stdout.contains("livelocks"), "{stdout}");
}

#[test]
fn progress_rejects_bad_trigger() {
    let (ok, _, stderr) = ocelotc(&[
        "progress",
        "examples/programs/weather.oc",
        "--capacity",
        "1000",
        "--trigger",
        "2000",
    ]);
    assert!(!ok);
    assert!(stderr.contains("trigger"), "{stderr}");
}

#[test]
fn compile_radio_window_swallows_the_send_loop() {
    let (ok, stdout, stderr) = ocelotc(&["compile", "examples/programs/radio_window.oc"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("checker: ok"), "{stderr}");
    assert!(stdout.contains("startatom"), "{stdout}");
    // Deterministic run: pin the sensors so the window always opens.
    let (ok, stdout, stderr) = ocelotc(&[
        "run",
        "examples/programs/radio_window.oc",
        "--continuous",
        "--runs",
        "1",
        "--sensor",
        "rssi=70",
        "--sensor",
        "vcap=80",
    ]);
    assert!(ok, "{stderr}");
    assert_eq!(stdout.matches("out(radio) [70]").count(), 3, "{stdout}");
}

#[test]
fn scenario_list_enumerates_at_least_eight() {
    let (ok, stdout, stderr) = ocelotc(&["scenario", "list"]);
    assert!(ok, "{stderr}");
    let scenarios = stdout
        .lines()
        .filter(|l| l.starts_with("  ") && l.contains("suggested app:"))
        .count();
    assert!(
        scenarios >= 8,
        "≥ 8 named scenarios, got {scenarios}:\n{stdout}"
    );
    for name in ["rf-lab", "brownout", "cold-start", "storm-front"] {
        assert!(stdout.contains(name), "{name} listed:\n{stdout}");
    }
}

#[test]
fn scenario_describe_previews_channels_and_supply() {
    let (ok, stdout, stderr) = ocelotc(&["scenario", "describe", "brownout@7"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("seed:          7"), "{stdout}");
    assert!(stdout.contains("scheduled:"), "piecewise supply: {stdout}");
    for ch in ["accel", "mic", "rssi", "tirepres"] {
        assert!(stdout.contains(ch), "channel {ch} previewed:\n{stdout}");
    }
    let (ok, _, stderr) = ocelotc(&["scenario", "describe", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scenario"), "{stderr}");
}

#[test]
fn scenario_run_protects_extension_app_under_ocelot() {
    let (ok, _, stderr) = ocelotc(&[
        "scenario", "run", "rf-noisy", "--app", "mlinfer", "--runs", "3", "--seed", "5",
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("0 violation(s)"), "{stderr}");
    assert!(stderr.contains("app `mlinfer`"), "{stderr}");
}

#[test]
fn scenario_run_defaults_to_the_suggested_app_and_flags_jit_violations() {
    // storm-front's step environment plus JIT's checkpoint-only model:
    // some run splits the consistent pair across the front or a reboot.
    let (ok, _, stderr) = ocelotc(&[
        "scenario",
        "run",
        "storm-front",
        "--jit",
        "--runs",
        "12",
        "--seed",
        "5",
    ]);
    assert!(!ok, "JIT under storm-front must violate: {stderr}");
    assert!(
        stderr.contains("app `greenhouse`"),
        "suggested app: {stderr}"
    );
    let violated = stderr
        .lines()
        .any(|l| l.contains("violation(s)") && !l.contains(" 0 violation(s)"));
    assert!(violated, "{stderr}");
}

#[test]
fn scenario_run_rejects_unknown_app() {
    let (ok, _, stderr) = ocelotc(&["scenario", "run", "rf-lab", "--app", "doom"]);
    assert!(!ok);
    assert!(stderr.contains("unknown app"), "{stderr}");
    assert!(stderr.contains("fusion"), "lists known apps: {stderr}");
}

#[test]
fn bad_input_yields_error_not_panic() {
    let tmp = std::env::temp_dir().join("ocelot_cli_bad.oc");
    std::fs::write(&tmp, "fn main() { let x = ; }").unwrap();
    let (ok, _, stderr) = ocelotc(&["compile", tmp.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}
