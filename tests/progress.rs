//! Cross-validation of the static forward-progress analysis against the
//! dynamic machine (§5.3 / §10):
//!
//! * **soundness** — the static worst-case cycle bound dominates the
//!   cycles the runtime actually charges, on the six paper benchmarks
//!   and on randomly generated programs;
//! * **prediction** — a statically-feasible capacitor really completes
//!   every region, and a region the analysis calls infeasible really
//!   livelocks on the simulated hardware.

mod common;

use common::{arb_program, gen_environment_constant};
use ocelot::hw::harvest::Harvester;
use ocelot::prelude::*;
use ocelot::progress::{ProgressReport, WcetAnalysis};
use proptest::prelude::*;

/// Static worst-case cycles for one full run of `main`.
fn static_bound(built: &ocelot::runtime::Built) -> u64 {
    let mut w = WcetAnalysis::new(&built.program, &CostModel::default(), &built.regions);
    w.func_wcet(built.program.main)
        .expect("benchmarks have bounded loops")
}

/// Dynamic cycles of one continuous-power run.
fn dynamic_cycles(built: &ocelot::runtime::Built, env: Environment) -> u64 {
    let mut m = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        env,
        CostModel::default(),
        Box::new(ContinuousPower),
    );
    let out = m.run_once(10_000_000);
    assert!(matches!(out, RunOutcome::Completed { .. }), "{out:?}");
    m.stats().on_cycles
}

#[test]
fn static_bound_dominates_dynamic_on_all_benchmarks() {
    for bench in ocelot::apps::all() {
        for model in [ExecModel::Jit, ExecModel::Ocelot, ExecModel::AtomicsOnly] {
            let program = match model {
                ExecModel::AtomicsOnly => bench.atomics_only(),
                _ => bench.annotated(),
            };
            let built = build(program, model).unwrap();
            let bound = static_bound(&built);
            let actual = dynamic_cycles(&built, bench.environment(7));
            assert!(
                actual <= bound,
                "{} under {}: dynamic {actual} exceeds static bound {bound}",
                bench.name,
                model.name(),
            );
            // The bound is meaningful, not merely astronomically loose.
            assert!(
                bound <= actual.saturating_mul(50),
                "{} under {}: bound {bound} is wildly loose vs {actual}",
                bench.name,
                model.name(),
            );
        }
    }
}

#[test]
fn feasible_verdict_predicts_completion_on_benchmarks() {
    for bench in ocelot::apps::all() {
        let built = build(bench.annotated(), ExecModel::Ocelot).unwrap();
        let report =
            ProgressReport::analyze(&built.program, &built.regions, &CostModel::default()).unwrap();
        let cap = report.min_capacitor(0.2);
        assert!(
            report.feasible_on(&cap),
            "{}: min capacitor feasible",
            bench.name
        );
        let supply = HarvestedPower::new(cap, Harvester::Constant { power_nw: 1.0 });
        let mut m = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            bench.environment(3),
            CostModel::default(),
            Box::new(supply),
        )
        .with_reexec_limit(50);
        let out = m.run_once(50_000_000);
        assert!(
            matches!(out, RunOutcome::Completed { .. }),
            "{}: statically feasible buffer must complete, got {out:?} \
             (reexecs {})",
            bench.name,
            m.stats().region_reexecs,
        );
    }
}

#[test]
fn infeasible_region_livelocks_as_predicted() {
    // A region of 20 sensor reads needs ~80 µJ per attempt; give it 20.
    let program = compile(
        r#"
        sensor s;
        fn main() {
            atomic {
                let acc = 0;
                repeat 20 { let v = in(s); acc = acc + v; }
                out(log, acc);
            }
        }
        "#,
    )
    .unwrap();
    let built = build(program, ExecModel::AtomicsOnly).unwrap();
    let report =
        ProgressReport::analyze(&built.program, &built.regions, &CostModel::default()).unwrap();
    let cap = Capacitor::new(20_000.0, 4_000.0);
    assert!(
        !report.feasible_on(&cap),
        "the analysis must flag the region"
    );

    let supply = HarvestedPower::new(cap, Harvester::Constant { power_nw: 1.0 });
    let mut m = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        Environment::new().with("s", Signal::Constant(1)),
        CostModel::default(),
        Box::new(supply),
    )
    .with_reexec_limit(25);
    let out = m.run_once(50_000_000);
    assert!(
        matches!(out, RunOutcome::Livelock { .. }),
        "the region must livelock, got {out:?}"
    );
}

#[test]
fn min_capacitor_shrinks_with_ocelot_vs_whole_main_region() {
    // §5.3: the trivial correct placement is
    // `startatom; FD(main); endatom` — wrapping everything. Ocelot's
    // inferred regions must never demand a larger buffer than that, and
    // on compute-heavy apps they demand strictly less.
    let costs = CostModel::default();
    for bench in ocelot::apps::all() {
        let ocelot_built = build(bench.annotated(), ExecModel::Ocelot).unwrap();
        // The trivial placement: the whole of main as one region
        // (annotations stripped first, as the transform would).
        let mut stripped = bench.annotated();
        stripped.erase_annotations();
        let whole = ocelot::runtime::samoyed_transform(stripped, &["main"]).unwrap();
        let ro =
            ProgressReport::analyze(&ocelot_built.program, &ocelot_built.regions, &costs).unwrap();
        let rw = ProgressReport::analyze(&whole.program, &whole.regions, &costs).unwrap();
        assert!(
            ro.peak_demand_nj() <= rw.peak_demand_nj(),
            "{}: inferred regions must not demand more than whole-main \
             ({} vs {})",
            bench.name,
            ro.peak_demand_nj(),
            rw.peak_demand_nj(),
        );
        if bench.name == "cem" {
            // The paper's headline case: cem's constraint covers a few
            // instructions, so the inferred region (dominated by one
            // sensor read) is far cheaper than wrapping the compression
            // kernel, whose ω must back the whole log table.
            assert!(
                ro.peak_demand_nj() < 0.6 * rw.peak_demand_nj(),
                "cem: inferred {} vs whole-main {}",
                ro.peak_demand_nj(),
                rw.peak_demand_nj(),
            );
        }
    }
}

#[test]
fn figure10_confirm_pattern_inferred_region_is_smaller() {
    // Figure 10: a programmer wraps all of `confirm` because it samples
    // consistently; Ocelot's inferred region excludes the trailing
    // processing, so it needs less buffer.
    let src = r#"
        sensor p;
        nv logged = 0;
        fn confirm() {
            let y = in(p);
            consistent(y, 1);
            let z = in(p);
            consistent(z, 1);
            let avg = (y + z) / 2;
            repeat 6 { logged = logged + avg; out(uart, logged); }
            return avg;
        }
        fn main() { let r = confirm(); out(log, r); }
    "#;
    let costs = CostModel::default();
    let inferred = build(compile(src).unwrap(), ExecModel::Ocelot).unwrap();
    let mut stripped = compile(src).unwrap();
    stripped.erase_annotations();
    let wrapped = ocelot::runtime::samoyed_transform(stripped, &["confirm"]).unwrap();
    let ri = ProgressReport::analyze(&inferred.program, &inferred.regions, &costs).unwrap();
    let rw = ProgressReport::analyze(&wrapped.program, &wrapped.regions, &costs).unwrap();
    assert!(
        ri.peak_demand_nj() < rw.peak_demand_nj(),
        "inferred {} must undercut whole-confirm {}",
        ri.peak_demand_nj(),
        rw.peak_demand_nj(),
    );
    // There is a buffer size that runs the Ocelot program but not the
    // manually-wrapped one — the Figure 10 argument, made concrete.
    let cap = ri.min_capacitor(0.1);
    assert!(ri.feasible_on(&cap));
    assert!(!rw.feasible_on(&cap));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness on arbitrary generated programs: the runtime never
    /// charges more cycles than the static bound. Monotone-counter
    /// `while` loops are bounded like `repeat`s; only the
    /// tainted-condition shape (whose `&&` header defeats counter
    /// recovery) must be *refused* with an unbounded-loop error —
    /// never given a wrong bound.
    #[test]
    fn static_bound_dominates_dynamic_on_generated_programs(
        p in arb_program(),
        seed in 0u64..100,
    ) {
        let program = compile(&p.source).unwrap();
        let built = build(program, ExecModel::Ocelot).unwrap();
        let mut w = WcetAnalysis::new(&built.program, &CostModel::default(), &built.regions);
        match w.func_wcet(built.program.main) {
            Ok(bound) => {
                prop_assert!(
                    !p.has_unbounded_while,
                    "tainted-condition whiles cannot be bounded:\n{}",
                    p.source
                );
                let actual = dynamic_cycles(&built, gen_environment_constant(seed));
                prop_assert!(
                    actual <= bound,
                    "dynamic {} exceeds static bound {} for:\n{}",
                    actual, bound, p.source
                );
            }
            Err(ocelot::progress::ProgressError::UnboundedLoop { .. }) => {
                prop_assert!(
                    p.has_unbounded_while,
                    "only tainted-condition whiles are unbounded:\n{}",
                    p.source
                );
            }
            Err(other) => prop_assert!(false, "unexpected analysis error: {other}"),
        }
    }
}
