//! End-to-end integration tests across every crate: the six benchmarks
//! compiled under all three execution models, executed on simulated
//! hardware, with correctness and output-equivalence checks.

use ocelot::prelude::*;
use ocelot::runtime::obs::Obs;

/// Committed outputs of a machine run, as (channel, values) pairs.
fn committed_outputs(trace: &[Obs]) -> Vec<(String, Vec<i64>)> {
    trace
        .iter()
        .filter_map(|o| match o {
            Obs::Output {
                channel, values, ..
            } => Some((channel.to_string(), values.clone())),
            _ => None,
        })
        .collect()
}

/// Under a *constant* environment, an intermittent Ocelot execution
/// must commit exactly the outputs of a continuous execution — the
/// strongest form of "matches some continuous execution" our simulator
/// can check exactly.
#[test]
fn ocelot_intermittent_outputs_match_continuous_under_constant_world() {
    for b in ocelot::apps::all() {
        let built = build(b.annotated(), ExecModel::Ocelot).unwrap();
        // Freeze every sensor at a constant.
        let mut env = Environment::new();
        let program = &built.program;
        for (i, s) in program.sensors.iter().enumerate() {
            env = env.with(s, Signal::Constant(20 + i as i64 * 7));
        }

        let mut cont = Machine::new(
            program,
            &built.regions,
            built.policies.clone(),
            env.clone(),
            CostModel::default(),
            Box::new(ContinuousPower),
        );
        for _ in 0..3 {
            cont.run_once(5_000_000);
        }
        let want = committed_outputs(&cont.take_trace());

        let mut inter = Machine::new(
            program,
            &built.regions,
            built.policies.clone(),
            env,
            CostModel::default(),
            Box::new(HarvestedPower::capybara_noisy(5).with_boot_jitter(9, 0.4)),
        );
        for _ in 0..3 {
            let out = inter.run_once(5_000_000);
            assert!(matches!(out, RunOutcome::Completed { .. }), "{}", b.name);
        }
        let got = committed_outputs(&inter.take_trace());
        assert_eq!(got, want, "{}: intermittent != continuous outputs", b.name);
        assert_eq!(inter.stats().violations, 0, "{}", b.name);
    }
}

/// The same equivalence holds for the Atomics-only variants (their
/// regions are placed to preserve correctness, §7.2).
#[test]
fn atomics_intermittent_outputs_match_their_continuous_run() {
    for b in ocelot::apps::all() {
        let built = build(b.atomics_only(), ExecModel::AtomicsOnly).unwrap();
        let mut env = Environment::new();
        for (i, s) in built.program.sensors.iter().enumerate() {
            env = env.with(s, Signal::Constant(15 + i as i64 * 5));
        }
        let mut cont = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            env.clone(),
            CostModel::default(),
            Box::new(ContinuousPower),
        );
        cont.run_once(5_000_000);
        let want = committed_outputs(&cont.take_trace());

        let mut inter = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            env,
            CostModel::default(),
            Box::new(HarvestedPower::capybara_noisy(8).with_boot_jitter(2, 0.4)),
        );
        inter.run_once(5_000_000);
        let got = committed_outputs(&inter.take_trace());
        assert_eq!(got, want, "{}", b.name);
    }
}

/// Non-volatile state survives power failures and stays consistent:
/// a counter incremented inside a region is exactly-once per run even
/// when the region re-executes.
#[test]
fn nv_counter_is_exactly_once_across_failures() {
    let src = r#"
        sensor s;
        nv count = 0;
        fn main() {
            atomic {
                let v = in(s);
                count = count + 1;
            }
            out(uart, count);
        }
    "#;
    let built = build(compile(src).unwrap(), ExecModel::AtomicsOnly).unwrap();
    let mut m = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        Environment::new().with("s", Signal::Constant(1)),
        CostModel::default(),
        Box::new(ocelot::hw::power::RandomPower::new(3_000.0, 200, 3)),
    );
    const RUNS: u64 = 25;
    for _ in 0..RUNS {
        m.run_once(2_000_000);
    }
    assert!(m.stats().region_reexecs > 0, "failures must hit the region");
    let trace = m.take_trace();
    let outputs = committed_outputs(&trace);
    let last = outputs.last().expect("at least one output");
    assert_eq!(last.1, vec![RUNS as i64], "counter == number of runs");
    // And the counts are strictly increasing 1..=RUNS.
    let counts: Vec<i64> = outputs.iter().map(|(_, v)| v[0]).collect();
    assert_eq!(counts, (1..=RUNS as i64).collect::<Vec<_>>());
}

/// Every benchmark, every model, completes on harvested power and the
/// Ocelot build reports zero violations while JIT reports some on at
/// least one benchmark (matching Table 2(b)'s split).
#[test]
fn benchmark_sweep_on_harvested_power() {
    let mut jit_violations_total = 0;
    for b in ocelot::apps::all() {
        for model in [ExecModel::Jit, ExecModel::Ocelot, ExecModel::AtomicsOnly] {
            let program = match model {
                ExecModel::AtomicsOnly => b.atomics_only(),
                _ => b.annotated(),
            };
            let built = build(program, model).unwrap();
            let mut m = Machine::new(
                &built.program,
                &built.regions,
                built.policies.clone(),
                b.environment(23),
                CostModel::default(),
                Box::new(HarvestedPower::capybara_noisy(23).with_boot_jitter(4, 0.4)),
            );
            for _ in 0..10 {
                let out = m.run_once(5_000_000);
                assert!(
                    matches!(out, RunOutcome::Completed { .. }),
                    "{} {:?}",
                    b.name,
                    model
                );
            }
            match model {
                ExecModel::Jit => jit_violations_total += m.stats().violations,
                _ => assert_eq!(
                    m.stats().violations,
                    0,
                    "{} {:?} must be violation-free",
                    b.name,
                    model
                ),
            }
        }
    }
    assert!(
        jit_violations_total > 0,
        "JIT should violate somewhere across the sweep"
    );
}
