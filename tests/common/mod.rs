//! Shared test utilities: a random-program generator for property-based
//! testing of the whole pipeline.
//!
//! Generated programs are always structurally valid: statements
//! reference only already-bound variables, sensors are declared, and
//! helpers exist. Annotations are sprinkled over input-derived values so
//! that most programs carry at least one non-vacuous policy.

use proptest::prelude::*;

/// One abstract statement of a generated `main`.
#[derive(Debug, Clone)]
pub enum GenStmt {
    /// `let x<k> = in(s<i>);`
    Input(usize),
    /// `let x<k> = grab<i>();` — input through a helper.
    InputViaHelper(usize),
    /// `let x<k> = x<j> * 2 + <c>;`
    Derive(usize, i64),
    /// `fresh(x<j>);`
    Fresh(usize),
    /// `consistent(x<j>, <set>);`
    Consistent(usize, u32),
    /// `g<i> = x<j>;`
    StoreGlobal(usize, usize),
    /// `if x<j> > <c> { out(log, x<j>); }`
    Branch(usize, i64),
    /// `out(log, x<j>);`
    Out(usize),
    /// `repeat <n> { let t = in(s<i>); acc = acc + t; }` — loop input.
    LoopInput(usize, u64),
    /// `let wK = <n>; while wK > 0 { let t = in(s<i>); acc = acc + t;
    /// wK = wK - 1; }` — a monotone-counter `while` whose trip count
    /// the bound recovery reads off the init/step constants.
    WhileInput(usize, u64),
    /// The drain-monitor shape: a `while` whose condition is tainted by
    /// an input collected *before* the loop, with a fresh constraint on
    /// a value sensed *inside* it — the policy spans the loop boundary,
    /// forcing mixed-membership loop widening in region inference.
    WhileTaintedCond(usize, usize, u64),
}

/// A generated program: statement plan plus the rendered source.
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// The plan (kept so proptest shrinking output shows the structure).
    #[allow(dead_code)]
    pub stmts: Vec<GenStmt>,
    /// Rendered modeling-language source.
    pub source: String,
    /// True when the program contains a `while` loop (skipped by
    /// properties that need unrolling; not every test target reads it).
    #[allow(dead_code)]
    pub has_while: bool,
    /// True when some `while` loop defeats static bound recovery (the
    /// tainted-condition shape, whose `&&` header is not a counter
    /// check). Monotone-counter `while`s are bounded and excluded.
    #[allow(dead_code)]
    pub has_unbounded_while: bool,
}

pub const NUM_SENSORS: usize = 3;
pub const NUM_GLOBALS: usize = 2;

/// Renders a statement plan into source text.
pub fn render(stmts: &[GenStmt]) -> String {
    let mut src = String::new();
    for i in 0..NUM_SENSORS {
        src.push_str(&format!("sensor s{i};\n"));
    }
    for i in 0..NUM_GLOBALS {
        src.push_str(&format!("nv g{i} = 0;\n"));
    }
    src.push_str("nv acc = 0;\n");
    for i in 0..NUM_SENSORS {
        src.push_str(&format!("fn grab{i}() {{ let v = in(s{i}); return v; }}\n"));
    }
    src.push_str("fn main() {\n");
    let mut bound = 0usize;
    let mut wcount = 0usize;
    for s in stmts {
        match s {
            GenStmt::Input(sensor) => {
                src.push_str(&format!(
                    "    let x{bound} = in(s{});\n",
                    sensor % NUM_SENSORS
                ));
                bound += 1;
            }
            GenStmt::InputViaHelper(sensor) => {
                src.push_str(&format!(
                    "    let x{bound} = grab{}();\n",
                    sensor % NUM_SENSORS
                ));
                bound += 1;
            }
            GenStmt::Derive(j, c) => {
                if bound > 0 {
                    src.push_str(&format!("    let x{bound} = x{} * 2 + {c};\n", j % bound));
                    bound += 1;
                }
            }
            GenStmt::Fresh(j) => {
                if bound > 0 {
                    src.push_str(&format!("    fresh(x{});\n", j % bound));
                }
            }
            GenStmt::Consistent(j, set) => {
                if bound > 0 {
                    src.push_str(&format!(
                        "    consistent(x{}, {});\n",
                        j % bound,
                        set % 2 + 1
                    ));
                }
            }
            GenStmt::StoreGlobal(g, j) => {
                if bound > 0 {
                    src.push_str(&format!("    g{} = x{};\n", g % NUM_GLOBALS, j % bound));
                }
            }
            GenStmt::Branch(j, c) => {
                if bound > 0 {
                    let v = j % bound;
                    src.push_str(&format!("    if x{v} > {c} {{ out(log, x{v}); }}\n"));
                }
            }
            GenStmt::Out(j) => {
                if bound > 0 {
                    src.push_str(&format!("    out(log, x{});\n", j % bound));
                }
            }
            GenStmt::LoopInput(sensor, n) => {
                src.push_str(&format!(
                    "    repeat {} {{ let t = in(s{}); acc = acc + t; }}\n",
                    n % 4 + 1,
                    sensor % NUM_SENSORS
                ));
            }
            GenStmt::WhileInput(sensor, n) => {
                src.push_str(&format!(
                    "    let w{wcount} = {};\n    while w{wcount} > 0 {{ \
                     let t = in(s{}); acc = acc + t; w{wcount} = w{wcount} - 1; }}\n",
                    n % 3 + 1,
                    sensor % NUM_SENSORS
                ));
                wcount += 1;
            }
            GenStmt::WhileTaintedCond(cond_sensor, body_sensor, n) => {
                src.push_str(&format!(
                    "    let c{wcount} = in(s{});\n    let w{wcount} = {};\n    \
                     while w{wcount} > 0 && c{wcount} > -9999 {{ \
                     let wt{wcount} = in(s{}); fresh(wt{wcount}); \
                     out(log, wt{wcount}); w{wcount} = w{wcount} - 1; }}\n",
                    cond_sensor % NUM_SENSORS,
                    n % 3 + 1,
                    body_sensor % NUM_SENSORS
                ));
                wcount += 1;
            }
        }
    }
    src.push_str("}\n");
    src
}

/// Strategy producing arbitrary well-formed annotated programs.
pub fn arb_program() -> impl Strategy<Value = GenProgram> {
    let stmt = prop_oneof![
        3 => (0..NUM_SENSORS).prop_map(GenStmt::Input),
        2 => (0..NUM_SENSORS).prop_map(GenStmt::InputViaHelper),
        2 => (any::<usize>(), -5i64..5).prop_map(|(j, c)| GenStmt::Derive(j, c)),
        2 => any::<usize>().prop_map(GenStmt::Fresh),
        2 => (any::<usize>(), any::<u32>()).prop_map(|(j, s)| GenStmt::Consistent(j, s)),
        1 => (any::<usize>(), any::<usize>()).prop_map(|(g, j)| GenStmt::StoreGlobal(g, j)),
        2 => (any::<usize>(), -3i64..8).prop_map(|(j, c)| GenStmt::Branch(j, c)),
        2 => any::<usize>().prop_map(GenStmt::Out),
        1 => (0..NUM_SENSORS, any::<u64>()).prop_map(|(s, n)| GenStmt::LoopInput(s, n)),
        1 => (0..NUM_SENSORS, any::<u64>()).prop_map(|(s, n)| GenStmt::WhileInput(s, n)),
        1 => (0..NUM_SENSORS, 0..NUM_SENSORS, any::<u64>())
            .prop_map(|(c, b, n)| GenStmt::WhileTaintedCond(c, b, n)),
    ];
    proptest::collection::vec(stmt, 2..14).prop_map(|stmts| {
        let source = render(&stmts);
        let has_while = stmts
            .iter()
            .any(|s| matches!(s, GenStmt::WhileInput(..) | GenStmt::WhileTaintedCond(..)));
        let has_unbounded_while = stmts
            .iter()
            .any(|s| matches!(s, GenStmt::WhileTaintedCond(..)));
        GenProgram {
            stmts,
            source,
            has_while,
            has_unbounded_while,
        }
    })
}

/// A time-invariant environment (for semantic-equivalence properties
/// where instruction-timing shifts must not change samples).
#[allow(dead_code)]
pub fn gen_environment_constant(seed: u64) -> ocelot_hw::sensors::Environment {
    use ocelot_hw::sensors::{Environment, Signal};
    let mut env = Environment::new();
    for i in 0..NUM_SENSORS {
        env = env.with(
            &format!("s{i}"),
            Signal::Constant(3 + ((seed as i64) % 7) + i as i64 * 5),
        );
    }
    env
}

/// A deterministic environment covering the generated sensors.
#[allow(dead_code)]
pub fn gen_environment(seed: u64) -> ocelot_hw::sensors::Environment {
    use ocelot_hw::sensors::{Environment, Signal};
    let mut env = Environment::new();
    for i in 0..NUM_SENSORS {
        env = env.with(
            &format!("s{i}"),
            Signal::Noisy {
                base: Box::new(Signal::Square {
                    lo: i as i64,
                    hi: 10 + i as i64 * 3,
                    period_us: 5_000 + 1_000 * i as u64,
                    duty_pm: 500,
                }),
                amplitude: 2,
                seed: seed ^ (i as u64),
            },
        );
    }
    env
}
