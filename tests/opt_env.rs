//! Process-level regression test for the `OCELOT_OPT` knob: an invalid
//! non-empty value must abort the process with a diagnostic naming the
//! accepted values, never fall back silently to the default level (a CI
//! matrix typo like `OCELOT_OPT=O2` would otherwise make the whole opt
//! matrix vacuously test the default).

use std::process::Command;

fn ocelotc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ocelotc"))
}

#[test]
fn invalid_ocelot_opt_aborts_with_a_diagnostic() {
    // `fleet --help` resolves the opt level from the environment before
    // printing usage, so this exercises the knob without simulating.
    let out = ocelotc()
        .args(["fleet", "--help"])
        .env("OCELOT_OPT", "O2")
        .output()
        .expect("runs ocelotc");
    assert_eq!(
        out.status.code(),
        Some(2),
        "invalid OCELOT_OPT must be a hard process-level error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("OCELOT_OPT"), "names the knob: {stderr}");
    assert!(stderr.contains("`O2`"), "echoes the bad value: {stderr}");
    assert!(
        stderr.contains("`0`, `1` or `2`"),
        "names the accepted values: {stderr}"
    );
}

#[test]
fn valid_and_empty_ocelot_opt_values_are_accepted() {
    for value in ["0", "1", "2", ""] {
        let out = ocelotc()
            .args(["fleet", "--help"])
            .env("OCELOT_OPT", value)
            .output()
            .expect("runs ocelotc");
        assert!(
            out.status.success(),
            "OCELOT_OPT={value:?} must be accepted: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
