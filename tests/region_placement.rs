//! Snapshot-style tests pinning Algorithm 1's placement decisions on the
//! benchmark applications: which function hosts each region, what each
//! region's ω contains, and ordering relative to the operations it must
//! enclose. Guards against regressions in candidate selection, hoisting,
//! dominator placement, and truncation.

use ocelot::ir::{Op, Program};
use ocelot::prelude::*;

struct Placement {
    host: String,
    omega: Vec<String>,
}

fn placements(name: &str) -> (Compiled, Vec<Placement>) {
    let b = ocelot::apps::by_name(name).unwrap();
    let c = ocelot_transform(b.annotated()).unwrap();
    let mut out = Vec::new();
    for rid in c.policy_map.keys() {
        let info = c.region(*rid).unwrap();
        out.push(Placement {
            host: c.program.func(info.func).name.clone(),
            omega: info.effects.omega().into_iter().collect(),
        });
    }
    (c, out)
}

/// Ordered op labels of `main` as rendered strings (for position
/// assertions).
fn main_ops(p: &Program) -> Vec<String> {
    let f = p.func(p.main);
    let mut out = Vec::new();
    for b in &f.blocks {
        for i in &b.instrs {
            out.push(ocelot::ir::print::op_to_string(p, &i.op));
        }
    }
    out
}

fn pos(ops: &[String], needle: &str) -> usize {
    ops.iter()
        .position(|o| o.contains(needle))
        .unwrap_or_else(|| panic!("`{needle}` not found in {ops:#?}"))
}

#[test]
fn photo_region_wraps_the_read_call_in_main() {
    let (c, pl) = placements("photo");
    assert_eq!(pl.len(), 1);
    assert_eq!(pl[0].host, "main");
    assert!(pl[0].omega.is_empty(), "reads touch no non-volatile state");
    let ops = main_ops(&c.program);
    let start = pos(&ops, "startatom(r1)");
    let call = pos(&ops, "read5()");
    assert!(start < call, "region opens before the sampling call");
}

#[test]
fn cem_region_is_minimal_and_clean() {
    let (c, pl) = placements("cem");
    assert_eq!(pl.len(), 1);
    assert_eq!(pl[0].host, "main");
    assert!(
        !pl[0].omega.contains(&"dict".to_string()),
        "the dictionary stays outside the fresh region"
    );
    assert!(
        !pl[0].omega.contains(&"logbuf".to_string()),
        "the log stays outside the fresh region"
    );
    let ops = main_ops(&c.program);
    // The region must close before the dictionary scan's call.
    let end = pos(&ops, "endatom(r1)");
    let find_call = pos(&ops, "find(");
    assert!(end < find_call, "smallest region: the scan is outside");
}

#[test]
fn greenhouse_region_spans_all_four_collections() {
    let (c, pl) = placements("greenhouse");
    assert_eq!(pl.len(), 1);
    assert_eq!(pl[0].host, "main");
    let ops = main_ops(&c.program);
    let start = pos(&ops, "startatom(r1)");
    let end = pos(&ops, "endatom(r1)");
    for call in [
        "read_temp_a()",
        "read_temp_b()",
        "read_hum_a()",
        "read_hum_b()",
    ] {
        let p = pos(&ops, call);
        assert!(start < p && p < end, "{call} inside the consistent region");
    }
    // The misting decision is *outside*: consistency constrains only the
    // collections (§4.3).
    let log = pos(&ops, "tlog[");
    assert!(end < log);
}

#[test]
fn activity_fresh_and_consistent_regions_overlap() {
    let (c, pl) = placements("activity");
    assert_eq!(pl.len(), 2);
    assert!(pl.iter().all(|p| p.host == "main"));
    let ops = main_ops(&c.program);
    // Both regions open before the first accel read and the fresh one
    // closes after the classification's last use (the counter branch
    // join) — i.e. they nest/overlap rather than sit apart.
    let first_read = pos(&ops, "read_accel()");
    let starts: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.starts_with("startatom"))
        .map(|(i, _)| i)
        .collect();
    // UART guard + 2 inferred = 3 region starts in main.
    assert_eq!(starts.len(), 3);
    let inferred_starts: Vec<usize> = starts.iter().copied().filter(|i| *i < first_read).collect();
    assert_eq!(
        inferred_starts.len(),
        2,
        "both inferred regions open before the first collection"
    );
}

#[test]
fn tire_slow_path_region_covers_both_collections() {
    let (c, pl) = placements("tire");
    assert_eq!(pl.len(), 4, "2 fresh + 2 consistent policies");
    assert!(pl.iter().all(|p| p.host == "main"));
    let ops = main_ops(&c.program);
    // The slow-path consistent pair (second read_pres + read_temp) sits
    // inside one region.
    let tp = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.contains("read_pres()"))
        .map(|(i, _)| i)
        .nth(1)
        .expect("second pressure read");
    let tt = pos(&ops, "read_temp()");
    let enclosing_start = ops[..tp]
        .iter()
        .rposition(|o| o.starts_with("startatom"))
        .expect("a region opens before tp");
    let enclosing_end = ops[tt..]
        .iter()
        .position(|o| o.starts_with("endatom"))
        .map(|i| i + tt)
        .expect("a region closes after tt");
    assert!(enclosing_start < tp && tt < enclosing_end);
}

#[test]
fn send_photo_region_covers_conditional_send() {
    // The radio send sits in a nested branch arm, so textual block order
    // says nothing; ask the region's coverage set directly.
    let (c, pl) = placements("send_photo");
    assert_eq!(pl.len(), 1);
    let rid = *c.policy_map.keys().next().unwrap();
    let info = c.region(rid).unwrap();
    let covered = ocelot::core::region::covered_refs(&c.program, info);
    let f = c.program.func(c.program.main);
    let mut found_send = false;
    let mut found_read_call = false;
    for (_, inst) in f.iter_insts() {
        let r = ocelot::ir::InstrRef {
            func: f.id,
            label: inst.label,
        };
        match &inst.op {
            Op::Output { channel, .. } if channel == "radio" => {
                found_send = true;
                assert!(covered.contains(&r), "radio send inside the region");
            }
            Op::Call { callee, .. } if c.program.func(*callee).name == "read_photo" => {
                found_read_call = true;
                assert!(covered.contains(&r), "photo read inside the region");
            }
            _ => {}
        }
    }
    assert!(found_send && found_read_call);
}

/// The inferred placement is deterministic: two independent transforms
/// produce identical programs.
#[test]
fn inference_is_deterministic() {
    for b in ocelot::apps::all() {
        let a = ocelot_transform(b.annotated()).unwrap();
        let c = ocelot_transform(b.annotated()).unwrap();
        assert_eq!(
            ocelot::ir::print::program_to_string(&a.program),
            ocelot::ir::print::program_to_string(&c.program),
            "{}",
            b.name
        );
    }
}

/// A policy whose operations sit inside an *unbounded* `while` loop is
/// widened to enclose the whole loop, and the resulting program stays
/// correct under pathological failures.
#[test]
fn while_loop_policy_widens_to_whole_loop() {
    let src = r#"
        sensor s;
        nv go = 3;
        fn main() {
            while go > 0 {
                let x = in(s);
                fresh(x);
                out(alarm, x);
                go = go - 1;
            }
        }
    "#;
    let c = ocelot_transform(compile(src).unwrap()).unwrap();
    assert!(c.check.passes());
    assert_eq!(c.regions.len(), 1);
    // The region must enclose the loop's input and use on every
    // iteration: run with pathological injection and observe zero
    // violations with a rollback.
    let targets = pathological_targets(&c.policies);
    let mut m = Machine::new(
        &c.program,
        &c.regions,
        c.policies.clone(),
        Environment::new().with("s", Signal::Constant(9)),
        CostModel::default(),
        Box::new(ContinuousPower),
    )
    .with_injector(targets);
    let out = m.run_once(1_000_000);
    assert!(
        matches!(out, RunOutcome::Completed { violated: false }),
        "{out:?}"
    );
    assert!(m.stats().region_reexecs >= 1);
}

/// The forward-progress analysis refuses to bound a `while` region
/// instead of guessing.
#[test]
fn while_region_is_reported_unbounded() {
    let src = r#"
        sensor s;
        nv go = 3;
        fn main() {
            atomic {
                while go > 0 { let x = in(s); go = go - 1; }
            }
        }
    "#;
    let built = build(compile(src).unwrap(), ExecModel::AtomicsOnly).unwrap();
    let err = ocelot::progress::ProgressReport::analyze(
        &built.program,
        &built.regions,
        &CostModel::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, ocelot::progress::ProgressError::UnboundedLoop { .. }),
        "{err}"
    );
}

/// Region ids in the transformed apps never collide with manual ones.
#[test]
fn region_ids_are_globally_unique() {
    for b in ocelot::apps::all() {
        let c = ocelot_transform(b.annotated()).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for f in &c.program.funcs {
            for (_, inst) in f.iter_insts() {
                if let Op::AtomStart { region } = inst.op {
                    assert!(seen.insert(region), "{}: duplicate {region:?}", b.name);
                }
            }
        }
        assert_eq!(seen.len(), c.regions.len(), "{}", b.name);
    }
}
