//! Conformance tests for the Appendix H execution semantics on tricky
//! structural cases: regions spanning calls, nested regions crossing
//! function boundaries, rollback interactions with by-reference writes,
//! and accounting invariants.

use ocelot::prelude::*;
use ocelot::runtime::obs::Obs;

fn outputs(trace: &[Obs]) -> Vec<(String, Vec<i64>)> {
    trace
        .iter()
        .filter_map(|o| match o {
            Obs::Output {
                channel, values, ..
            } => Some((channel.to_string(), values.clone())),
            _ => None,
        })
        .collect()
}

fn run_with_budgets(
    src: &str,
    budgets: Vec<f64>,
) -> (Vec<(String, Vec<i64>)>, ocelot::runtime::Stats) {
    let built = build(compile(src).unwrap(), ExecModel::AtomicsOnly).unwrap();
    let mut env = Environment::new();
    for (i, s) in built.program.sensors.iter().enumerate() {
        env = env.with(s, Signal::Constant(5 + i as i64));
    }
    let mut m = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        env,
        CostModel::default(),
        Box::new(ocelot::hw::power::ScriptedPower::new(budgets, 1_000)),
    );
    let out = m.run_once(2_000_000);
    assert!(matches!(out, RunOutcome::Completed { .. }));
    let stats = m.stats().clone();
    (outputs(&m.take_trace()), stats)
}

/// A region whose body calls a function containing *another* manual
/// region: the inner `startatom` executes in a different frame, and
/// Appendix H's `natom` counter must flatten it regardless.
#[test]
fn nested_region_across_call_boundary_flattens() {
    let src = r#"
        nv g = 0;
        fn guarded_bump() {
            atomic {
                g = g + 10;
            }
            return g;
        }
        fn main() {
            atomic {
                g = g + 1;
                let r = guarded_bump();
                g = g + 100;
            }
            out(log, g);
        }
    "#;
    let (outs, stats) = run_with_budgets(src, vec![f64::INFINITY]);
    assert_eq!(outs, vec![("log".to_string(), vec![111])]);
    assert_eq!(
        stats.region_entries, 1,
        "inner start is only a counter bump"
    );
    assert_eq!(stats.region_commits, 1);
}

/// Power fails *inside the callee's nested region*: rollback must land
/// at the outer region's start — including restoring the caller frame —
/// and g must end exactly once-incremented.
#[test]
fn rollback_from_callee_restores_outer_region() {
    let src = r#"
        nv g = 0;
        sensor s;
        fn sense_and_store() {
            atomic {
                let v = in(s);
                g = g + v;
            }
            return g;
        }
        fn main() {
            atomic {
                g = g + 1;
                let r = sense_and_store();
            }
            out(log, g);
        }
    "#;
    // Fail during the sensor read inside the callee's nested region:
    // outer entry (~600) + g write + call + part of input (4000).
    let (outs, stats) = run_with_budgets(src, vec![2_500.0]);
    assert_eq!(
        outs,
        vec![("log".to_string(), vec![6])],
        "1 + sensor(5), once"
    );
    assert_eq!(stats.region_reexecs, 1);
    assert_eq!(stats.region_commits, 1);
}

/// A by-reference write inside a region targets a caller local; on
/// rollback the caller's local must revert with the snapshot (it's
/// volatile state).
#[test]
fn byref_write_into_caller_reverts_on_rollback() {
    let src = r#"
        sensor s;
        fn fill(&dst) {
            let v = in(s);
            *dst = *dst + v;
        }
        fn main() {
            let acc = 1;
            atomic {
                fill(&acc);
            }
            out(log, acc);
        }
    "#;
    // Fail mid-input inside the region: after rollback + re-execution,
    // acc must be exactly 1 + 5, not 1 + 5 + 5.
    let (outs, stats) = run_with_budgets(src, vec![2_000.0]);
    assert_eq!(outs, vec![("log".to_string(), vec![6])]);
    assert_eq!(stats.region_reexecs, 1);
}

/// Undo logging through array writes inside regions: a rolled-back
/// region must restore exactly the overwritten cells.
#[test]
fn array_cells_roll_back_precisely() {
    let src = r#"
        nv a[4];
        sensor s;
        fn main() {
            a[0] = 7;
            atomic {
                let v = in(s);
                a[0] = v;
                a[1] = v + 1;
            }
            out(log, a[0], a[1], a[2]);
        }
    "#;
    let (outs, stats) = run_with_budgets(src, vec![2_000.0]);
    // v = 5: after rollback + re-execution a = [5, 6, 0, 0].
    assert_eq!(outs, vec![("log".to_string(), vec![5, 6, 0])]);
    assert!(stats.log_words >= 2);
}

/// The cycle breakdown accounts for every active cycle.
#[test]
fn breakdown_sums_to_on_cycles() {
    for b in ocelot::apps::all() {
        let built = build(b.annotated(), ExecModel::Ocelot).unwrap();
        let mut m = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            b.environment(3),
            CostModel::default(),
            Box::new(HarvestedPower::capybara_noisy(3).with_boot_jitter(1, 0.4)),
        );
        for _ in 0..5 {
            m.run_once(5_000_000);
        }
        let s = m.stats();
        assert_eq!(
            s.breakdown.total(),
            s.on_cycles,
            "{}: breakdown must be exhaustive",
            b.name
        );
    }
}

/// Failing during a JIT checkpoint's comparator-reserve window is
/// impossible by construction; instead verify the reserve assumption:
/// many consecutive instant failures still make progress (no livelock
/// when budgets are tiny but positive).
#[test]
fn tiny_budgets_still_make_progress() {
    let src = r#"
        sensor s;
        fn main() {
            let v = in(s);
            out(log, v);
        }
    "#;
    // 4100 nJ per life: barely enough for the 4000-cycle input plus a
    // couple of instructions — the run needs several lives.
    let budgets = vec![4_100.0; 50];
    let (outs, stats) = run_with_budgets(src, budgets);
    assert_eq!(outs, vec![("log".to_string(), vec![5])]);
    assert!(stats.reboots >= 1);
}

/// Outputs inside a region are exactly-once: buffered on rollback,
/// committed on completion.
#[test]
fn region_outputs_are_exactly_once() {
    let src = r#"
        sensor s;
        fn main() {
            atomic {
                let v = in(s);
                out(radio, v);
            }
        }
    "#;
    let (outs, stats) = run_with_budgets(src, vec![2_000.0]);
    assert_eq!(
        outs,
        vec![("radio".to_string(), vec![5])],
        "the aborted attempt's send must not commit"
    );
    assert_eq!(stats.region_reexecs, 1);
}
