//! Property tests for the comparison execution models (TICS expiry,
//! Samoyed atomic functions) and the stack model, on arbitrary
//! generated programs.

mod common;

use common::{arb_program, gen_environment_constant};
use ocelot::prelude::*;
use ocelot::progress::StackModel;
use ocelot::runtime::samoyed_transform;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §5.3's "trivially correct" placement, verified in general: for
    /// every generated program, wrapping all of `main` in one region
    /// passes the Theorem 1 region checks for every policy.
    #[test]
    fn whole_main_region_always_passes_checks(p in arb_program()) {
        let program = compile(&p.source).unwrap();
        let built = samoyed_transform(program, &["main"]).unwrap();
        let report = ocelot::core::check_regions(&built.program, &built.policies).unwrap();
        prop_assert!(report.passes(), "{report:?}\n{}", p.source);
    }

    /// Samoyed whole-main execution commits the same outputs as a
    /// continuous run under a constant environment, under arbitrary
    /// random failures — region rollback keeps re-execution invisible.
    #[test]
    fn whole_main_region_execution_is_equivalent(
        p in arb_program(),
        seed in 0u64..200,
    ) {
        let reference = {
            let built = build(compile(&p.source).unwrap(), ExecModel::Jit).unwrap();
            let mut m = Machine::new(
                &built.program, &built.regions, PolicySet::default(),
                gen_environment_constant(seed), CostModel::default(),
                Box::new(ContinuousPower),
            );
            m.run_once(5_000_000);
            outputs(&m.take_trace())
        };
        let wrapped = samoyed_transform(compile(&p.source).unwrap(), &["main"]).unwrap();
        // Generous budget so the whole-main region always fits: failures
        // land mid-region but each retry can finish.
        let supply = ocelot::hw::power::RandomPower::new(60_000.0, 300, seed);
        let mut m = Machine::new(
            &wrapped.program, &wrapped.regions, PolicySet::default(),
            gen_environment_constant(seed), CostModel::default(),
            Box::new(supply),
        );
        let out = m.run_once(5_000_000);
        prop_assert!(matches!(out, RunOutcome::Completed { .. }), "{out:?}");
        prop_assert_eq!(outputs(&m.take_trace()), reference);
    }

    /// With a window below the (fixed) charging gap, the TICS model
    /// protects every fresh use on JIT executions: any use whose inputs
    /// straddled a reboot either restarted or was explicitly given up.
    #[test]
    fn tics_tight_window_leaves_no_silent_fresh_violation(
        p in arb_program(),
        seed in 0u64..100,
    ) {
        let built = build(compile(&p.source).unwrap(), ExecModel::Jit).unwrap();
        let budgets: Vec<f64> = (0..400)
            .map(|i| 4_300.0 + (seed as f64 % 7.0) * 131.0 + (i % 13) as f64 * 97.0)
            .collect();
        let mut m = Machine::new(
            &built.program, &built.regions, built.policies.clone(),
            gen_environment_constant(seed), CostModel::default(),
            // Fixed 50 ms charging gap, far above the 5 ms window.
            Box::new(ocelot::hw::power::ScriptedPower::new(budgets, 50_000)),
        )
        .with_expiry_window(5_000);
        for _ in 0..5 {
            m.run_once(5_000_000);
        }
        let s = m.stats();
        prop_assert!(
            s.fresh_violations == 0 || s.expiry_giveups > 0,
            "a sub-gap window must catch stale uses unless it gave up: \
             {} violations, {} giveups\n{}",
            s.fresh_violations, s.expiry_giveups, p.source
        );
    }

    /// The static stack model bounds every checkpoint the runtime takes:
    /// total checkpointed words never exceed (checkpoint count) × (the
    /// static per-checkpoint peak).
    #[test]
    fn stack_model_bounds_checkpoint_sizes(
        p in arb_program(),
        seed in 0u64..100,
    ) {
        let built = build(compile(&p.source).unwrap(), ExecModel::Ocelot).unwrap();
        let peak = StackModel::new(&built.program).program_peak_words(&built.program);
        let mut m = Machine::new(
            &built.program, &built.regions, built.policies.clone(),
            gen_environment_constant(seed), CostModel::default(),
            Box::new(ocelot::hw::power::RandomPower::new(6_000.0, 500, seed)),
        );
        for _ in 0..3 {
            m.run_once(5_000_000);
        }
        let s = m.stats();
        let checkpoints = s.jit_checkpoints + s.region_entries;
        prop_assert!(
            s.ckpt_words <= checkpoints * peak as u64,
            "{} words over {} checkpoints exceeds peak {}",
            s.ckpt_words, checkpoints, peak
        );
    }
}

fn outputs(trace: &[ocelot::runtime::Obs]) -> Vec<(String, Vec<i64>)> {
    trace
        .iter()
        .filter_map(|o| match o {
            ocelot::runtime::Obs::Output {
                channel, values, ..
            } => Some((channel.to_string(), values.clone())),
            _ => None,
        })
        .collect()
}
