//! Property-based validation of Theorem 1: Ocelot-transformed programs
//! satisfy their policies — on arbitrary generated programs, under
//! arbitrary power failures, as judged by both the online bit-vector
//! detector (§7.3) and the formal trace checker (Definitions 2 and 3).

mod common;

use common::{arb_program, gen_environment};
use ocelot::prelude::*;
use ocelot::runtime::detect::check_trace;
use proptest::prelude::*;

fn transform_generated(source: &str) -> Option<Compiled> {
    let program = compile(source).expect("generated programs always parse");
    validate(&program).expect("generated programs always validate");
    Some(ocelot_transform(program).expect("generated programs always transform"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The transform succeeds on every generated program and its own
    /// post-check (the Theorem 1 judgments) passes.
    #[test]
    fn transform_always_passes_self_check(p in arb_program()) {
        let compiled = transform_generated(&p.source).unwrap();
        prop_assert!(compiled.check.passes());
        // Annotations are gone, regions are well-formed.
        prop_assert!(compiled.program.annotations().is_empty());
        validate(&compiled.program).unwrap();
    }

    /// Ocelot executions never violate a policy, under random power
    /// failures, judged by both detectors.
    #[test]
    fn ocelot_never_violates_under_random_failures(
        p in arb_program(),
        seed in 0u64..1000,
    ) {
        let compiled = transform_generated(&p.source).unwrap();
        let supply = ocelot::hw::power::RandomPower::new(6_000.0, 500, seed);
        let mut m = Machine::new(
            &compiled.program,
            &compiled.regions,
            compiled.policies.clone(),
            gen_environment(seed),
            CostModel::default(),
            Box::new(supply),
        );
        for _ in 0..3 {
            let out = m.run_once(2_000_000);
            let clean = matches!(out, RunOutcome::Completed { violated: false });
            prop_assert!(clean);
        }
        prop_assert_eq!(m.stats().violations, 0, "bit-vector detector");
        let trace = m.take_trace();
        let formal = check_trace(m.policies(), &trace);
        prop_assert!(formal.is_empty(), "formal trace checker: {:?}", formal);
    }

    /// Ocelot executions survive even *pathological* failures targeted
    /// at every policy-critical point.
    #[test]
    fn ocelot_never_violates_under_pathological_failures(p in arb_program()) {
        let compiled = transform_generated(&p.source).unwrap();
        let targets = pathological_targets(&compiled.policies);
        let mut m = Machine::new(
            &compiled.program,
            &compiled.regions,
            compiled.policies.clone(),
            gen_environment(1),
            CostModel::default(),
            Box::new(ContinuousPower),
        )
        .with_injector(targets);
        let out = m.run_once(2_000_000);
        let clean = matches!(out, RunOutcome::Completed { violated: false });
        prop_assert!(clean);
        let trace = m.take_trace();
        prop_assert!(check_trace(m.policies(), &trace).is_empty());
    }

    /// The two detectors agree on JIT executions too: whenever the
    /// formal checker finds a violation in the committed trace, the
    /// online bit vector found one as well, and vice versa.
    #[test]
    fn detectors_agree_on_jit(p in arb_program(), seed in 0u64..500) {
        let program = compile(&p.source).unwrap();
        let built = build(program, ExecModel::Jit).unwrap();
        let supply = ocelot::hw::power::RandomPower::new(6_000.0, 500, seed);
        let mut m = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            gen_environment(seed),
            CostModel::default(),
            Box::new(supply),
        );
        for _ in 0..3 {
            m.run_once(2_000_000);
        }
        let bitvec_found = m.stats().violations > 0;
        let trace = m.take_trace();
        let formal_found = !check_trace(m.policies(), &trace).is_empty();
        prop_assert_eq!(
            bitvec_found,
            formal_found,
            "bit-vector {} vs formal {}",
            m.stats().violations,
            check_trace(m.policies(), &trace).len()
        );
    }
}
