//! The paper's flagship application (§8, Figure 9): a tire-safety
//! monitor on harvested power, run through a blowout scenario under all
//! three execution models. Run with:
//!
//! ```sh
//! cargo run --example tire_monitor
//! ```

use ocelot::prelude::*;

fn main() {
    let bench = ocelot::apps::by_name("tire").expect("tire benchmark exists");
    println!(
        "tire: {} LoC, sensors {:?}, constraints: {}",
        bench.loc(),
        bench.sensors,
        bench.constraints
    );

    // The environment: a puncture at t=1.5s — pressure collapses while
    // the wheel keeps spinning. The burst alarm must fire on *fresh*,
    // *mutually consistent* pressure and motion data.
    for model in [ExecModel::Jit, ExecModel::Ocelot, ExecModel::AtomicsOnly] {
        let program = match model {
            ExecModel::AtomicsOnly => bench.atomics_only(),
            _ => bench.annotated(),
        };
        let built = build(program, model).expect("build succeeds");
        let mut machine = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            bench.environment(1),
            CostModel::default().with_input_cost("tirepres", 200),
            Box::new(HarvestedPower::capybara_noisy(7).with_boot_jitter(3, 0.4)),
        );
        // Monitor for 40 complete sampling rounds across the blowout.
        for _ in 0..40 {
            machine.run_once(5_000_000);
        }
        let s = machine.stats();
        println!(
            "{:<13} runs={} reboots={:>3} region-reexecs={:>2} violations={} \
             (on {:.1} ms, charging {:.1} ms)",
            model.name(),
            s.runs_completed,
            s.reboots,
            s.region_reexecs,
            s.violations,
            s.on_time_us as f64 / 1000.0,
            s.off_time_us as f64 / 1000.0,
        );
    }
    println!(
        "\nJIT may pair a pre-failure pressure drop with post-failure motion (or\n\
         vice versa) and mis-time the burst alarm; Ocelot and the (carefully\n\
         hand-regioned) Atomics build never do."
    );
}
