//! Checker mode (§8): validate *manually placed* atomic regions against
//! the program's annotations instead of inferring placement. Run with:
//!
//! ```sh
//! cargo run --example validate_regions
//! ```

use ocelot::prelude::*;

fn main() {
    // A programmer hand-placed a region — but it ends too early: the
    // logging use of `x` escapes it.
    let buggy = r#"
        sensor s;
        fn main() {
            atomic {
                let x = in(s);
                fresh(x);
            }
            out(log, x);
        }
    "#;
    let report = ocelot_check(&compile(buggy).expect("compiles")).expect("checkable");
    println!("hand-placed region, use escapes:");
    for v in &report.violations {
        println!("  ✗ {v}");
    }
    assert!(!report.passes());

    // The fix: extend the region over the use.
    let fixed = r#"
        sensor s;
        fn main() {
            atomic {
                let x = in(s);
                fresh(x);
                out(log, x);
            }
        }
    "#;
    let report = ocelot_check(&compile(fixed).expect("compiles")).expect("checkable");
    println!("\nextended region:");
    for (policy, region) in &report.enforced_by {
        println!("  ✓ policy {} enforced by region r{}", policy.0, region.0);
    }
    assert!(report.passes());

    // Mixed mode: keep the manual region, let Ocelot add what's missing.
    let mixed = r#"
        sensor s;
        sensor t;
        fn main() {
            atomic {
                out(uart, 1);
            }
            let a = in(s);
            consistent(a, 1);
            let b = in(t);
            consistent(b, 1);
            out(log, a, b);
        }
    "#;
    let compiled = ocelot_transform(compile(mixed).expect("compiles")).expect("transforms");
    println!(
        "\nmixed mode: {} manual + inferred regions total, checker passes: {}",
        compiled.regions.len(),
        compiled.check.passes()
    );
    assert_eq!(compiled.regions.len(), 2);
}
