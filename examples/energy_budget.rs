//! Forward-progress analysis: will every atomic region complete on this
//! device's energy buffer?
//!
//! §5.3 observes that a region larger than the buffer rolls back forever,
//! and §8's Figure 10 shows how a manually-wrapped function demands more
//! buffer than Ocelot's inferred region. This example sizes both
//! placements for the same program, picks a capacitor that separates
//! them, and then *demonstrates* the prediction on the simulated
//! hardware: the Ocelot build completes, the hand-wrapped build
//! livelocks. Run with:
//!
//! ```sh
//! cargo run --example energy_budget
//! ```

use ocelot::hw::harvest::Harvester;
use ocelot::prelude::*;
use ocelot::progress::ProgressReport;
use ocelot::runtime::samoyed_transform;

// Figure 10's pattern: `confirm` samples a consistent pair, then does
// more processing on the result.
const SRC: &str = r#"
    sensor p;
    nv logged = 0;
    fn confirm() {
        let y = in(p);
        consistent(y, 1);
        let z = in(p);
        consistent(z, 1);
        let avg = (y + z) / 2;
        repeat 6 { logged = logged + avg; out(uart, logged); }
        return avg;
    }
    fn main() { let r = confirm(); out(log, r); }
"#;

fn main() {
    let costs = CostModel::default();

    // Ocelot: the inferred region covers just the two samples.
    let inferred = build(compile(SRC).unwrap(), ExecModel::Ocelot).unwrap();
    let ri = ProgressReport::analyze(&inferred.program, &inferred.regions, &costs)
        .expect("bounded program");

    // The intuitive manual placement: wrap all of `confirm`.
    let mut stripped = compile(SRC).unwrap();
    stripped.erase_annotations();
    let wrapped = samoyed_transform(stripped, &["confirm"]).unwrap();
    let rw = ProgressReport::analyze(&wrapped.program, &wrapped.regions, &costs)
        .expect("bounded program");

    println!("Ocelot-inferred regions:\n{ri}");
    println!("Whole-`confirm` region:\n{rw}");
    println!(
        "peak demand: inferred {:.2} µJ vs wrapped {:.2} µJ",
        ri.peak_demand_nj() / 1000.0,
        rw.peak_demand_nj() / 1000.0
    );

    // A buffer sized for the inferred region (10% margin) cannot host
    // the wrapped one.
    let cap = ri.min_capacitor(0.10);
    println!(
        "\nbuffer: {:.2} µJ capacity / {:.2} µJ trigger",
        cap.capacity_nj() / 1000.0,
        cap.trigger_nj() / 1000.0
    );
    println!("  inferred feasible: {}", ri.feasible_on(&cap));
    println!("  wrapped  feasible: {}", rw.feasible_on(&cap));
    assert!(ri.feasible_on(&cap) && !rw.feasible_on(&cap));

    // Demonstrate both verdicts on the simulated hardware.
    let env = Environment::new().with("p", Signal::Constant(12));
    let run = |built: &ocelot::runtime::Built| -> RunOutcome {
        let supply = HarvestedPower::new(
            Capacitor::new(cap.capacity_nj(), cap.trigger_nj()),
            Harvester::Constant { power_nw: 1.0 },
        );
        Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            env.clone(),
            costs.clone(),
            Box::new(supply),
        )
        .with_reexec_limit(30)
        .run_once(20_000_000)
    };

    let ocelot_out = run(&inferred);
    let wrapped_out = run(&wrapped);
    println!("\non simulated hardware:");
    println!("  Ocelot build:  {ocelot_out:?}");
    println!("  wrapped build: {wrapped_out:?}");
    assert!(matches!(ocelot_out, RunOutcome::Completed { .. }));
    assert!(matches!(wrapped_out, RunOutcome::Livelock { .. }));
    println!(
        "\nThe inferred region runs where the hand-wrapped one starves — \
         §8's argument, measured."
    );
}
