//! A greenhouse weather station demonstrating temporal consistency: the
//! misting controller must never act on a temperature from one moment
//! and a humidity from another. Shows the committed observation trace
//! and validates it against the paper's formal Definitions 2 and 3. Run
//! with:
//!
//! ```sh
//! cargo run --example weather_station
//! ```

use ocelot::prelude::*;
use ocelot::runtime::detect::check_trace;
use ocelot::runtime::obs::Obs;

fn main() {
    let bench = ocelot::apps::by_name("greenhouse").expect("greenhouse exists");

    for model in [ExecModel::Jit, ExecModel::Ocelot] {
        let built = build(bench.annotated(), model).expect("build succeeds");
        let mut machine = Machine::new(
            &built.program,
            &built.regions,
            built.policies.clone(),
            bench.environment(11),
            CostModel::default()
                .with_input_cost("temp", 1_400)
                .with_input_cost("hum", 1_400),
            Box::new(HarvestedPower::capybara_noisy(11).with_boot_jitter(5, 0.4)),
        );
        for _ in 0..30 {
            machine.run_once(5_000_000);
        }
        let stats = machine.stats().clone();
        let trace = machine.take_trace();

        // Cross-validate the two detectors: the paper's online bit
        // vector and the formal trace checker (Definitions 2 & 3).
        let formal = check_trace(machine.policies(), &trace);
        let mists = trace
            .iter()
            .filter(|o| matches!(o, Obs::Output { channel, .. } if &**channel == "mist"))
            .count();
        println!(
            "{:<7} runs={} reboots={:>3} mist-commands={:<3} bitvec-violations={} \
             formal-violations={}",
            model.name(),
            stats.runs_completed,
            stats.reboots,
            mists,
            stats.violations,
            formal.len(),
        );
        if model == ExecModel::Ocelot {
            assert_eq!(stats.violations, 0);
            assert!(formal.is_empty());
        }
    }
    println!(
        "\nUnder JIT, some mist commands were computed from readings the paper's\n\
         Definition 3 proves impossible in any continuous execution; Ocelot's\n\
         inferred region makes both detectors read zero."
    );
}
