//! TICS-style real-time expiry vs. Ocelot atomicity, head to head.
//!
//! §2.3 argues that expiration windows (a) depend on the deployment's
//! charging behaviour, (b) spend energy on mitigation handlers, and
//! (c) cannot express temporal consistency at all. This example runs the
//! same annotated program under three execution models on the same
//! harvested-power trace and prints what each costs and what each
//! guarantees. Run with:
//!
//! ```sh
//! cargo run --example expiry_comparison
//! ```

use ocelot::prelude::*;

const SRC: &str = r#"
    sensor tmp;
    sensor pres;
    sensor hum;
    fn main() {
        let x = in(tmp);
        fresh(x);
        if x > 5 { out(alarm, x); }
        let y = in(pres);
        consistent(y, 1);
        let z = in(hum);
        consistent(z, 1);
        out(log, y, z);
    }
"#;

/// Runs `runs` complete executions and returns the machine for stats.
fn drive(built: &ocelot::runtime::Built, window: Option<u64>, seed: u64) -> Stats {
    let supply = HarvestedPower::capybara_noisy(seed).with_boot_jitter(seed ^ 7, 0.4);
    let mut m = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        Environment::weather_front(2_000),
        CostModel::default(),
        Box::new(supply),
    );
    if let Some(w) = window {
        m = m.with_expiry_window(w);
    }
    for _ in 0..60 {
        m.run_once(10_000_000);
    }
    m.stats().clone()
}

use ocelot::runtime::Stats;

fn main() {
    let jit = build(compile(SRC).unwrap(), ExecModel::Jit).unwrap();
    let ocelot = build(compile(SRC).unwrap(), ExecModel::Ocelot).unwrap();

    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>9} {:>10}",
        "model", "fresh-viol", "cons-viol", "trips", "restarts", "on-ms"
    );
    let mut rows = Vec::new();
    rows.push(("JIT (no protection)", drive(&jit, None, 5)));
    for window_ms in [1u64, 10, 50, 500] {
        let stats = drive(&jit, Some(window_ms * 1_000), 5);
        rows.push((
            match window_ms {
                1 => "TICS window 1 ms",
                10 => "TICS window 10 ms",
                50 => "TICS window 50 ms",
                _ => "TICS window 500 ms",
            },
            stats,
        ));
    }
    rows.push(("Ocelot (atomicity)", drive(&ocelot, None, 5)));

    for (name, s) in &rows {
        println!(
            "{:<22} {:>10} {:>10} {:>9} {:>9} {:>10.1}",
            name,
            s.fresh_violations,
            s.consistency_violations,
            s.expiry_trips,
            s.expiry_restarts,
            s.on_time_us as f64 / 1000.0
        );
    }

    let tics_tight = &rows[1].1;
    let tics_loose = &rows[4].1;
    let ocelot_stats = &rows[5].1;
    println!();
    if tics_loose.fresh_violations > 0 {
        println!(
            "· a loose window lets stale uses through ({} missed) — \
             \"misbehaves without an expiration time violation\"",
            tics_loose.fresh_violations
        );
    }
    if tics_tight.expiry_restarts > tics_loose.expiry_restarts {
        println!(
            "· a tight window buys freshness with handler thrash ({} restarts)",
            tics_tight.expiry_restarts
        );
    }
    println!(
        "· no window fixes consistency: TICS leaves {} split pairs; \
         Ocelot leaves {}",
        tics_tight.consistency_violations, ocelot_stats.consistency_violations
    );
    assert_eq!(ocelot_stats.violations, 0);
}
