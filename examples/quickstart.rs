//! Quickstart: annotate → infer → execute intermittently.
//!
//! Reproduces the paper's Figure 2 scenario end to end: a weather
//! monitor whose temperature alarm must be *fresh* and whose
//! pressure/humidity log must be *temporally consistent*. Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ocelot::prelude::*;

fn main() {
    // The motivating program of Figure 2.
    let src = r#"
        sensor tmp;
        sensor pres;
        sensor hum;
        fn main() {
            let x = in(tmp);
            fresh(x);                       // alarm on *current* heat
            if x > 5 { out(alarm, x); }
            let y = in(pres);
            consistent(y, 1);               // pressure and humidity must
            let z = in(hum);
            consistent(z, 1);               // come from one moment
            out(log, y, z);
        }
    "#;

    let program = compile(src).expect("source compiles");
    let compiled = ocelot_transform(program).expect("Ocelot transform succeeds");
    println!(
        "Ocelot inferred {} atomic region(s) for {} polic{}:",
        compiled.regions.len(),
        compiled.policies.len(),
        if compiled.policies.len() == 1 {
            "y"
        } else {
            "ies"
        }
    );
    for (region, policies) in &compiled.policy_map {
        let info = compiled.region(*region).expect("region exists");
        println!(
            "  region r{} in `{}` enforces {:?} (undo log: {} word(s))",
            region.0,
            compiled.program.func(info.func).name,
            policies,
            info.omega_words
        );
    }

    // A storm front crosses while the device is charging: exactly the
    // situation where JIT checkpointing logs impossible weather.
    let env = Environment::weather_front(2_000);

    // First, JIT only — power fails at the worst points (§7.3).
    let jit = build(compile(src).unwrap(), ExecModel::Jit).unwrap();
    let targets = pathological_targets(&jit.policies);
    let mut machine = Machine::new(
        &jit.program,
        &jit.regions,
        jit.policies.clone(),
        env.clone(),
        CostModel::default(),
        Box::new(ContinuousPower),
    )
    .with_injector(targets.clone());
    machine.run_once(1_000_000);
    println!(
        "\nJIT under targeted failures: {} violation(s) ({} fresh, {} consistency)",
        machine.stats().violations,
        machine.stats().fresh_violations,
        machine.stats().consistency_violations
    );

    // Now Ocelot — same failures, the regions roll back and re-collect.
    let mut machine = Machine::new(
        &compiled.program,
        &compiled.regions,
        compiled.policies.clone(),
        env,
        CostModel::default(),
        Box::new(ContinuousPower),
    )
    .with_injector(targets);
    machine.run_once(1_000_000);
    println!(
        "Ocelot under the same failures: {} violation(s), {} region re-execution(s)",
        machine.stats().violations,
        machine.stats().region_reexecs
    );
    assert_eq!(machine.stats().violations, 0);
    println!("\nThe intermittent execution now matches a continuous one.");
}
