//! Offline shim of the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the external dependencies are vendored as minimal
//! API-compatible shims (see `vendor/README.md`). This crate provides
//! the subset of the `rand 0.8` surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a seedable, cloneable RNG (SplitMix64 inside,
//!   not ChaCha12; statistical quality is ample for simulation noise,
//!   but it is **not** cryptographically secure);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] and [`Rng::gen_range`] (half-open and inclusive
//!   ranges over the common integer types and `f64`).
//!
//! Determinism contract: a given seed always yields the same sequence,
//! which the workspace's reproducibility tests rely on.

#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the raw 64-bit entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds give equal
    /// sequences.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`: uniform in `[0, 1)`; integers: uniform over the full
    /// domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`; panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}
impl_sample_range_float!(f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator (SplitMix64 in this shim).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state ^ 0x6A09_E667_F3BC_C909,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(1e-6..1.0);
            assert!((1e-6..1.0).contains(&x));
            let y = rng.gen_range(0.5f64..=2.0);
            assert!((0.5..=2.0).contains(&y));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }
}
