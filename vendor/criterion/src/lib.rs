//! Offline shim of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so external dependencies are vendored as API-compatible
//! shims (see `vendor/README.md`). This crate supports the subset the
//! workspace's two bench harnesses use — benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — and reports simple wall-clock
//! statistics (mean/min/max per benchmark) instead of criterion's full
//! statistical analysis.

#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// `--test` smoke mode: run every benchmark closure once to prove
    /// it executes, skipping the timed sampling — mirrors real
    /// criterion's `cargo bench -- --test`, and is what CI runs so the
    /// bench suite cannot bit-rot without the cost of a full run.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects (`--test`
    /// mode overrides this to a single sample).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.effective_samples(), &mut f);
    }
}

/// A named set of benchmarks sharing a group prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as the benchmark `group/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.effective_samples(), &mut f);
    }

    /// Runs `f` with a borrowed input as the benchmark `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: impl fmt::Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.effective_samples(), &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group (a no-op in this shim, kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to every benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    samples_ns: Vec<u128>,
    iters_per_sample: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per configured sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples_ns
            .push(start.elapsed().as_nanos() / self.iters_per_sample as u128);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples_ns: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples_ns.is_empty() {
        println!("  {name}: no samples (closure never called iter)");
        return;
    }
    let mean = b.samples_ns.iter().sum::<u128>() / b.samples_ns.len() as u128;
    let min = *b.samples_ns.iter().min().unwrap();
    let max = *b.samples_ns.iter().max().unwrap();
    println!(
        "  {name}: mean {} min {} max {} ({} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        b.samples_ns.len()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a function running the listed benchmark targets, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` entry point for a `harness = false` bench
/// target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("jit", "tire").to_string(), "jit/tire");
        assert_eq!(BenchmarkId::from_parameter("photo").to_string(), "photo");
    }

    #[test]
    fn bench_function_runs_routine_sample_size_times() {
        let mut c = Criterion::default().sample_size(7);
        c.test_mode = false;
        let mut calls = 0u32;
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 7);
    }

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut c = Criterion::default().sample_size(50);
        c.test_mode = true;
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1, "--test proves execution without sampling");
    }

    #[test]
    fn groups_run_with_borrowed_input() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        let input = vec![1, 2, 3];
        let mut total = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter("len"), &input, |b, i| {
            b.iter(|| total += i.len())
        });
        g.finish();
        assert_eq!(total, 9);
    }

    #[test]
    fn nanosecond_formatting_picks_sane_units() {
        assert_eq!(fmt_ns(950), "950 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
