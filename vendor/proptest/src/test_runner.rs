//! The deterministic RNG and failure type behind the [`proptest!`]
//! macro.
//!
//! [`proptest!`]: crate::proptest

use std::fmt;

/// Deterministic per-test RNG (SplitMix64 seeded from the test's name
/// and case index), so every failure reproduces without a persistence
/// file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG stream for `(test name, case index)`.
    pub fn deterministic(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Why a single generated case failed.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// Lets `?` convert any concrete error inside a proptest body, like real
// proptest. (`TestCaseError` itself deliberately does not implement
// `std::error::Error`, which would make this impl overlap the blanket
// `From<T> for T`.)
impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        TestCaseError(e.to_string())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;
