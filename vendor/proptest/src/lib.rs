//! Offline shim of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so external dependencies are vendored as API-compatible
//! shims (see `vendor/README.md`). This crate implements the subset of
//! proptest that the workspace's property suites use:
//!
//! * the [`proptest!`] test macro (including
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//! * [`any`] for the primitive types, [`Just`], integer-range
//!   strategies, tuple strategies, [`prop_oneof!`] (weighted and
//!   unweighted), [`collection::vec()`], and string strategies from a
//!   small regex-like pattern subset (`\PC{m,n}`-style).
//!
//! Two deliberate simplifications versus real proptest:
//!
//! 1. **No shrinking.** A failing case reports its case number and
//!    message but is not minimized.
//! 2. **Deterministic generation.** Each test function derives its RNG
//!    stream from its own name and the case index, so failures
//!    reproduce exactly across runs — there is no persistence file.

#![deny(rustdoc::broken_intra_doc_links)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree: `generate` directly
/// produces a value (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value from the deterministic RNG.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

// Only the types the workspace's suites actually call `any` on — the
// shims are widened on demand (vendor/README.md rule 1).
macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u32, u64, usize);

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

/// The canonical strategy for `A`: uniform over the type's domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}

/// String strategy from a regex-like pattern.
///
/// Real proptest interprets `&str` strategies as full regexes; this
/// shim supports the small subset the workspace uses: an atom (`\PC`
/// for "any printable, non-control character", or a literal character
/// class placeholder) followed by an optional `{m,n}` repetition. Any
/// unrecognized pattern falls back to `\PC{0,64}` semantics.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 64));
        let len = if hi > lo {
            lo + (rng.next_u64() as usize % (hi - lo + 1))
        } else {
            lo
        };
        // A printable pool heavy on ASCII (the interesting tokens for a
        // textual front-end) with some multi-byte code points to stress
        // UTF-8 boundary handling.
        const EXTRA: &[char] = &['é', 'λ', '中', '→', '𝕏', 'ß', '¤', '…'];
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let roll = rng.next_u64();
            if roll & 7 == 0 {
                s.push(EXTRA[(roll >> 8) as usize % EXTRA.len()]);
            } else {
                // Printable ASCII 0x20..=0x7E.
                s.push((0x20 + ((roll >> 8) % 0x5F)) as u8 as char);
            }
        }
        s
    }
}

/// Extracts the `{m,n}` suffix bounds of a pattern, if present.
fn parse_repetition(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let (lo, hi) = body[brace + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// One boxed arm of a [`Union`]: its weight and generator closure.
pub type UnionArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// A weighted choice among strategies with a common value type, built
/// by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds the union; weights must not all be zero.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.next_u64() % self.total;
        for (w, arm) in &self.arms {
            if roll < *w as u64 {
                return arm(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length lies in `size`, with elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.next_u64() as usize % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests.
///
/// Supports the standard form: an optional
/// `#![proptest_config(expr)]` inner attribute, then `fn` items whose
/// parameters are `pattern in strategy` bindings. Each function becomes
/// a `#[test]` (the attribute is written explicitly in the block, as
/// real proptest also accepts) that runs the body over `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} for `{}` failed: {}",
                        case + 1,
                        cfg.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Picks among several strategies with a common value type, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(
            ($weight as u32, {
                let strat = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::Strategy::generate(&strat, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            })
        ),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (not the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Strategy;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::deterministic("ranges_and_maps_compose", 0);
        let s = (0usize..3).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 0 || v == 10 || v == 20);
        }
    }

    #[test]
    fn oneof_respects_arms() {
        let mut rng = TestRng::deterministic("oneof_respects_arms", 1);
        let s = prop_oneof![
            2 => Just("a"),
            1 => Just("b"),
        ];
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                "a" => seen_a = true,
                "b" => seen_b = true,
                _ => unreachable!(),
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn vec_sizes_lie_in_range() {
        let mut rng = TestRng::deterministic("vec_sizes_lie_in_range", 2);
        let s = crate::collection::vec(0u64..100, 2..14);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..14).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 100));
        }
    }

    #[test]
    fn string_pattern_respects_bounds() {
        let mut rng = TestRng::deterministic("string_pattern_respects_bounds", 3);
        for _ in 0..200 {
            let s = "\\PC{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, config, and prop_assert all work.
        #[test]
        fn macro_end_to_end(x in 0u64..50, (a, b) in (0usize..4, any::<u32>())) {
            prop_assert!(x < 50);
            prop_assert!(a < 4);
            prop_assert_eq!(u64::from(b), u64::from(b));
        }
    }
}
