//! `ocelotc` — the Ocelot command-line toolchain.
//!
//! ```text
//! ocelotc compile <file>        infer regions, print the transformed program
//! ocelotc check   <file>        checker mode: validate existing regions (§8)
//! ocelotc lint    <file> [opts] static policy-feasibility and
//!                               check-placement analysis (docs/lint.md):
//!                               infeasible freshness windows, dead
//!                               policies, statically redundant checks,
//!                               regions that cannot fit the buffer,
//!                               obligations blocked by unbounded loops
//!     --window-us <µs>          freshness expiry window to check
//!                               (enables OC001/OC002)
//!     --capacity-nj <nj>        energy buffer to check regions against
//!                               (enables OC006/OC007)
//!     --format <text|json>      output format (default text)
//!     --deny-warnings           exit nonzero on warnings, not just errors
//! ocelotc policies <file>       print the derived policy declarations
//! ocelotc summaries <file>      print Figure-5 function summaries (FS)
//! ocelotc progress <file> [opts] forward-progress report: worst-case
//!                               region energy vs. the buffer (§5.3/§10)
//!     --capacity <nj>           capacitor capacity (default Capybara 50 µJ)
//!     --trigger <nj>            comparator trigger (default 4 µJ)
//!     --jit                     analyze without region inference
//! ocelotc run     <file> [opts] execute on simulated harvested power
//!     --continuous              bench power instead of harvesting
//!     --jit                     skip region inference (JIT-only build)
//!     --backend <interp|compiled> execution engine (default interp);
//!                               identical results, compiled is faster
//!     --opt <0|1|2>             compiled-engine optimization level
//!                               (default 2, or $OCELOT_OPT; identical
//!                               results at every level)
//!     --tics <µs>               JIT + TICS-style expiry window with
//!                               restart mitigation (implies --jit)
//!     --runs <n>                complete program runs (default 10)
//!     --seed <n>                environment/harvester seed (default 1)
//!     --sensor <name>=<value>   constant sensor value (repeatable)
//!     --trace-out <path>        write a Chrome trace_event JSON of the
//!                               pipeline + execution spans (load it at
//!                               ui.perfetto.dev)
//!     --metrics                 print the telemetry counter snapshot
//!                               after the runs
//! ocelotc bench <driver> [opts] run one evaluation driver (Table 2(a),
//!                               Figure 7, ...) through the parallel
//!                               harness, or re-render it from its
//!                               persisted artifact
//!     --list                    list the available drivers
//!     --jobs <n>                worker threads for the sweep
//!     --out <dir>               artifact directory
//!                               (default target/bench-results)
//!     --runs <n> / --seed <n>   scale/seed overrides
//!     --traces                  persist raw per-cell observation logs
//!                               (uniform sweeps; composes with --replay)
//!     --replay                  render from the persisted artifact
//!                               without re-simulating
//! ocelotc fleet [opts]          fleet-scale sweep: a million devices
//!                               running one app across the scenario
//!                               registry on one shared compiled
//!                               program, aggregated per scenario
//!     --app <name>              benchmark to deploy (default tire)
//!     --devices <n>             fleet size (default 200000)
//!     --runs <n>                program runs per device (default 5)
//!     --seed <n>                seed-range start (default 1)
//!     --jobs <n>                worker threads (default all cores)
//!     --backend <interp|compiled> execution engine (default compiled)
//!     --scenario <name[@seed]>  scenario distribution (repeatable;
//!                               default: the whole registry)
//!     --out <dir>               artifact directory
//!     --fingerprint <path>      throughput fingerprint file
//!                               (default BENCH_fleet.json);
//!                               --no-fingerprint to skip
//! ocelotc serve [opts]          always-on enforcement server: clients
//!                               speak line-delimited JSON over TCP
//!                               (submit / verify / run / sweep, see
//!                               docs/serve.md); programs, analysis
//!                               results, and per-scenario machine
//!                               cores stay cached between requests
//!     --addr <host:port>        bind address (default 127.0.0.1:7433;
//!                               port 0 picks an ephemeral port)
//!     --jobs <n>                worker threads for sweep fan-out
//!                               (default all cores)
//!     --max-programs <n>        program-cache capacity; submissions
//!                               past it are refused (default 64)
//!     --max-inflight <n>        concurrent requests before `server
//!                               busy` replies (default 32)
//!     --self-test               boot on an ephemeral port, replay an
//!                               edit-trace workload through a real
//!                               client, report, and exit
//!     --trace-out <path>        record per-request `serve.request`
//!                               spans and write the Chrome trace when
//!                               the server stops
//!     --metrics                 print the telemetry counter snapshot
//!                               when the server stops (clients can
//!                               also poll the `metrics` op live)
//! ocelotc trace-check <file> [span...]
//!                               validate a --trace-out file: parse it
//!                               with the strict JSON reader, list the
//!                               distinct span names, and fail unless
//!                               every named span is present (the CI
//!                               trace-smoke step)
//! ocelotc scenario <action>     the declarative scenario library
//!     list                      enumerate the registered scenarios
//!     describe <name[@seed]>    channels, supply, and workload binding
//!     run <name[@seed]> [opts]  run an app under the scenario's world
//!                               and supply
//!       --app <name>            app to run (default: the scenario's
//!                               suggested app; any paper or extension
//!                               app works)
//!       --jit                   skip region inference (JIT-only build)
//!       --backend <interp|compiled> execution engine (default interp)
//!       --runs <n>              complete program runs (default: the
//!                               scenario's binding)
//!       --seed <n>              reseed the scenario
//! ```

use ocelot::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!(
                "usage: ocelotc <compile|check|lint|policies|run|bench|fleet|scenario|serve\
                 |trace-check> <file> [options]"
            );
            return ExitCode::from(2);
        }
    };
    // `bench`, `fleet`, and `scenario` take registry names, not source
    // files.
    if cmd == "bench" {
        return cmd_bench(rest);
    }
    if cmd == "fleet" {
        return ocelot_bench::fleet::fleet_main(rest);
    }
    if cmd == "scenario" {
        return cmd_scenario(rest);
    }
    if cmd == "serve" {
        return cmd_serve(rest);
    }
    if cmd == "trace-check" {
        return cmd_trace_check(rest);
    }
    // `lint` wants the raw source (its diagnostics carry source spans),
    // so it reads the file itself instead of going through the shared
    // compile-then-dispatch path below.
    if cmd == "lint" {
        return cmd_lint(rest);
    }
    let Some(path) = rest.first() else {
        eprintln!("error: missing input file");
        return ExitCode::from(2);
    };
    // Telemetry must be live before the front-end runs, or the `parse`
    // span (recorded inside `compile` below) is lost; `cmd_run` parses
    // the flags properly afterwards.
    ocelot_telemetry::set_tracing(rest.iter().any(|a| a == "--trace-out"));
    ocelot_telemetry::set_metrics(rest.iter().any(|a| a == "--metrics"));
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let program = match compile(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "compile" => cmd_compile(program),
        "check" => cmd_check(program),
        "policies" => cmd_policies(program),
        "summaries" => cmd_summaries(program),
        "progress" => cmd_progress(program, &rest[1..]),
        "run" => cmd_run(program, &rest[1..]),
        other => {
            eprintln!("error: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

fn cmd_bench(rest: &[String]) -> ExitCode {
    match rest.split_first() {
        None => {
            eprintln!("usage: ocelotc bench <driver> [options]   (--list for drivers)");
            ExitCode::from(2)
        }
        Some((flag, _)) if flag == "--list" => {
            println!("available drivers (ocelotc bench <driver> [options]):");
            print!("{}", ocelot_bench::cli::list_drivers());
            ExitCode::SUCCESS
        }
        Some((driver, flags)) => ocelot_bench::cli::run_driver(driver, flags.iter().cloned()),
    }
}

fn cmd_serve(rest: &[String]) -> ExitCode {
    let mut config = ocelot_serve::ServeConfig::default();
    let mut self_test = false;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut metrics = false;
    let mut it = rest.iter();
    while let Some(o) = it.next() {
        match o.as_str() {
            "--addr" => match it.next() {
                Some(a) => config.addr = a.clone(),
                None => return usage_err("--addr needs host:port"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.jobs = v,
                _ => return usage_err("--jobs needs a number >= 1"),
            },
            "--max-programs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.max_programs = v,
                _ => return usage_err("--max-programs needs a number >= 1"),
            },
            "--max-inflight" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.max_inflight = v,
                _ => return usage_err("--max-inflight needs a number >= 1"),
            },
            "--self-test" => self_test = true,
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(std::path::PathBuf::from(p)),
                None => return usage_err("--trace-out needs a file path"),
            },
            "--metrics" => metrics = true,
            other => return usage_err(&format!("unknown option `{other}`")),
        }
    }
    telemetry_start(trace_out.as_deref(), metrics);
    if self_test {
        return match ocelot_serve::self_test() {
            Ok(report) => {
                print!("{report}");
                exit_ok(telemetry_finish(trace_out.as_deref(), metrics))
            }
            Err(e) => {
                eprintln!("error: serve self-test failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match ocelot_serve::serve(config.clone()) {
        Ok(handle) => {
            eprintln!(
                "ocelot serve: listening on {} ({} worker(s), {} program slot(s)); \
                 send {{\"op\": \"shutdown\"}} to stop",
                handle.addr, config.jobs, config.max_programs
            );
            handle.wait();
            eprintln!("ocelot serve: stopped");
            exit_ok(telemetry_finish(trace_out.as_deref(), metrics))
        }
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            ExitCode::FAILURE
        }
    }
}

/// Enables the telemetry pillars a command's flags request.
fn telemetry_start(trace_out: Option<&std::path::Path>, metrics: bool) {
    ocelot_telemetry::set_tracing(trace_out.is_some());
    ocelot_telemetry::set_metrics(metrics);
}

/// Emits the telemetry outputs the flags requested — the sorted counter
/// snapshot to stdout, the Chrome trace to `trace_out` — and reports
/// whether everything landed.
fn telemetry_finish(trace_out: Option<&std::path::Path>, metrics: bool) -> bool {
    if metrics {
        print!(
            "\nmetrics:\n{}",
            ocelot_telemetry::metrics::render_snapshot()
        );
    }
    if let Some(p) = trace_out {
        match ocelot_bench::telem::write_trace(p) {
            Ok(n) => eprintln!("wrote {} ({n} spans)", p.display()),
            Err(e) => {
                eprintln!("error: {e}");
                return false;
            }
        }
    }
    true
}

fn cmd_scenario(rest: &[String]) -> ExitCode {
    const USAGE: &str =
        "usage: ocelotc scenario <list | describe <name[@seed]> | run <name[@seed]> [options]>";
    match rest.split_first() {
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Some((action, args)) => match action.as_str() {
            "list" => {
                println!("registered scenarios (ocelotc scenario describe <name>):");
                for sc in ocelot::scenario::all() {
                    println!(
                        "  {:16} {} (suggested app: {})",
                        sc.name, sc.about, sc.suggested_app
                    );
                }
                ExitCode::SUCCESS
            }
            "describe" => {
                let Some(spec) = args.first() else {
                    return usage_err("describe needs a scenario name");
                };
                let sc = match ocelot::scenario::parse(spec) {
                    Ok(sc) => sc,
                    Err(e) => return usage_err(&e),
                };
                println!("{} — {}", sc.name, sc.about);
                println!("  seed:          {}", sc.seed);
                println!("  suggested app: {}", sc.suggested_app);
                println!("  default runs:  {}", sc.default_runs);
                println!("  supply:        {}", sc.supply.describe());
                println!("  channels (sampled at 0 ms / 500 ms / 2000 ms):");
                let env = sc.environment();
                for ch in env.channels() {
                    println!(
                        "    {:10} {:6} {:6} {:6}",
                        ch,
                        env.sample(ch, 0),
                        env.sample(ch, 500_000),
                        env.sample(ch, 2_000_000),
                    );
                }
                ExitCode::SUCCESS
            }
            "run" => cmd_scenario_run(args),
            other => {
                eprintln!("error: unknown scenario action `{other}`\n{USAGE}");
                ExitCode::from(2)
            }
        },
    }
}

fn cmd_scenario_run(args: &[String]) -> ExitCode {
    let Some((spec, opts)) = args.split_first() else {
        return usage_err("run needs a scenario name");
    };
    let mut sc = match ocelot::scenario::parse(spec) {
        Ok(sc) => sc,
        Err(e) => return usage_err(&e),
    };
    let mut app: Option<String> = None;
    let mut runs: Option<u64> = None;
    let mut jit = false;
    let mut backend = ExecBackend::Interp;
    let mut it = opts.iter();
    while let Some(o) = it.next() {
        match o.as_str() {
            "--app" => match it.next() {
                Some(a) => app = Some(a.clone()),
                None => return usage_err("--app needs an app name"),
            },
            "--jit" => jit = true,
            "--backend" => match it.next().map(|v| ExecBackend::parse(v)) {
                Some(Some(b)) => backend = b,
                _ => return usage_err("--backend needs `interp` or `compiled`"),
            },
            "--runs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => runs = Some(v),
                None => return usage_err("--runs needs a number"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => sc = sc.reseeded(v),
                None => return usage_err("--seed needs a number"),
            },
            other => return usage_err(&format!("unknown option `{other}`")),
        }
    }
    let app_name = app.unwrap_or_else(|| sc.suggested_app.to_string());
    let Some(bench) = ocelot::apps::by_name(&app_name) else {
        let names: Vec<&str> = ocelot::apps::all_with_extensions()
            .iter()
            .map(|b| b.name)
            .collect();
        return usage_err(&format!(
            "unknown app `{app_name}` (known: {})",
            names.join(", ")
        ));
    };
    let model = if jit {
        ExecModel::Jit
    } else {
        ExecModel::Ocelot
    };
    let built = match build(bench.annotated(), model) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut machine = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        sc.environment(),
        CostModel::default(),
        sc.supply(),
    )
    .with_backend(backend);
    let runs = runs.unwrap_or(sc.default_runs);
    eprintln!(
        "scenario `{}` (seed {}), app `{}`, model {}: {}",
        sc.name,
        sc.seed,
        bench.name,
        model.name(),
        sc.supply.describe()
    );
    for _ in 0..runs {
        match machine.run_once(10_000_000) {
            RunOutcome::StepLimit => {
                eprintln!("error: step limit exceeded");
                return ExitCode::FAILURE;
            }
            RunOutcome::Livelock { region } => {
                eprintln!(
                    "error: region r{} livelocked under `{}` (supply too weak — \
                     see `ocelotc progress`)",
                    region.0, sc.name
                );
                return ExitCode::FAILURE;
            }
            RunOutcome::Completed { .. } => {}
        }
    }
    let trace = machine.take_trace();
    for o in &trace {
        if let ocelot::runtime::obs::Obs::Output {
            channel, values, ..
        } = o
        {
            println!("out({channel}) {values:?}");
        }
    }
    let s = machine.stats();
    eprintln!(
        "{} run(s): {} reboot(s), {} region re-execution(s), {} violation(s); \
         on {:.2} ms, charging {:.2} ms",
        s.runs_completed,
        s.reboots,
        s.region_reexecs,
        s.violations,
        s.on_time_us as f64 / 1000.0,
        s.off_time_us as f64 / 1000.0,
    );
    if s.violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_compile(program: Program) -> ExitCode {
    match ocelot_transform(program) {
        Ok(c) => {
            eprintln!(
                "inferred {} region(s) for {} policy(ies); checker: {}",
                c.policy_map.len(),
                c.policies.len(),
                if c.check.passes() { "ok" } else { "FAILED" }
            );
            for info in &c.regions {
                eprintln!(
                    "  region r{} in `{}`: ω = {:?} ({} word(s))",
                    info.id.0,
                    c.program.func(info.func).name,
                    info.effects.omega(),
                    info.omega_words
                );
            }
            println!("{}", ocelot::ir::print::program_to_string(&c.program));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check(program: Program) -> ExitCode {
    match ocelot_check(&program) {
        Ok(report) if report.passes() => {
            for (p, r) in &report.enforced_by {
                println!("ok: policy {} enforced by region r{}", p.0, r.0);
            }
            if report.enforced_by.is_empty() {
                println!("ok: no non-vacuous policies to enforce");
            }
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for v in &report.violations {
                eprintln!("violation: {v}");
                for m in &v.missing {
                    eprintln!("  uncovered operation at {m}");
                }
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_policies(program: Program) -> ExitCode {
    match ocelot::ir::validate(&program) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let taint = ocelot::analysis::taint::TaintAnalysis::run(&program);
    let policies = ocelot::core::build_policies(&program, &taint);
    for pol in policies.iter() {
        println!(
            "policy {} ({:?}){}",
            pol.id.0,
            pol.kind,
            if pol.is_vacuous() { " — vacuous" } else { "" }
        );
        for d in &pol.decls {
            println!("  declares `{}` at {}", d.var, d.at);
        }
        for chain in &pol.inputs {
            let rendered: Vec<String> = chain.iter().map(|r| r.to_string()).collect();
            println!("  input chain: {}", rendered.join(" :: "));
        }
        for u in &pol.uses {
            println!("  use at {u}");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_summaries(program: Program) -> ExitCode {
    if let Err(e) = ocelot::ir::validate(&program) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let taint = ocelot::analysis::taint::TaintAnalysis::run(&program);
    let summaries = ocelot::analysis::summary::build_summaries(&program, &taint);
    for (f, fsum) in program.funcs.iter().zip(&summaries) {
        if fsum.local.entries.is_empty() && fsum.callers.is_empty() {
            continue;
        }
        println!("fn {}:", f.name);
        for e in &fsum.local.entries {
            for i in &e.inputs {
                match &e.target {
                    ocelot::analysis::summary::TaintTarget::Ret => {
                        println!("  local: ret ←↪ (input: {}, fromTp: {})", i.input, i.from);
                    }
                    ocelot::analysis::summary::TaintTarget::RefParam(p) => {
                        println!("  local: &{p} ←↪ (input: {}, fromTp: {})", i.input, i.from);
                    }
                }
            }
        }
        for cs in &fsum.callers {
            println!(
                "  call(caller: {}, tainted args: {:?})",
                cs.caller, cs.tainted_params
            );
            for e in &cs.entries {
                for i in &e.inputs {
                    match &e.target {
                        ocelot::analysis::summary::TaintTarget::Ret => {
                            println!("    ret ←↪ fromTp: {}", i.from);
                        }
                        ocelot::analysis::summary::TaintTarget::RefParam(p) => {
                            println!("    &{p} ←↪ fromTp: {}", i.from);
                        }
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_progress(program: Program, opts: &[String]) -> ExitCode {
    let mut capacity = 50_000.0f64;
    let mut trigger = 4_000.0f64;
    let mut jit = false;
    let mut it = opts.iter();
    while let Some(o) = it.next() {
        match o.as_str() {
            "--capacity" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => capacity = v,
                None => return usage_err("--capacity needs a number (nJ)"),
            },
            "--trigger" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => trigger = v,
                None => return usage_err("--trigger needs a number (nJ)"),
            },
            "--jit" => jit = true,
            other => return usage_err(&format!("unknown option `{other}`")),
        }
    }
    if trigger >= capacity || trigger < 0.0 {
        return usage_err("--trigger must lie within --capacity");
    }
    let model = if jit {
        ExecModel::Jit
    } else {
        ExecModel::Ocelot
    };
    let built = match build(program, model) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let costs = CostModel::default();
    let report = match ProgressReport::analyze(&built.program, &built.regions, &costs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{report}");
    let cap = Capacitor::new(capacity, trigger);
    let mut all_ok = report.reserve_covers_checkpoint(&cap);
    if !all_ok {
        eprintln!(
            "RESERVE TOO SMALL: the worst-case JIT checkpoint does not fit \
             below the trigger"
        );
    }
    for (b, v) in report.check(&cap) {
        match v {
            Verdict::Feasible { headroom_nj } => {
                println!(
                    "region r{}: feasible ({:.2} µJ headroom)",
                    b.region.0,
                    headroom_nj / 1000.0
                );
            }
            Verdict::Infeasible { deficit_nj } => {
                all_ok = false;
                println!(
                    "region r{}: INFEASIBLE ({:.2} µJ short) — the program \
                     livelocks here",
                    b.region.0,
                    deficit_nj / 1000.0
                );
            }
        }
    }
    let min = report.min_capacitor(0.1);
    println!(
        "minimum buffer (10% margin): {:.2} µJ capacity, {:.2} µJ trigger",
        min.capacity_nj() / 1000.0,
        min.trigger_nj() / 1000.0
    );
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_run(program: Program, opts: &[String]) -> ExitCode {
    let mut runs = 10u64;
    let mut seed = 1u64;
    let mut continuous = false;
    let mut jit = false;
    let mut backend = ExecBackend::Interp;
    let mut opt = ocelot::runtime::OptLevel::from_env();
    let mut tics: Option<u64> = None;
    let mut env = Environment::new();
    let mut have_sensor = false;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut metrics = false;
    let mut it = opts.iter();
    while let Some(o) = it.next() {
        match o.as_str() {
            "--continuous" => continuous = true,
            "--jit" => jit = true,
            "--backend" => match it.next().map(|v| ExecBackend::parse(v)) {
                Some(Some(b)) => backend = b,
                _ => return usage_err("--backend needs `interp` or `compiled`"),
            },
            "--opt" => match it.next().map(|v| ocelot::runtime::OptLevel::parse(v)) {
                Some(Some(l)) => opt = l,
                _ => return usage_err("--opt needs `0`, `1` or `2`"),
            },
            "--tics" => match it.next().and_then(|v| v.parse().ok()) {
                Some(w) => {
                    tics = Some(w);
                    jit = true;
                }
                None => return usage_err("--tics needs a window in µs"),
            },
            "--runs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => runs = v,
                None => return usage_err("--runs needs a number"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage_err("--seed needs a number"),
            },
            "--sensor" => {
                let Some(spec) = it.next() else {
                    return usage_err("--sensor needs name=value");
                };
                let Some((name, value)) = spec.split_once('=') else {
                    return usage_err("--sensor needs name=value");
                };
                let Ok(v) = value.parse::<i64>() else {
                    return usage_err("--sensor value must be an integer");
                };
                env = env.with(name, Signal::Constant(v));
                have_sensor = true;
            }
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(std::path::PathBuf::from(p)),
                None => return usage_err("--trace-out needs a file path"),
            },
            "--metrics" => metrics = true,
            other => return usage_err(&format!("unknown option `{other}`")),
        }
    }
    telemetry_start(trace_out.as_deref(), metrics);
    if !have_sensor {
        // Default: a gently varying signal per declared sensor.
        for (i, s) in program.sensors.iter().enumerate() {
            env = env.with(
                s,
                Signal::Noisy {
                    base: Box::new(Signal::Constant(20 + 5 * i as i64)),
                    amplitude: 3,
                    seed: seed ^ i as u64,
                },
            );
        }
    }

    let model = if jit {
        ExecModel::Jit
    } else {
        ExecModel::Ocelot
    };
    let built = match build(program, model) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let supply: Box<dyn PowerSupply> = if continuous {
        Box::new(ContinuousPower)
    } else {
        Box::new(HarvestedPower::capybara_noisy(seed).with_boot_jitter(seed ^ 7, 0.4))
    };
    let mut machine = Machine::new(
        &built.program,
        &built.regions,
        built.policies.clone(),
        env,
        CostModel::default(),
        supply,
    )
    .with_backend(backend)
    .with_opt(opt);
    if let Some(w) = tics {
        machine = machine.with_expiry_window(w);
    }
    for _ in 0..runs {
        match machine.run_once(10_000_000) {
            RunOutcome::StepLimit => {
                eprintln!("error: step limit exceeded");
                return ExitCode::FAILURE;
            }
            RunOutcome::Livelock { region } => {
                eprintln!(
                    "error: region r{} livelocked (buffer too small — see \
                     `ocelotc progress`)",
                    region.0
                );
                return ExitCode::FAILURE;
            }
            RunOutcome::Completed { .. } => {}
        }
    }
    let trace = machine.take_trace();
    for o in &trace {
        if let ocelot::runtime::obs::Obs::Output {
            channel, values, ..
        } = o
        {
            println!("out({channel}) {values:?}");
        }
    }
    let s = machine.stats();
    eprintln!(
        "{} run(s): {} reboot(s), {} region re-execution(s), {} violation(s); \
         on {:.2} ms, charging {:.2} ms",
        s.runs_completed,
        s.reboots,
        s.region_reexecs,
        s.violations,
        s.on_time_us as f64 / 1000.0,
        s.off_time_us as f64 / 1000.0,
    );
    if tics.is_some() {
        eprintln!(
            "TICS: {} expiry trip(s), {} handler restart(s), {} giveup(s)",
            s.expiry_trips, s.expiry_restarts, s.expiry_giveups
        );
    }
    if !telemetry_finish(trace_out.as_deref(), metrics) {
        return ExitCode::FAILURE;
    }
    if s.violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `ocelotc trace-check <file> [span...]`: the CI trace-smoke entry.
/// Round-trips a `--trace-out` file through the harness's strict JSON
/// reader and asserts every named span occurs in it.
/// `ocelotc lint <file>`: run the static feasibility passes and render
/// the report. Exit 0 when nothing reaches the failing severity
/// (errors, or warnings too under `--deny-warnings`), 1 when something
/// does or the source fails to compile, 2 on usage/IO problems.
fn cmd_lint(rest: &[String]) -> ExitCode {
    let Some((path, flags)) = rest.split_first() else {
        return usage_err("lint needs an input file");
    };
    let mut opts = ocelot_lint::LintOptions::default();
    let mut format_json = false;
    let mut deny_warnings = false;
    let mut it = flags.iter();
    while let Some(o) = it.next() {
        match o.as_str() {
            "--window-us" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.window_us = Some(v),
                None => return usage_err("--window-us needs a number of microseconds"),
            },
            "--capacity-nj" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => opts.capacity_nj = Some(v),
                _ => return usage_err("--capacity-nj needs a positive number of nanojoules"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format_json = false,
                Some("json") => format_json = true,
                _ => return usage_err("--format needs `text` or `json`"),
            },
            "--deny-warnings" => deny_warnings = true,
            other => return usage_err(&format!("unknown option `{other}`")),
        }
    }
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match ocelot_lint::lint_source(&src, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if format_json {
        print!("{}", ocelot_bench::lintfmt::render_json(&report));
    } else {
        print!("{}", report.render_text(path, Some(&src)));
    }
    let failing = report.error_count() > 0 || (deny_warnings && report.warning_count() > 0);
    exit_ok(!failing)
}

fn cmd_trace_check(rest: &[String]) -> ExitCode {
    let Some((path, expected)) = rest.split_first() else {
        return usage_err("trace-check needs a trace file path");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match ocelot_bench::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path} is not strict JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names = match ocelot_bench::telem::span_names(&doc) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: {} distinct span name(s): {}",
        names.len(),
        names.join(" ")
    );
    let missing: Vec<&str> = expected
        .iter()
        .map(String::as_str)
        .filter(|want| !names.iter().any(|n| n == want))
        .collect();
    if missing.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "error: {path} lacks expected span(s): {}",
            missing.join(", ")
        );
        ExitCode::FAILURE
    }
}

fn exit_ok(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}
