//! # Ocelot
//!
//! A from-scratch Rust reproduction of *Automatically Enforcing Fresh
//! and Consistent Inputs in Intermittent Systems* (Surbatovich, Jia,
//! Lucia — PLDI 2021).
//!
//! Energy-harvesting devices execute *intermittently*: power fails at
//! arbitrary points and the system resumes from a checkpoint after an
//! unpredictable recharge. Checkpointing keeps memory consistent, but
//! inputs carry *implicit timing constraints*: a sensor reading used
//! after a power failure may be **stale** (freshness), and a set of
//! readings split across a failure may mix two different world states
//! (**temporal consistency**). Ocelot lets the programmer annotate which
//! data carry these constraints and infers **atomic regions** that make
//! every intermittent execution behave like some continuous one.
//!
//! This crate is a facade over the workspace:
//!
//! * [`ir`] — the modeling language, parser, and basic-block IR;
//! * [`analysis`] — dominators, interprocedural taint with provenance,
//!   WAR/EMW sets;
//! * [`core`] — policies, Algorithm 1 region inference, the Theorem 1
//!   checker;
//! * [`hw`] — capacitor/harvester energy models and sensed environments;
//! * [`progress`] — forward-progress analysis: worst-case region energy
//!   vs. the harvesting buffer (§5.3 / §10);
//! * [`runtime`] — the JIT+Atomics intermittent interpreter, violation
//!   detectors, and the TICS / Samoyed comparison execution models;
//! * [`apps`] — the paper's six benchmark applications plus the
//!   extension workloads (multi-sensor fusion, duty-cycled radio,
//!   ML-inference window);
//! * [`scenario`] — the named environment/power scenario library the
//!   evaluation sweeps (`ocelotc scenario`, `scenario_sweep`);
//! * [`serve`] — the always-on enforcement server (`ocelotc serve`):
//!   line-delimited JSON over TCP with program-hash caching and
//!   incremental re-verification.
//!
//! ## Quickstart
//!
//! ```
//! use ocelot::prelude::*;
//!
//! // 1. Write a program with timing annotations.
//! let program = ocelot::ir::compile(r#"
//!     sensor temp;
//!     fn main() {
//!         let t = in(temp);
//!         fresh(t);                    // t must be fresh when used
//!         if t > 30 { out(alarm, t); }
//!     }
//! "#)?;
//!
//! // 2. Ocelot infers atomic regions enforcing the annotations.
//! let compiled = ocelot_transform(program).unwrap();
//! assert!(compiled.check.passes());
//!
//! // 3. Run it on simulated harvested power; the region re-executes
//! //    across failures, so the alarm decision is never stale.
//! let mut machine = Machine::new(
//!     &compiled.program,
//!     &compiled.regions,
//!     compiled.policies.clone(),
//!     Environment::new().with("temp", Signal::Constant(35)),
//!     CostModel::default(),
//!     Box::new(HarvestedPower::capybara_powercast()),
//! );
//! machine.run_once(1_000_000);
//! assert_eq!(machine.stats().violations, 0);
//! # Ok::<(), ocelot::ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use ocelot_analysis as analysis;
pub use ocelot_apps as apps;
pub use ocelot_core as core;
pub use ocelot_hw as hw;
pub use ocelot_ir as ir;
pub use ocelot_lint as lint;
pub use ocelot_progress as progress;
pub use ocelot_runtime as runtime;
pub use ocelot_scenario as scenario;
pub use ocelot_serve as serve;
pub use ocelot_telemetry as telemetry;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use ocelot_core::transform::{ocelot_check, ocelot_transform};
    pub use ocelot_core::{CheckReport, Compiled, PolicyKind, PolicySet};
    pub use ocelot_hw::energy::{Capacitor, CostModel};
    pub use ocelot_hw::power::{ContinuousPower, HarvestedPower, PowerSupply};
    pub use ocelot_hw::sensors::{Environment, Signal};
    pub use ocelot_ir::{compile, validate, Program};
    pub use ocelot_lint::{lint_source, LintOptions};
    pub use ocelot_progress::{ProgressReport, Verdict};
    pub use ocelot_runtime::machine::{pathological_targets, Machine, RunOutcome};
    pub use ocelot_runtime::model::{build, ExecModel};
    pub use ocelot_runtime::ExecBackend;
}
